//! Single-leader replication of the profile store.
//!
//! The replication unit is the profile **mutation**: every client
//! mutation the leader accepts is encoded as a
//! [`MutationRecord`], appended to a crash-safe WAL
//! ([`pqp_storage::Wal`]), fsynced, and shipped to every follower. The
//! client sees success only once the record is durable on the leader
//! *and* acknowledged by the configured quorum of nodes — so an acked
//! mutation survives the loss of any `quorum - 1` nodes.
//!
//! ## Roles, terms, and log identity
//!
//! One node is the **leader** (accepts mutations, ships the log); the
//! rest are **followers** (apply shipped records, refuse client
//! mutations with a typed `unavailable` error). Failover is
//! promotion-by-term: a follower promoted with [`ReplRequest::Promote`]
//! adopts a strictly higher term, and every peer request carries its
//! sender's term — a deposed leader's ships are rejected by the higher
//! term, it steps down on the first rejection, and can never ack
//! another mutation. That is the whole fencing protocol.
//!
//! A log entry's identity is `(term, seq)` — the term is stored with
//! every WAL record and shipped with every entry. A deposed leader can
//! hold durable-but-unacked entries the new leader never saw; those
//! suffixes are detected (Raft's consistency check: every `Append`
//! carries the identity of the entry preceding the batch, every ack
//! carries the term of the acker's tip) and **truncated**, and the
//! follower rebuilds its in-memory store from the surviving log, so
//! replicas converge byte-identically instead of diverging silently. The
//! leader never counts a follower toward quorum on a self-reported
//! offset alone: acks are clamped to the leader's own tip and validated
//! against the leader's log by term.
//!
//! ## Ack semantics
//!
//! A mutation that fails *before* the WAL fsync was never durable and
//! returns a typed error — retrying is safe and exact (a record whose
//! fsync failed is truncated back off the log, and the in-memory store
//! is only updated *after* the fsync, so failed mutations are never
//! visible to reads). A mutation that is durable locally but misses
//! quorum returns [`Error::Unavailable`]: it *may* replicate later, so
//! a client retry gives at-least-once semantics. Profile mutations are
//! upserts keyed on the preference, so replaying one is harmless.
//!
//! ## Authentication
//!
//! Replication frames share the client listen port, so the
//! state-changing vocabulary is gated on a shared secret
//! (`PQP_REPL_TOKEN`): `Hello` must present it before `Append`/
//! `Snapshot` are honored on a link, and `Promote` carries it directly.
//! `Status` stays open — it is a read-only probe. An empty token
//! disables the check (single-machine and test clusters).
//!
//! Failpoint sites: `wal.append` and `wal.fsync` (in `pqp-storage`),
//! `repl.ship` (before sending to a follower), `repl.ack` (after the
//! follower answered), `node.crash` (at mutation entry).

use std::collections::HashSet;
use std::io::{self, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pqp_core::Profile;
use pqp_service::{Error, FollowerLag, ReplStatus, Result, Service, UserId};
use pqp_storage::{Wal, WalRecovery};
use pqp_wire::codec::{Reader, Writer};
use pqp_wire::frame::{read_frame, write_frame};
use pqp_wire::proto::ProfileOp;
use pqp_wire::repl::{LogEntry, MutationRecord, NodeStatus, ReplRequest, ReplResponse, Role};
use pqp_wire::{MAX_FRAME_LEN, PROTOCOL_VERSION};

/// Name of the file in the WAL directory holding the persisted term.
const TERM_FILE: &str = "term";

/// Catch-up attempts per follower per ship round before giving up on it
/// for this mutation (it retries on the next one).
const SHIP_ATTEMPTS: usize = 4;

/// Replication knobs. Present only when the node runs replicated — a
/// plain single-node server has no `ReplConfig` and no WAL.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// This node's identity, carried in peer handshakes and telemetry
    /// (`PQP_NODE_ID`, default `node-1`).
    pub node_id: String,
    /// Directory for the WAL, snapshot, and term files (`PQP_WAL_DIR`;
    /// setting it is what turns replication on).
    pub wal_dir: PathBuf,
    /// Nodes (including this one) that must hold a mutation durably
    /// before the client is acked (`PQP_REPL_QUORUM`, default 1 =
    /// leader-only durability).
    pub quorum: usize,
    /// Follower addresses this node ships to when it is the leader
    /// (`PQP_REPL_PEERS`, comma-separated).
    pub peers: Vec<String>,
    /// Starting role (`PQP_REPL_ROLE`: `leader` | `follower`, default
    /// `leader`).
    pub role: Role,
    /// Compact the log into a snapshot after this many appended records
    /// (`PQP_REPL_SNAPSHOT_EVERY`, default 1024; 0 disables).
    pub snapshot_every: u64,
    /// Connect/read/write timeout on peer links
    /// (`PQP_REPL_SHIP_TIMEOUT_MS`, default 5000).
    pub ship_timeout: Duration,
    /// Shared secret gating the state-changing replication frames
    /// (`PQP_REPL_TOKEN`). Every node of a cluster must carry the same
    /// value; empty disables the check.
    pub token: String,
}

impl ReplConfig {
    /// Build from the environment. Returns `None` unless `PQP_WAL_DIR`
    /// is set — the knob that turns the replicated mutation log on.
    pub fn from_env() -> Option<ReplConfig> {
        let wal_dir = std::env::var("PQP_WAL_DIR").ok().filter(|v| !v.trim().is_empty())?;
        let node_id = std::env::var("PQP_NODE_ID")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .unwrap_or_else(|| "node-1".to_string());
        let quorum =
            std::env::var("PQP_REPL_QUORUM").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(1);
        let peers = std::env::var("PQP_REPL_PEERS")
            .ok()
            .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
            .unwrap_or_default();
        let role = match std::env::var("PQP_REPL_ROLE").ok().as_deref() {
            Some("follower") => Role::Follower,
            _ => Role::Leader,
        };
        let snapshot_every = std::env::var("PQP_REPL_SNAPSHOT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1024);
        let ship_timeout = Duration::from_millis(
            std::env::var("PQP_REPL_SHIP_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(5_000),
        );
        Some(ReplConfig {
            node_id,
            wal_dir: PathBuf::from(wal_dir),
            quorum: quorum.max(1),
            peers,
            role,
            snapshot_every,
            ship_timeout,
            token: std::env::var("PQP_REPL_TOKEN").unwrap_or_default(),
        })
    }

    /// A config for tests and embedding: leader-by-default, quorum 1,
    /// no peers.
    pub fn new(node_id: impl Into<String>, wal_dir: impl Into<PathBuf>) -> ReplConfig {
        ReplConfig {
            node_id: node_id.into(),
            wal_dir: wal_dir.into(),
            quorum: 1,
            peers: Vec::new(),
            role: Role::Leader,
            snapshot_every: 1024,
            ship_timeout: Duration::from_millis(5_000),
            token: String::new(),
        }
    }
}

/// One follower as tracked by the leader: its address, a lazily opened
/// (and lazily re-opened) peer link, and its acknowledged log offset.
struct FollowerSlot {
    addr: String,
    conn: Option<TcpStream>,
    ack_seq: u64,
}

/// Mutable replication state, guarded by one mutex so the log order,
/// the apply order, and the ship order are the same order.
struct Inner {
    role: Role,
    term: u64,
    wal: Wal,
    /// Term of the log's tip entry (`base_term` when the log is empty).
    last_term: u64,
    /// Term of the entry at the snapshot point (0 when no snapshot).
    base_term: u64,
    followers: Vec<FollowerSlot>,
    records_since_snapshot: u64,
}

/// Lock-free mirror of the node's probe-visible state, refreshed on
/// every state change. `Status` probes (the router's health checks) are
/// answered from here so a leader stalled in peer I/O under the `Inner`
/// mutex still probes as alive — otherwise one dead follower could make
/// the router misread the leader as down and trigger a spurious
/// promotion.
struct StatusCell {
    role: AtomicU8,
    term: AtomicU64,
    last_seq: AtomicU64,
    durable_seq: AtomicU64,
}

impl StatusCell {
    fn store(&self, inner: &Inner) {
        self.role.store(
            match inner.role {
                Role::Leader => 0,
                Role::Follower => 1,
            },
            Ordering::Relaxed,
        );
        self.term.store(inner.term, Ordering::Relaxed);
        self.last_seq.store(inner.wal.last_seq(), Ordering::Relaxed);
        self.durable_seq.store(inner.wal.synced_seq(), Ordering::Relaxed);
    }

    fn role(&self) -> Role {
        match self.role.load(Ordering::Relaxed) {
            0 => Role::Leader,
            _ => Role::Follower,
        }
    }
}

/// Per-connection replication link state, owned by the connection
/// handler. A link must present the shared secret in `Hello` before its
/// state-changing frames are honored.
pub struct PeerLink {
    authed: bool,
}

impl PeerLink {
    /// A fresh, unauthenticated link.
    pub fn new() -> PeerLink {
        PeerLink { authed: false }
    }
}

impl Default for PeerLink {
    fn default() -> PeerLink {
        PeerLink::new()
    }
}

/// The replication engine of one node. Owns the WAL, the role/term
/// state, and (as leader) the follower links. Shared between the
/// client dispatch path (mutations) and the peer frame handler.
pub struct ReplNode {
    config: ReplConfig,
    service: Arc<Service>,
    inner: Mutex<Inner>,
    status: StatusCell,
    fsync_ms: pqp_obs::WindowedHistogram,
    ship_ms: pqp_obs::WindowedHistogram,
}

impl ReplNode {
    /// Open (or create) the WAL directory, recover state — snapshot
    /// first, then the surviving log suffix, truncating any torn tail —
    /// and replay it into the service so the in-memory profile store is
    /// byte-identical to what was durable at the crash.
    pub fn open(service: Arc<Service>, config: ReplConfig) -> Result<Arc<ReplNode>> {
        let (wal, recovery) = Wal::open(&config.wal_dir)?;
        let term = load_term(&config);
        replay(&service, &recovery)?;
        if recovery.truncated_bytes > 0 {
            pqp_obs::counter_add("repl.torn_tail_bytes", recovery.truncated_bytes as i64);
        }
        // Rebuild the (term, seq) identity of the log tail from the
        // term prefix every stored record and snapshot carries.
        let base_term = match &recovery.snapshot {
            Some(snap) => split_record(&snap.data).map(|(t, _)| t).unwrap_or(0),
            None => 0,
        };
        let last_term = recovery
            .records
            .last()
            .and_then(|r| split_record(&r.payload).ok().map(|(t, _)| t))
            .unwrap_or(base_term);
        let followers = config
            .peers
            .iter()
            .map(|addr| FollowerSlot { addr: addr.clone(), conn: None, ack_seq: 0 })
            .collect();
        let node = Arc::new(ReplNode {
            inner: Mutex::new(Inner {
                role: config.role,
                term,
                wal,
                last_term,
                base_term,
                followers,
                records_since_snapshot: 0,
            }),
            service,
            config,
            status: StatusCell {
                role: AtomicU8::new(0),
                term: AtomicU64::new(0),
                last_seq: AtomicU64::new(0),
                durable_seq: AtomicU64::new(0),
            },
            fsync_ms: pqp_obs::WindowedHistogram::default(),
            ship_ms: pqp_obs::WindowedHistogram::default(),
        });
        node.publish(&node.lock());
        Ok(node)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// This node's identity.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// Current role (lock-free: reads the status cell).
    pub fn role(&self) -> Role {
        self.status.role()
    }

    /// Current term (lock-free: reads the status cell).
    pub fn term(&self) -> u64 {
        self.status.term.load(Ordering::Relaxed)
    }

    /// The node's status as answered to a `Status` probe. Served from
    /// the lock-free status cell so probes never wait on replication
    /// work in progress.
    pub fn status(&self) -> NodeStatus {
        NodeStatus {
            node_id: self.config.node_id.clone(),
            role: self.status.role(),
            term: self.status.term.load(Ordering::Relaxed),
            last_seq: self.status.last_seq.load(Ordering::Relaxed),
            durable_seq: self.status.durable_seq.load(Ordering::Relaxed),
        }
    }

    /// Constant-time-ish comparison of the supplied auth token against
    /// the configured shared secret. An empty configured token disables
    /// the check.
    fn token_ok(&self, supplied: &str) -> bool {
        let want = self.config.token.as_bytes();
        if want.is_empty() {
            return true;
        }
        let got = supplied.as_bytes();
        let mut diff = want.len() ^ got.len();
        for (i, byte) in want.iter().enumerate() {
            diff |= (byte ^ got.get(i).copied().unwrap_or(0)) as usize;
        }
        diff == 0
    }

    /// Apply one client mutation through the replicated log. Leader
    /// only; followers answer [`Error::Unavailable`] naming the reason.
    ///
    /// Order of operations: validate (without applying), append + fsync
    /// the WAL, apply to the in-memory service, ship to followers,
    /// count the quorum. The in-memory store is only touched once the
    /// record is durable — a failed append or fsync never leaves a
    /// mutation visible to reads that would vanish on restart.
    pub fn client_mutate(&self, user: &UserId, op: ProfileOp) -> Result<(u64, bool)> {
        if let Some(msg) = pqp_obs::failpoint::fire("node.crash") {
            return Err(Error::Internal(format!("node.crash failpoint: {msg}")));
        }
        let mut inner = self.lock();
        if inner.role != Role::Leader {
            return Err(Error::Unavailable(format!(
                "not the leader (follower at term {})",
                inner.term
            )));
        }
        // Validate first (on a clone, no store mutation): an op the
        // schema rejects never reaches the log, so the log replays
        // cleanly forever.
        validate_op(&self.service, user, &op)?;
        let record = MutationRecord { user: user.as_str().to_string(), op: op.clone() }.encode();
        let term = inner.term;
        let seq = inner.wal.append(&wrap_record(term, &record))?;
        let t = Instant::now();
        if let Err(e) = inner.wal.sync() {
            // The record is written but not durable: take it back off
            // the log so a later successful fsync cannot make durable a
            // record the in-memory store never applied.
            if inner.wal.truncate_from(seq).is_err() {
                pqp_obs::counter_add("repl.orphaned_records", 1);
            }
            self.refresh_tip_term(&mut inner);
            self.publish(&inner);
            return Err(e.into());
        }
        self.fsync_ms.record(t.elapsed().as_secs_f64() * 1_000.0);
        inner.last_term = term;
        // Durable: now (and only now) the mutation becomes visible.
        let removed = match apply_op(&self.service, user, &op) {
            Ok(removed) => removed,
            Err(e) => {
                // Validation passed, so this is exceptional; the record
                // is durable and will still ship and replay.
                pqp_obs::counter_add("repl.apply_errors", 1);
                return Err(e);
            }
        };

        let ship_failures = self.ship(&mut inner)?;
        let acked = 1 + inner.followers.iter().filter(|f| f.ack_seq >= seq).count();
        let quorum = self.config.quorum;
        self.maybe_compact(&mut inner);
        self.publish(&inner);
        if acked < quorum {
            pqp_obs::counter_add("repl.quorum_failures", 1);
            let detail = if ship_failures.is_empty() {
                String::new()
            } else {
                format!("; {}", ship_failures.join("; "))
            };
            return Err(Error::Unavailable(format!(
                "quorum not reached: {acked}/{quorum} nodes hold seq {seq} \
                 (durable on leader; a retry is safe){detail}"
            )));
        }
        Ok((self.service.epoch(user.clone()), removed))
    }

    /// Bring every follower up to the log tip. A follower that cannot
    /// be reached this round is skipped (its `ack_seq` stays behind and
    /// the failure is reported back for the quorum error message); a
    /// rejection with a higher term fences this leader — it steps down
    /// and the mutation fails `Unavailable`.
    fn ship(&self, inner: &mut Inner) -> Result<Vec<String>> {
        let term = inner.term;
        let tip = inner.wal.last_seq();
        let tip_term = inner.last_term;
        let base_term = inner.base_term;
        let mut fenced: Option<u64> = None;
        let mut failures = Vec::new();
        // Split borrows: the WAL (read) and the follower slots (mutated).
        let Inner { wal, followers, .. } = &mut *inner;
        for slot in followers.iter_mut() {
            if slot.ack_seq >= tip {
                continue;
            }
            let t = Instant::now();
            match self.catch_up(wal, term, tip, tip_term, base_term, slot) {
                Ok(()) => self.ship_ms.record(t.elapsed().as_secs_f64() * 1_000.0),
                Err(ShipError::Io(reason)) => {
                    pqp_obs::counter_add("repl.ship_failed", 1);
                    failures.push(format!("{}: {reason}", slot.addr));
                    slot.conn = None;
                }
                Err(ShipError::Fenced(higher)) => {
                    fenced = Some(higher);
                    slot.conn = None;
                }
            }
        }
        if let Some(higher) = fenced {
            inner.term = higher;
            inner.role = Role::Follower;
            persist_term(&self.config, higher);
            pqp_obs::counter_add("repl.fenced", 1);
            self.publish(inner);
            return Err(Error::Unavailable(format!(
                "fenced by newer term {higher}; stepping down"
            )));
        }
        Ok(failures)
    }

    /// Drive one follower to the log tip: handshake if the link is
    /// fresh, then Append batches from its ack offset — or a full
    /// snapshot when the log has been compacted past it.
    ///
    /// The follower's self-reported ack is never trusted verbatim: it
    /// is clamped to this leader's own tip, and the term the follower
    /// reports for its tip must match this log's entry at that offset —
    /// otherwise the ack walks back so the next `Append`'s consistency
    /// check lands on (and truncates) the conflicting suffix.
    fn catch_up(
        &self,
        wal: &Wal,
        term: u64,
        tip: u64,
        tip_term: u64,
        base_term: u64,
        slot: &mut FollowerSlot,
    ) -> std::result::Result<(), ShipError> {
        for _ in 0..SHIP_ATTEMPTS {
            if slot.conn.is_none() {
                let stream = connect_peer(&slot.addr, self.config.ship_timeout)
                    .map_err(|e| ShipError::Io(e.to_string()))?;
                slot.conn = Some(stream);
                let hello = ReplRequest::Hello {
                    version: PROTOCOL_VERSION,
                    node_id: self.config.node_id.clone(),
                    term,
                    token: self.config.token.clone(),
                    last_seq: tip,
                    last_term: tip_term,
                };
                match self.exchange(slot, &hello)? {
                    ReplResponse::Ok { ack_seq, ack_term, .. } => {
                        slot.ack_seq = validate_ack(wal, base_term, tip, ack_seq, ack_term);
                    }
                    ReplResponse::Reject { term: t, .. } if t > term => {
                        return Err(ShipError::Fenced(t));
                    }
                    ReplResponse::Reject { reason, .. } => {
                        return Err(ShipError::Io(format!("handshake rejected: {reason}")));
                    }
                    ReplResponse::Status(_) => {
                        return Err(ShipError::Io("status answer to hello".to_string()));
                    }
                }
            }
            if slot.ack_seq >= tip {
                return Ok(());
            }
            let records =
                wal.read_from(slot.ack_seq + 1).map_err(|e| ShipError::Io(e.to_string()))?;
            let prev = term_at(wal, base_term, slot.ack_seq);
            let request = match (records, prev) {
                (Some(records), Some(prev_term)) => {
                    let prev_seq = slot.ack_seq;
                    let mut entries = Vec::with_capacity(records.len());
                    for r in records {
                        let (t, payload) =
                            split_record(&r.payload).map_err(|e| ShipError::Io(e.to_string()))?;
                        entries.push(LogEntry { term: t, seq: r.seq, payload: payload.to_vec() });
                    }
                    ReplRequest::Append { term, prev_seq, prev_term, entries }
                }
                // The log was compacted past this follower (its offset
                // is below the snapshot point, so there is no entry to
                // hang a consistency check off): ship the whole state.
                // Under the inner lock the service state corresponds
                // exactly to the log tip.
                _ => ReplRequest::Snapshot {
                    term,
                    last_seq: tip,
                    last_term: tip_term,
                    data: encode_profile_snapshot(&self.service),
                },
            };
            match self.exchange(slot, &request)? {
                ReplResponse::Ok { ack_seq, ack_term, .. } => {
                    slot.ack_seq = validate_ack(wal, base_term, tip, ack_seq, ack_term);
                    if slot.ack_seq >= tip {
                        return Ok(());
                    }
                }
                ReplResponse::Reject { term: t, .. } if t > term => {
                    return Err(ShipError::Fenced(t));
                }
                // A rejection tells us where the follower's log actually
                // matches (a gap, or a conflict walk-back after it
                // truncated a deposed leader's suffix); resume there.
                ReplResponse::Reject { last_seq, .. } => slot.ack_seq = last_seq.min(tip),
                ReplResponse::Status(_) => {
                    return Err(ShipError::Io("status answer to append".to_string()));
                }
            }
        }
        Err(ShipError::Io(format!("follower {} still behind after retries", slot.addr)))
    }

    /// One framed request/response on a follower link, with the
    /// `repl.ship` / `repl.ack` failpoints around it.
    fn exchange(
        &self,
        slot: &mut FollowerSlot,
        request: &ReplRequest,
    ) -> std::result::Result<ReplResponse, ShipError> {
        if let Some(msg) = pqp_obs::failpoint::fire("repl.ship") {
            return Err(ShipError::Io(format!("repl.ship failpoint: {msg}")));
        }
        let Some(stream) = slot.conn.as_mut() else {
            return Err(ShipError::Io("no follower link".to_string()));
        };
        let (tag, payload) = request.encode();
        write_frame(stream, tag, &payload).map_err(|e| ShipError::Io(e.to_string()))?;
        stream.flush().map_err(|e| ShipError::Io(e.to_string()))?;
        let (tag, payload) =
            read_frame(stream, MAX_FRAME_LEN).map_err(|e| ShipError::Io(e.to_string()))?;
        if let Some(msg) = pqp_obs::failpoint::fire("repl.ack") {
            return Err(ShipError::Io(format!("repl.ack failpoint: {msg}")));
        }
        ReplResponse::decode(tag, &payload).map_err(|e| ShipError::Io(e.to_string()))
    }

    /// Compact the log into a snapshot once enough records accumulated.
    /// Best-effort: a failed compaction only costs disk space.
    fn maybe_compact(&self, inner: &mut Inner) {
        if self.config.snapshot_every == 0 {
            return;
        }
        inner.records_since_snapshot += 1;
        if inner.records_since_snapshot < self.config.snapshot_every {
            return;
        }
        inner.records_since_snapshot = 0;
        let data = wrap_record(inner.last_term, &encode_profile_snapshot(&self.service));
        if inner.wal.install_snapshot(&data).is_err() {
            pqp_obs::counter_add("repl.snapshot_failed", 1);
        } else {
            inner.base_term = inner.last_term;
            pqp_obs::counter_add("repl.snapshots", 1);
        }
    }

    /// Handle one peer request (the other side of the leader's internal
    /// `ship` path, plus probes and failover control). `link` is the
    /// per-connection auth state: a link must present the cluster token
    /// in `Hello` before `Append`/`Snapshot` are honored on it.
    pub fn handle_peer(&self, request: ReplRequest, link: &mut PeerLink) -> ReplResponse {
        // Status is read-only and answered from the lock-free cell, so
        // the router's probes stay fast even while this node is stalled
        // in peer I/O under the inner mutex.
        if matches!(request, ReplRequest::Status) {
            return ReplResponse::Status(self.status());
        }
        let mut inner = self.lock();
        let authed = link.authed || self.config.token.is_empty();
        let response = match request {
            ReplRequest::Hello { version, node_id, term, token, last_seq, last_term } => self
                .peer_hello(&mut inner, link, version, &node_id, term, &token, last_seq, last_term),
            ReplRequest::Append { term, prev_seq, prev_term, entries } => {
                if !authed {
                    self.reject_unauthenticated(&inner, "append")
                } else {
                    self.peer_append(&mut inner, term, prev_seq, prev_term, entries)
                }
            }
            ReplRequest::Snapshot { term, last_seq, last_term, data } => {
                if !authed {
                    self.reject_unauthenticated(&inner, "snapshot")
                } else {
                    self.peer_snapshot(&mut inner, term, last_seq, last_term, &data)
                }
            }
            ReplRequest::Status => unreachable!("answered above the lock"),
            ReplRequest::Promote { term, token } => {
                if !self.token_ok(&token) {
                    pqp_obs::counter_add("repl.auth_failures", 1);
                    ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: "authentication failed".to_string(),
                    }
                } else if term <= inner.term {
                    ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!(
                            "promotion term {term} not above current term {}",
                            inner.term
                        ),
                    }
                } else {
                    inner.term = term;
                    inner.role = Role::Leader;
                    persist_term(&self.config, term);
                    // Follower offsets are stale guesses now; each link
                    // re-handshakes and reports its real offset.
                    for slot in &mut inner.followers {
                        slot.conn = None;
                        slot.ack_seq = 0;
                    }
                    pqp_obs::counter_add("repl.promotions", 1);
                    ReplResponse::Ok {
                        term,
                        ack_seq: inner.wal.last_seq(),
                        ack_term: inner.last_term,
                    }
                }
            }
        };
        self.publish(&inner);
        response
    }

    /// Handshake: check the version and the cluster token, fence terms,
    /// then reconcile this node's log tail against the leader's tip. A
    /// tail beyond the leader's tip, or a tip entry whose term the
    /// leader disagrees with, is a deposed leader's unreplicated suffix
    /// — it is truncated here (and the store rebuilt) rather than left
    /// to diverge silently.
    #[allow(clippy::too_many_arguments)]
    fn peer_hello(
        &self,
        inner: &mut Inner,
        link: &mut PeerLink,
        version: u16,
        node_id: &str,
        term: u64,
        token: &str,
        leader_last_seq: u64,
        leader_last_term: u64,
    ) -> ReplResponse {
        if version != PROTOCOL_VERSION {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!(
                    "unsupported protocol version {version} (node speaks {PROTOCOL_VERSION})"
                ),
            };
        }
        if !self.token_ok(token) {
            pqp_obs::counter_add("repl.auth_failures", 1);
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("authentication failed for {node_id}"),
            };
        }
        if let Some(reject) = self.fence(inner, term, "hello") {
            return reject;
        }
        link.authed = true;
        let last = inner.wal.last_seq();
        if last > leader_last_seq {
            // Entries the leader never had: a deposed leader's durable-
            // but-unacked suffix. Cut it before reporting an ack.
            self.drop_suffix(inner, leader_last_seq + 1);
        } else if last == leader_last_seq && last > 0 && inner.last_term != leader_last_term {
            // Same length, different tip identity: the tip (at least)
            // conflicts. Cut it; the walk-back finds the fork point.
            self.drop_suffix(inner, last);
        }
        ReplResponse::Ok {
            term: inner.term,
            ack_seq: inner.wal.last_seq(),
            ack_term: inner.last_term,
        }
    }

    /// Apply shipped entries. In order: fence stale terms, run the
    /// consistency check on the `(prev_seq, prev_term)` identity the
    /// batch hangs off (truncating a conflicting suffix — Raft's
    /// AppendEntries check), reject gaps (telling the leader where the
    /// log really ends), then append + one fsync + apply.
    fn peer_append(
        &self,
        inner: &mut Inner,
        term: u64,
        prev_seq: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
    ) -> ReplResponse {
        if let Some(reject) = self.fence(inner, term, "append") {
            return reject;
        }
        let last = inner.wal.last_seq();
        if prev_seq > last {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: last,
                reason: format!("log gap: batch hangs off seq {prev_seq}, log ends at {last}"),
            };
        }
        if prev_seq < inner.wal.base_seq() {
            // The batch hangs off history below this node's snapshot
            // point, which cannot be checked. Reset; the leader re-ships
            // from scratch (in practice: a snapshot).
            self.reset_empty(inner);
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: "batch predates the local snapshot point; re-ship from scratch".to_string(),
            };
        }
        if term_at(&inner.wal, inner.base_term, prev_seq) != Some(prev_term) {
            // This log's entry at prev_seq is not the one the leader
            // has: everything from it onward is a deposed leader's
            // suffix. Cut it and report where the log now ends so the
            // leader walks back to the fork point.
            self.drop_suffix(inner, prev_seq);
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!(
                    "log conflict at seq {prev_seq}: local term differs from leader's \
                     {prev_term}; suffix truncated"
                ),
            };
        }
        let mut truncated = false;
        let mut first_appended: Option<u64> = None;
        let mut appended = Vec::new();
        for entry in entries {
            let last = inner.wal.last_seq();
            if entry.seq <= last {
                if term_at(&inner.wal, inner.base_term, entry.seq) == Some(entry.term) {
                    continue; // Re-shipped entry we already hold.
                }
                // Conflict inside the overlap: the deposed suffix
                // starts here. Cut it, then append the leader's entry
                // in its place.
                self.drop_suffix(inner, entry.seq);
                truncated = true;
                if inner.wal.last_seq() + 1 != entry.seq {
                    // The cut reached into the snapshot; re-ship.
                    return ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!(
                            "log conflict at seq {} reached the snapshot point; re-ship",
                            entry.seq
                        ),
                    };
                }
            } else if entry.seq != last + 1 {
                return ReplResponse::Reject {
                    term: inner.term,
                    last_seq: last,
                    reason: format!("log gap: got seq {}, log ends at {last}", entry.seq),
                };
            }
            match inner.wal.append(&wrap_record(entry.term, &entry.payload)) {
                Ok(seq) => {
                    inner.last_term = entry.term;
                    first_appended.get_or_insert(seq);
                    appended.push(entry.payload);
                }
                Err(e) => {
                    return ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!("append failed: {e}"),
                    };
                }
            }
        }
        let t = Instant::now();
        if let Err(e) = inner.wal.sync() {
            // Mirror the leader's mutation path: records that failed to
            // become durable come back off the log, so memory and log
            // never disagree. The leader re-ships them next round.
            if let Some(first) = first_appended {
                if inner.wal.truncate_from(first).is_err() {
                    pqp_obs::counter_add("repl.orphaned_records", 1);
                }
                self.refresh_tip_term(inner);
            }
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("fsync failed: {e}"),
            };
        }
        self.fsync_ms.record(t.elapsed().as_secs_f64() * 1_000.0);
        if truncated {
            // History changed under the in-memory store mid-batch:
            // rebuild from durable state instead of applying on top.
            self.rebuild_store(inner);
        } else {
            for payload in appended {
                // The leader validated before logging, so failures here
                // are exceptional; counted, never silently dropped.
                if apply_record(&self.service, &payload).is_err() {
                    pqp_obs::counter_add("repl.apply_errors", 1);
                }
            }
        }
        ReplResponse::Ok {
            term: inner.term,
            ack_seq: inner.wal.last_seq(),
            ack_term: inner.last_term,
        }
    }

    /// Adopt a full snapshot: replace the WAL and the profile store.
    fn peer_snapshot(
        &self,
        inner: &mut Inner,
        term: u64,
        last_seq: u64,
        last_term: u64,
        data: &[u8],
    ) -> ReplResponse {
        if let Some(reject) = self.fence(inner, term, "snapshot") {
            return reject;
        }
        if let Err(e) = inner.wal.reset_to(last_seq, &wrap_record(last_term, data)) {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("snapshot install failed: {e}"),
            };
        }
        inner.base_term = last_term;
        inner.last_term = last_term;
        if let Err(e) = apply_profile_snapshot(&self.service, data) {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("snapshot apply failed: {e}"),
            };
        }
        pqp_obs::counter_add("repl.snapshots_received", 1);
        ReplResponse::Ok {
            term: inner.term,
            ack_seq: inner.wal.last_seq(),
            ack_term: inner.last_term,
        }
    }

    /// The Reject every state-changing frame gets on a link that never
    /// presented the cluster token.
    fn reject_unauthenticated(&self, inner: &Inner, what: &str) -> ReplResponse {
        pqp_obs::counter_add("repl.auth_failures", 1);
        ReplResponse::Reject {
            term: inner.term,
            last_seq: inner.wal.last_seq(),
            reason: format!("unauthenticated {what}: present the cluster token in Hello first"),
        }
    }

    /// Remove the log suffix from `from` onward (inclusive) and rebuild
    /// the in-memory store from what survives. When the cut reaches
    /// into the snapshot, local history is unverifiable — reset to
    /// empty and let the leader re-ship from scratch.
    fn drop_suffix(&self, inner: &mut Inner, from: u64) {
        pqp_obs::counter_add("repl.log_truncations", 1);
        if from > inner.wal.base_seq() && inner.wal.truncate_from(from).is_ok() {
            self.refresh_tip_term(inner);
            self.rebuild_store(inner);
        } else {
            self.reset_empty(inner);
        }
    }

    /// Re-derive `last_term` from the log tip (after a truncation).
    fn refresh_tip_term(&self, inner: &mut Inner) {
        let last = inner.wal.last_seq();
        inner.last_term = if last <= inner.wal.base_seq() {
            inner.base_term
        } else {
            match inner.wal.read_record(last) {
                Ok(Some(record)) => {
                    split_record(&record.payload).map(|(t, _)| t).unwrap_or(inner.base_term)
                }
                _ => inner.base_term,
            }
        };
    }

    /// Rebuild the in-memory profile store from durable state (the
    /// snapshot, then the surviving log) after a truncation changed
    /// history under it.
    fn rebuild_store(&self, inner: &Inner) {
        pqp_obs::counter_add("repl.store_rebuilds", 1);
        match inner.wal.read_snapshot() {
            Ok(Some(snapshot)) => {
                let applied = split_record(&snapshot.data)
                    .and_then(|(_, data)| apply_profile_snapshot(&self.service, data));
                if applied.is_err() {
                    pqp_obs::counter_add("repl.apply_errors", 1);
                }
            }
            _ => {
                for user in self.service.users() {
                    self.service.remove_profile(user);
                }
            }
        }
        if let Ok(Some(records)) = inner.wal.read_from(inner.wal.base_seq() + 1) {
            for record in records {
                let applied = split_record(&record.payload)
                    .and_then(|(_, payload)| apply_record(&self.service, payload).map(|_| ()));
                if applied.is_err() {
                    pqp_obs::counter_add("repl.apply_errors", 1);
                }
            }
        }
    }

    /// Reset to a completely empty replica — empty snapshot at seq 0,
    /// no log, no profiles — for when local history is unverifiable
    /// (a conflict reached into the compacted snapshot).
    fn reset_empty(&self, inner: &mut Inner) {
        let mut w = Writer::new();
        w.u32(0);
        if inner.wal.reset_to(0, &wrap_record(0, &w.into_vec())).is_err() {
            pqp_obs::counter_add("repl.snapshot_failed", 1);
            return;
        }
        inner.base_term = 0;
        inner.last_term = 0;
        for user in self.service.users() {
            self.service.remove_profile(user);
        }
    }

    /// Shared term check for state-changing peer requests: reject stale
    /// terms, adopt higher ones (stepping down if this node led).
    fn fence(&self, inner: &mut Inner, term: u64, what: &str) -> Option<ReplResponse> {
        if term < inner.term {
            return Some(ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("stale term {term} on {what} (current {})", inner.term),
            });
        }
        if term == inner.term && inner.role == Role::Leader {
            // Two leaders at one term cannot happen under promote-by-
            // higher-term; refuse rather than corrupt the log.
            return Some(ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("this node leads term {term}; split brain refused"),
            });
        }
        self.adopt(inner, term);
        None
    }

    /// Adopt `term` if newer, stepping down from leadership.
    fn adopt(&self, inner: &mut Inner, term: u64) {
        if term > inner.term {
            if inner.role == Role::Leader {
                pqp_obs::counter_add("repl.stepdowns", 1);
            }
            inner.term = term;
            inner.role = Role::Follower;
            persist_term(&self.config, term);
        }
    }

    /// Publish this node's replication state into the lock-free status
    /// cell (which answers `Status` probes) and the service telemetry
    /// (`SHOW METRICS` `repl.*` rows, `Telemetry::repl_status`).
    fn publish(&self, inner: &Inner) {
        self.status.store(inner);
        let tip = inner.wal.last_seq();
        let fsync = self.fsync_ms.snapshot();
        let ship = self.ship_ms.snapshot();
        self.service.telemetry().set_repl_status(ReplStatus {
            node_id: self.config.node_id.clone(),
            role: inner.role.label().to_string(),
            term: inner.term,
            last_seq: tip,
            durable_seq: inner.wal.synced_seq(),
            quorum: self.config.quorum,
            followers: inner
                .followers
                .iter()
                .map(|f| FollowerLag {
                    addr: f.addr.clone(),
                    ack_seq: f.ack_seq,
                    lag: tip.saturating_sub(f.ack_seq),
                })
                .collect(),
            fsync_p50_ms: fsync.window.p50(),
            fsync_p99_ms: fsync.window.p99(),
            ship_p50_ms: ship.window.p50(),
            ship_p99_ms: ship.window.p99(),
        });
    }
}

/// Why shipping to one follower failed.
enum ShipError {
    /// Transport/protocol trouble on the link; retry next round.
    Io(String),
    /// The follower knows a higher term — this leader is deposed.
    Fenced(u64),
}

/// Prefix `payload` with the 8-byte big-endian term it was written
/// under. The WAL stays payload-agnostic; this framing is the
/// replication layer's, giving every stored record (and the snapshot)
/// the `(term, seq)` identity the conflict check needs.
fn wrap_record(term: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&term.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Split a stored record into its term prefix and inner payload.
fn split_record(stored: &[u8]) -> Result<(u64, &[u8])> {
    if stored.len() < 8 {
        return Err(Error::Protocol("stored record shorter than its term prefix".to_string()));
    }
    let mut term = [0u8; 8];
    term.copy_from_slice(&stored[..8]);
    Ok((u64::from_be_bytes(term), &stored[8..]))
}

/// Term of the log entry at `seq` as this node's log records it. The
/// empty-log origin (seq 0) has term 0; the snapshot point answers the
/// snapshot's term; sequences outside the log answer `None`.
fn term_at(wal: &Wal, base_term: u64, seq: u64) -> Option<u64> {
    if seq == 0 {
        return Some(0);
    }
    if seq == wal.base_seq() {
        return Some(base_term);
    }
    match wal.read_record(seq) {
        Ok(Some(record)) => split_record(&record.payload).ok().map(|(t, _)| t),
        _ => None,
    }
}

/// Clamp and validate a follower's self-reported `(ack_seq, ack_term)`
/// against the leader's own log. The ack is never trusted above the
/// leader's tip, and the follower's tip term must match the leader's
/// entry at that offset — on mismatch the ack walks back one entry so
/// the next `Append` carries a consistency check that lands on (and
/// truncates) the conflicting suffix.
fn validate_ack(wal: &Wal, base_term: u64, tip: u64, ack_seq: u64, ack_term: u64) -> u64 {
    let clamped = ack_seq.min(tip);
    if clamped < ack_seq {
        pqp_obs::counter_add("repl.ack_clamped", 1);
        return clamped;
    }
    if clamped > 0 {
        if let Some(my_term) = term_at(wal, base_term, clamped) {
            if my_term != ack_term {
                pqp_obs::counter_add("repl.ack_conflicts", 1);
                return clamped - 1;
            }
        }
    }
    clamped
}

/// Check a mutation against the schema *without* applying it: run it on
/// a clone of the user's profile and validate the result. Invalid ops
/// never reach the log, while the real store is only touched after the
/// record is durable.
fn validate_op(service: &Service, user: &UserId, op: &ProfileOp) -> Result<()> {
    let mut profile = service.profile(user.clone()).unwrap_or_else(|| Profile::new(user.as_str()));
    match op {
        ProfileOp::AddSelection { table, column, value, doi } => {
            profile.add_selection(table, column, value.clone(), *doi)?;
        }
        ProfileOp::AddJoin { from_table, from_column, to_table, to_column, doi } => {
            profile.add_join(from_table, from_column, to_table, to_column, *doi)?;
        }
        ProfileOp::Remove => return Ok(()),
    }
    profile.validate(service.database().catalog())?;
    Ok(())
}

/// Apply one mutation to the service. `Ok(removed)` mirrors the
/// single-node `Mutate` dispatch semantics.
fn apply_op(service: &Service, user: &UserId, op: &ProfileOp) -> Result<bool> {
    match op {
        ProfileOp::AddSelection { table, column, value, doi } => {
            service.add_selection(user.clone(), table, column, value.clone(), *doi).map(|_| true)
        }
        ProfileOp::AddJoin { from_table, from_column, to_table, to_column, doi } => service
            .add_join(user.clone(), from_table, from_column, to_table, to_column, *doi)
            .map(|_| true),
        ProfileOp::Remove => Ok(service.remove_profile(user.clone())),
    }
}

/// Decode + apply one WAL/shipped record.
fn apply_record(service: &Service, payload: &[u8]) -> Result<bool> {
    let record = MutationRecord::decode(payload)
        .map_err(|e| Error::Protocol(format!("bad mutation record: {e}")))?;
    apply_op(service, &UserId::from(record.user.as_str()), &record.op)
}

/// Replay recovered durable state into the service: the snapshot (if
/// any) first, then the surviving log suffix. Replay errors are counted
/// but do not abort recovery — one bad record must not take down the
/// node when the rest of the log is sound.
fn replay(service: &Service, recovery: &WalRecovery) -> Result<()> {
    if let Some(snapshot) = &recovery.snapshot {
        let (_, data) = split_record(&snapshot.data)?;
        apply_profile_snapshot(service, data)?;
    }
    for record in &recovery.records {
        let applied = split_record(&record.payload)
            .and_then(|(_, payload)| apply_record(service, payload).map(|_| ()));
        if applied.is_err() {
            pqp_obs::counter_add("repl.replay_errors", 1);
        }
    }
    Ok(())
}

/// Encode the whole profile store as snapshot bytes: `u32` user count,
/// then `(user, profile-json)` string pairs in sorted user order, so
/// identical stores encode to identical bytes.
pub(crate) fn encode_profile_snapshot(service: &Service) -> Vec<u8> {
    let mut pairs = Vec::new();
    for user in service.users() {
        if let Some(profile) = service.profile(user.clone()) {
            pairs.push((user.as_str().to_string(), profile.to_json()));
        }
    }
    let mut w = Writer::new();
    w.u32(pairs.len() as u32);
    for (user, json) in &pairs {
        w.str(user).str(json);
    }
    w.into_vec()
}

/// Replace the service's profile store with a snapshot: install every
/// profile it carries, remove every user it does not.
pub(crate) fn apply_profile_snapshot(service: &Service, data: &[u8]) -> Result<()> {
    let mut r = Reader::new(data);
    let bad = |e: pqp_wire::DecodeError| Error::Protocol(format!("bad snapshot: {e}"));
    let count = r.u32("snapshot user count").map_err(bad)?;
    let mut keep: HashSet<String> = HashSet::with_capacity(count as usize);
    for _ in 0..count {
        let user = r.str("snapshot user").map_err(bad)?;
        let json = r.str("snapshot profile").map_err(bad)?;
        let profile = Profile::from_json(&json)?;
        service.install_profile(profile)?;
        keep.insert(user);
    }
    r.expect_end().map_err(bad)?;
    for user in service.users() {
        if !keep.contains(user.as_str()) {
            service.remove_profile(user);
        }
    }
    Ok(())
}

/// Open a peer link with the ship timeout on connect, reads and writes.
fn connect_peer(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Load the persisted term (0 when absent or unreadable — a fresh node).
fn load_term(config: &ReplConfig) -> u64 {
    std::fs::read_to_string(config.wal_dir.join(TERM_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist the term durably (tmp + fsync + rename). Best-effort: a node
/// that cannot persist its term still fences correctly while running,
/// and a reborn node rejoins as a follower at worst.
fn persist_term(config: &ReplConfig, term: u64) {
    let write = || -> io::Result<()> {
        let tmp = config.wal_dir.join("term.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(term.to_string().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, config.wal_dir.join(TERM_FILE))
    };
    if write().is_err() {
        pqp_obs::counter_add("repl.term_persist_failed", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_datagen::{generate, MovieDbConfig};
    use pqp_storage::Value;

    fn service() -> Arc<Service> {
        Arc::new(Service::new(generate(MovieDbConfig::default()).db))
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqp_repl_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(node: &ReplNode, user: &str, value: i64) -> Result<(u64, bool)> {
        node.client_mutate(
            &UserId::from(user),
            ProfileOp::AddSelection {
                table: "MOVIE".into(),
                column: "year".into(),
                value: Value::Int(value),
                doi: 0.5,
            },
        )
    }

    /// Drive one peer request over a fresh (per-call) link — the common
    /// case for tests with no token configured.
    fn peer(node: &ReplNode, request: ReplRequest) -> ReplResponse {
        node.handle_peer(request, &mut PeerLink::new())
    }

    fn record_for(user: &str, value: i64) -> Vec<u8> {
        MutationRecord {
            user: user.into(),
            op: ProfileOp::AddSelection {
                table: "MOVIE".into(),
                column: "year".into(),
                value: Value::Int(value),
                doi: 0.5,
            },
        }
        .encode()
    }

    #[test]
    fn mutations_survive_reopen_via_replay() {
        let dir = tempdir("replay");
        {
            let node = ReplNode::open(service(), ReplConfig::new("n1", &dir)).unwrap();
            add(&node, "ana", 1999).unwrap();
            add(&node, "bob", 2001).unwrap();
            assert_eq!(node.status().last_seq, 2);
        }
        let svc = service();
        let node = ReplNode::open(Arc::clone(&svc), ReplConfig::new("n1", &dir)).unwrap();
        assert_eq!(node.status().last_seq, 2);
        let users: Vec<String> = svc.users().iter().map(|u| u.as_str().to_string()).collect();
        assert_eq!(users, ["ana", "bob"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_refuses_client_mutations() {
        let dir = tempdir("follower");
        let mut config = ReplConfig::new("n2", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        let err = add(&node, "ana", 2000).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
        assert_eq!(err.kind(), "unavailable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_requires_strictly_higher_term_and_persists() {
        let dir = tempdir("promote");
        let mut config = ReplConfig::new("n3", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config.clone()).unwrap();
        assert!(matches!(
            peer(&node, ReplRequest::Promote { term: 0, token: String::new() }),
            ReplResponse::Reject { .. }
        ));
        assert!(matches!(
            peer(&node, ReplRequest::Promote { term: 3, token: String::new() }),
            ReplResponse::Ok { term: 3, .. }
        ));
        assert_eq!(node.role(), Role::Leader);
        drop(node);
        // The term survives a restart, so the reborn node cannot be
        // promoted with a recycled term.
        let node = ReplNode::open(service(), config).unwrap();
        assert_eq!(node.term(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_term_appends_are_fenced() {
        let dir = tempdir("fence");
        let mut config = ReplConfig::new("n4", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        peer(&node, ReplRequest::Promote { term: 5, token: String::new() });
        let record = MutationRecord { user: "ana".into(), op: ProfileOp::Remove }.encode();
        let resp = peer(
            &node,
            ReplRequest::Append {
                term: 2,
                prev_seq: 0,
                prev_term: 0,
                entries: vec![LogEntry { term: 2, seq: 1, payload: record }],
            },
        );
        let ReplResponse::Reject { term, reason, .. } = resp else {
            panic!("stale append accepted: {resp:?}");
        };
        assert_eq!(term, 5);
        assert!(reason.contains("stale term"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_gaps_report_the_real_log_end() {
        let dir = tempdir("gap");
        let mut config = ReplConfig::new("n5", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        let record = MutationRecord { user: "ana".into(), op: ProfileOp::Remove }.encode();
        let resp = peer(
            &node,
            ReplRequest::Append {
                term: 1,
                prev_seq: 4,
                prev_term: 1,
                entries: vec![LogEntry { term: 1, seq: 5, payload: record }],
            },
        );
        let ReplResponse::Reject { last_seq: 0, reason, .. } = resp else {
            panic!("gap accepted: {resp:?}");
        };
        assert!(reason.contains("log gap"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deposed_leader_suffix_is_truncated_on_conflict() {
        let dir = tempdir("conflict");
        let mut config = ReplConfig::new("n7", &dir);
        config.role = Role::Follower;
        let svc = service();
        let node = ReplNode::open(Arc::clone(&svc), config).unwrap();
        // The old leader (term 1) replicated seqs 1–2 here before dying;
        // seq 2 was durable-but-unacked and the new leader never saw it.
        let resp = peer(
            &node,
            ReplRequest::Append {
                term: 1,
                prev_seq: 0,
                prev_term: 0,
                entries: vec![
                    LogEntry { term: 1, seq: 1, payload: record_for("ana", 1999) },
                    LogEntry { term: 1, seq: 2, payload: record_for("bob", 2001) },
                ],
            },
        );
        assert!(matches!(resp, ReplResponse::Ok { ack_seq: 2, ack_term: 1, .. }), "{resp:?}");
        // The new leader (term 3) holds seq 1 but a *different* seq 2.
        // Its append must truncate bob's entry and install cara's.
        let resp = peer(
            &node,
            ReplRequest::Append {
                term: 3,
                prev_seq: 1,
                prev_term: 1,
                entries: vec![LogEntry { term: 3, seq: 2, payload: record_for("cara", 1985) }],
            },
        );
        assert!(matches!(resp, ReplResponse::Ok { ack_seq: 2, ack_term: 3, .. }), "{resp:?}");
        let users: Vec<String> = svc.users().iter().map(|u| u.as_str().to_string()).collect();
        assert_eq!(users, ["ana", "cara"], "bob's orphaned mutation is gone");
        // And the durable log agrees after a restart.
        let svc2 = service();
        let reborn = ReplNode::open(Arc::clone(&svc2), ReplConfig::new("n7", &dir)).unwrap();
        assert_eq!(reborn.status().last_seq, 2);
        let users: Vec<String> = svc2.users().iter().map(|u| u.as_str().to_string()).collect();
        assert_eq!(users, ["ana", "cara"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hello_reconciles_a_tail_beyond_the_leaders_tip() {
        let dir = tempdir("hello_reconcile");
        let mut config = ReplConfig::new("n8", &dir);
        config.role = Role::Follower;
        let svc = service();
        let node = ReplNode::open(Arc::clone(&svc), config).unwrap();
        peer(
            &node,
            ReplRequest::Append {
                term: 1,
                prev_seq: 0,
                prev_term: 0,
                entries: vec![
                    LogEntry { term: 1, seq: 1, payload: record_for("ana", 1999) },
                    LogEntry { term: 1, seq: 2, payload: record_for("bob", 2001) },
                ],
            },
        );
        // New leader's log ends at seq 1: the handshake itself must cut
        // the follower's longer tail instead of trusting its ack.
        let resp = peer(
            &node,
            ReplRequest::Hello {
                version: PROTOCOL_VERSION,
                node_id: "leader".into(),
                term: 2,
                token: String::new(),
                last_seq: 1,
                last_term: 1,
            },
        );
        assert!(matches!(resp, ReplResponse::Ok { ack_seq: 1, ack_term: 1, .. }), "{resp:?}");
        assert_eq!(node.status().last_seq, 1);
        let users: Vec<String> = svc.users().iter().map(|u| u.as_str().to_string()).collect();
        assert_eq!(users, ["ana"], "bob's orphaned mutation rolled back");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_changing_frames_require_the_cluster_token() {
        let dir = tempdir("auth");
        let mut config = ReplConfig::new("n9", &dir);
        config.role = Role::Follower;
        config.token = "s3cret".to_string();
        let node = ReplNode::open(service(), config).unwrap();
        // Promote with a wrong token is refused outright.
        let resp = peer(&node, ReplRequest::Promote { term: 9, token: "wrong".into() });
        let ReplResponse::Reject { reason, .. } = resp else {
            panic!("unauthenticated promote accepted: {resp:?}");
        };
        assert!(reason.contains("authentication failed"));
        assert_eq!(node.role(), Role::Follower);
        // Append on a link that never authenticated is refused.
        let mut link = PeerLink::new();
        let resp = node.handle_peer(
            ReplRequest::Append {
                term: 1,
                prev_seq: 0,
                prev_term: 0,
                entries: vec![LogEntry { term: 1, seq: 1, payload: record_for("ana", 1999) }],
            },
            &mut link,
        );
        let ReplResponse::Reject { reason, .. } = resp else {
            panic!("unauthenticated append accepted: {resp:?}");
        };
        assert!(reason.contains("unauthenticated"));
        // Status stays open — it is the router's health probe.
        assert!(matches!(
            node.handle_peer(ReplRequest::Status, &mut link),
            ReplResponse::Status(_)
        ));
        // Hello with the right token authenticates the link; the same
        // append is then honored.
        let resp = node.handle_peer(
            ReplRequest::Hello {
                version: PROTOCOL_VERSION,
                node_id: "leader".into(),
                term: 1,
                token: "s3cret".into(),
                last_seq: 0,
                last_term: 0,
            },
            &mut link,
        );
        assert!(matches!(resp, ReplResponse::Ok { .. }), "{resp:?}");
        let resp = node.handle_peer(
            ReplRequest::Append {
                term: 1,
                prev_seq: 0,
                prev_term: 0,
                entries: vec![LogEntry { term: 1, seq: 1, payload: record_for("ana", 1999) }],
            },
            &mut link,
        );
        assert!(matches!(resp, ReplResponse::Ok { ack_seq: 1, .. }), "{resp:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_snapshot_round_trips_byte_identically() {
        let svc = service();
        svc.add_selection(UserId::from("ana"), "MOVIE", "year", Value::Int(1999), 0.9).unwrap();
        svc.add_selection(UserId::from("bob"), "MOVIE", "year", Value::Int(2001), 0.4).unwrap();
        let snap = encode_profile_snapshot(&svc);

        let other = service();
        other.add_selection(UserId::from("zoe"), "MOVIE", "year", Value::Int(1950), 0.1).unwrap();
        apply_profile_snapshot(&other, &snap).unwrap();
        assert_eq!(encode_profile_snapshot(&other), snap, "byte-identical store");
        assert!(other.profile(UserId::from("zoe")).is_none(), "absent users removed");
    }

    #[test]
    fn invalid_mutations_never_reach_the_log() {
        let dir = tempdir("invalid");
        let node = ReplNode::open(service(), ReplConfig::new("n6", &dir)).unwrap();
        let err = node.client_mutate(
            &UserId::from("ana"),
            ProfileOp::AddSelection {
                table: "NO_SUCH_TABLE".into(),
                column: "x".into(),
                value: Value::Int(1),
                doi: 0.5,
            },
        );
        assert!(err.is_err());
        assert_eq!(node.status().last_seq, 0, "rejected op not logged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
