//! Single-leader replication of the profile store.
//!
//! The replication unit is the profile **mutation**: every client
//! mutation the leader accepts is encoded as a
//! [`MutationRecord`], appended to a crash-safe WAL
//! ([`pqp_storage::Wal`]), fsynced, and shipped to every follower. The
//! client sees success only once the record is durable on the leader
//! *and* acknowledged by the configured quorum of nodes — so an acked
//! mutation survives the loss of any `quorum - 1` nodes.
//!
//! ## Roles and terms
//!
//! One node is the **leader** (accepts mutations, ships the log); the
//! rest are **followers** (apply shipped records, refuse client
//! mutations with a typed `unavailable` error). Failover is
//! promotion-by-term: a follower promoted with [`ReplRequest::Promote`]
//! adopts a strictly higher term, and every peer request carries its
//! sender's term — a deposed leader's ships are rejected by the higher
//! term, it steps down on the first rejection, and can never ack
//! another mutation. That is the whole fencing protocol.
//!
//! ## Ack semantics
//!
//! A mutation that fails *before* the WAL fsync was never durable and
//! returns a typed error — retrying is safe and exact. A mutation that
//! is durable locally but misses quorum returns
//! [`Error::Unavailable`]: it *may* replicate later, so a client retry
//! gives at-least-once semantics. Profile mutations are upserts keyed
//! on the preference, so replaying one is harmless.
//!
//! Failpoint sites: `wal.append` and `wal.fsync` (in `pqp-storage`),
//! `repl.ship` (before sending to a follower), `repl.ack` (after the
//! follower answered), `node.crash` (at mutation entry).

use std::collections::HashSet;
use std::io::{self, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pqp_core::Profile;
use pqp_service::{Error, FollowerLag, ReplStatus, Result, Service, UserId};
use pqp_storage::{Wal, WalRecovery};
use pqp_wire::codec::{Reader, Writer};
use pqp_wire::frame::{read_frame, write_frame};
use pqp_wire::proto::ProfileOp;
use pqp_wire::repl::{LogEntry, MutationRecord, NodeStatus, ReplRequest, ReplResponse, Role};
use pqp_wire::{MAX_FRAME_LEN, PROTOCOL_VERSION};

/// Name of the file in the WAL directory holding the persisted term.
const TERM_FILE: &str = "term";

/// Catch-up attempts per follower per ship round before giving up on it
/// for this mutation (it retries on the next one).
const SHIP_ATTEMPTS: usize = 4;

/// Replication knobs. Present only when the node runs replicated — a
/// plain single-node server has no `ReplConfig` and no WAL.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// This node's identity, carried in peer handshakes and telemetry
    /// (`PQP_NODE_ID`, default `node-1`).
    pub node_id: String,
    /// Directory for the WAL, snapshot, and term files (`PQP_WAL_DIR`;
    /// setting it is what turns replication on).
    pub wal_dir: PathBuf,
    /// Nodes (including this one) that must hold a mutation durably
    /// before the client is acked (`PQP_REPL_QUORUM`, default 1 =
    /// leader-only durability).
    pub quorum: usize,
    /// Follower addresses this node ships to when it is the leader
    /// (`PQP_REPL_PEERS`, comma-separated).
    pub peers: Vec<String>,
    /// Starting role (`PQP_REPL_ROLE`: `leader` | `follower`, default
    /// `leader`).
    pub role: Role,
    /// Compact the log into a snapshot after this many appended records
    /// (`PQP_REPL_SNAPSHOT_EVERY`, default 1024; 0 disables).
    pub snapshot_every: u64,
    /// Connect/read/write timeout on peer links
    /// (`PQP_REPL_SHIP_TIMEOUT_MS`, default 5000).
    pub ship_timeout: Duration,
}

impl ReplConfig {
    /// Build from the environment. Returns `None` unless `PQP_WAL_DIR`
    /// is set — the knob that turns the replicated mutation log on.
    pub fn from_env() -> Option<ReplConfig> {
        let wal_dir = std::env::var("PQP_WAL_DIR").ok().filter(|v| !v.trim().is_empty())?;
        let node_id = std::env::var("PQP_NODE_ID")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .unwrap_or_else(|| "node-1".to_string());
        let quorum =
            std::env::var("PQP_REPL_QUORUM").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(1);
        let peers = std::env::var("PQP_REPL_PEERS")
            .ok()
            .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
            .unwrap_or_default();
        let role = match std::env::var("PQP_REPL_ROLE").ok().as_deref() {
            Some("follower") => Role::Follower,
            _ => Role::Leader,
        };
        let snapshot_every = std::env::var("PQP_REPL_SNAPSHOT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1024);
        let ship_timeout = Duration::from_millis(
            std::env::var("PQP_REPL_SHIP_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(5_000),
        );
        Some(ReplConfig {
            node_id,
            wal_dir: PathBuf::from(wal_dir),
            quorum: quorum.max(1),
            peers,
            role,
            snapshot_every,
            ship_timeout,
        })
    }

    /// A config for tests and embedding: leader-by-default, quorum 1,
    /// no peers.
    pub fn new(node_id: impl Into<String>, wal_dir: impl Into<PathBuf>) -> ReplConfig {
        ReplConfig {
            node_id: node_id.into(),
            wal_dir: wal_dir.into(),
            quorum: 1,
            peers: Vec::new(),
            role: Role::Leader,
            snapshot_every: 1024,
            ship_timeout: Duration::from_millis(5_000),
        }
    }
}

/// One follower as tracked by the leader: its address, a lazily opened
/// (and lazily re-opened) peer link, and its acknowledged log offset.
struct FollowerSlot {
    addr: String,
    conn: Option<TcpStream>,
    ack_seq: u64,
}

/// Mutable replication state, guarded by one mutex so the log order,
/// the apply order, and the ship order are the same order.
struct Inner {
    role: Role,
    term: u64,
    wal: Wal,
    followers: Vec<FollowerSlot>,
    records_since_snapshot: u64,
}

/// The replication engine of one node. Owns the WAL, the role/term
/// state, and (as leader) the follower links. Shared between the
/// client dispatch path (mutations) and the peer frame handler.
pub struct ReplNode {
    config: ReplConfig,
    service: Arc<Service>,
    inner: Mutex<Inner>,
    fsync_ms: pqp_obs::WindowedHistogram,
    ship_ms: pqp_obs::WindowedHistogram,
}

impl ReplNode {
    /// Open (or create) the WAL directory, recover state — snapshot
    /// first, then the surviving log suffix, truncating any torn tail —
    /// and replay it into the service so the in-memory profile store is
    /// byte-identical to what was durable at the crash.
    pub fn open(service: Arc<Service>, config: ReplConfig) -> Result<Arc<ReplNode>> {
        let (wal, recovery) = Wal::open(&config.wal_dir)?;
        let term = load_term(&config);
        replay(&service, &recovery)?;
        if recovery.truncated_bytes > 0 {
            pqp_obs::counter_add("repl.torn_tail_bytes", recovery.truncated_bytes as i64);
        }
        let followers = config
            .peers
            .iter()
            .map(|addr| FollowerSlot { addr: addr.clone(), conn: None, ack_seq: 0 })
            .collect();
        let node = Arc::new(ReplNode {
            inner: Mutex::new(Inner {
                role: config.role,
                term,
                wal,
                followers,
                records_since_snapshot: 0,
            }),
            service,
            config,
            fsync_ms: pqp_obs::WindowedHistogram::default(),
            ship_ms: pqp_obs::WindowedHistogram::default(),
        });
        node.publish(&node.lock());
        Ok(node)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// This node's identity.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.lock().role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.lock().term
    }

    /// The node's status as answered to a `Status` probe.
    pub fn status(&self) -> NodeStatus {
        let inner = self.lock();
        NodeStatus {
            node_id: self.config.node_id.clone(),
            role: inner.role,
            term: inner.term,
            last_seq: inner.wal.last_seq(),
            durable_seq: inner.wal.synced_seq(),
        }
    }

    /// Apply one client mutation through the replicated log. Leader
    /// only; followers answer [`Error::Unavailable`] naming the reason.
    ///
    /// Order of operations: validate-and-apply to the service, append +
    /// fsync the WAL, ship to followers, count the quorum. The client
    /// is acked only after the quorum holds the record durably.
    pub fn client_mutate(&self, user: &UserId, op: ProfileOp) -> Result<(u64, bool)> {
        if let Some(msg) = pqp_obs::failpoint::fire("node.crash") {
            return Err(Error::Internal(format!("node.crash failpoint: {msg}")));
        }
        let mut inner = self.lock();
        if inner.role != Role::Leader {
            return Err(Error::Unavailable(format!(
                "not the leader (follower at term {})",
                inner.term
            )));
        }
        // Validate-and-apply first: an op the service rejects never
        // reaches the log, so the log replays cleanly forever.
        let removed = apply_op(&self.service, user, &op)?;
        let record = MutationRecord { user: user.as_str().to_string(), op }.encode();
        let seq = inner.wal.append(&record)?;
        let t = Instant::now();
        inner.wal.sync()?;
        self.fsync_ms.record(t.elapsed().as_secs_f64() * 1_000.0);

        let ship_failures = self.ship(&mut inner)?;
        let acked = 1 + inner.followers.iter().filter(|f| f.ack_seq >= seq).count();
        let quorum = self.config.quorum;
        self.maybe_compact(&mut inner);
        self.publish(&inner);
        if acked < quorum {
            pqp_obs::counter_add("repl.quorum_failures", 1);
            let detail = if ship_failures.is_empty() {
                String::new()
            } else {
                format!("; {}", ship_failures.join("; "))
            };
            return Err(Error::Unavailable(format!(
                "quorum not reached: {acked}/{quorum} nodes hold seq {seq} \
                 (durable on leader; a retry is safe){detail}"
            )));
        }
        Ok((self.service.epoch(user.clone()), removed))
    }

    /// Bring every follower up to the log tip. A follower that cannot
    /// be reached this round is skipped (its `ack_seq` stays behind and
    /// the failure is reported back for the quorum error message); a
    /// rejection with a higher term fences this leader — it steps down
    /// and the mutation fails `Unavailable`.
    fn ship(&self, inner: &mut Inner) -> Result<Vec<String>> {
        let term = inner.term;
        let tip = inner.wal.last_seq();
        let mut fenced: Option<u64> = None;
        let mut failures = Vec::new();
        // Split borrows: the WAL (read) and the follower slots (mutated).
        let Inner { wal, followers, .. } = &mut *inner;
        for slot in followers.iter_mut() {
            if slot.ack_seq >= tip {
                continue;
            }
            let t = Instant::now();
            match self.catch_up(wal, term, tip, slot) {
                Ok(()) => self.ship_ms.record(t.elapsed().as_secs_f64() * 1_000.0),
                Err(ShipError::Io(reason)) => {
                    pqp_obs::counter_add("repl.ship_failed", 1);
                    failures.push(format!("{}: {reason}", slot.addr));
                    slot.conn = None;
                }
                Err(ShipError::Fenced(higher)) => {
                    fenced = Some(higher);
                    slot.conn = None;
                }
            }
        }
        if let Some(higher) = fenced {
            inner.term = higher;
            inner.role = Role::Follower;
            persist_term(&self.config, higher);
            pqp_obs::counter_add("repl.fenced", 1);
            self.publish(inner);
            return Err(Error::Unavailable(format!(
                "fenced by newer term {higher}; stepping down"
            )));
        }
        Ok(failures)
    }

    /// Drive one follower to the log tip: handshake if the link is
    /// fresh, then Append batches from its ack offset — or a full
    /// snapshot when the log has been compacted past it.
    fn catch_up(
        &self,
        wal: &Wal,
        term: u64,
        tip: u64,
        slot: &mut FollowerSlot,
    ) -> std::result::Result<(), ShipError> {
        for _ in 0..SHIP_ATTEMPTS {
            if slot.conn.is_none() {
                let stream = connect_peer(&slot.addr, self.config.ship_timeout)
                    .map_err(|e| ShipError::Io(e.to_string()))?;
                slot.conn = Some(stream);
                let hello = ReplRequest::Hello {
                    version: PROTOCOL_VERSION,
                    node_id: self.config.node_id.clone(),
                    term,
                };
                match self.exchange(slot, &hello)? {
                    ReplResponse::Ok { ack_seq, .. } => slot.ack_seq = ack_seq,
                    ReplResponse::Reject { term: t, .. } if t > term => {
                        return Err(ShipError::Fenced(t));
                    }
                    ReplResponse::Reject { reason, .. } => {
                        return Err(ShipError::Io(format!("handshake rejected: {reason}")));
                    }
                    ReplResponse::Status(_) => {
                        return Err(ShipError::Io("status answer to hello".to_string()));
                    }
                }
            }
            if slot.ack_seq >= tip {
                return Ok(());
            }
            let request =
                match wal.read_from(slot.ack_seq + 1).map_err(|e| ShipError::Io(e.to_string()))? {
                    Some(records) => ReplRequest::Append {
                        term,
                        entries: records
                            .into_iter()
                            .map(|r| LogEntry { seq: r.seq, payload: r.payload })
                            .collect(),
                    },
                    // The log was compacted past this follower: ship the
                    // whole state. Under the inner lock the service state
                    // corresponds exactly to the log tip.
                    None => ReplRequest::Snapshot {
                        term,
                        last_seq: tip,
                        data: encode_profile_snapshot(&self.service),
                    },
                };
            match self.exchange(slot, &request)? {
                ReplResponse::Ok { ack_seq, .. } => {
                    slot.ack_seq = ack_seq;
                    if ack_seq >= tip {
                        return Ok(());
                    }
                }
                ReplResponse::Reject { term: t, .. } if t > term => {
                    return Err(ShipError::Fenced(t));
                }
                // A gap rejection tells us where the follower's log
                // actually ends; resume from there next attempt.
                ReplResponse::Reject { last_seq, .. } => slot.ack_seq = last_seq,
                ReplResponse::Status(_) => {
                    return Err(ShipError::Io("status answer to append".to_string()));
                }
            }
        }
        Err(ShipError::Io(format!("follower {} still behind after retries", slot.addr)))
    }

    /// One framed request/response on a follower link, with the
    /// `repl.ship` / `repl.ack` failpoints around it.
    fn exchange(
        &self,
        slot: &mut FollowerSlot,
        request: &ReplRequest,
    ) -> std::result::Result<ReplResponse, ShipError> {
        if let Some(msg) = pqp_obs::failpoint::fire("repl.ship") {
            return Err(ShipError::Io(format!("repl.ship failpoint: {msg}")));
        }
        let Some(stream) = slot.conn.as_mut() else {
            return Err(ShipError::Io("no follower link".to_string()));
        };
        let (tag, payload) = request.encode();
        write_frame(stream, tag, &payload).map_err(|e| ShipError::Io(e.to_string()))?;
        stream.flush().map_err(|e| ShipError::Io(e.to_string()))?;
        let (tag, payload) =
            read_frame(stream, MAX_FRAME_LEN).map_err(|e| ShipError::Io(e.to_string()))?;
        if let Some(msg) = pqp_obs::failpoint::fire("repl.ack") {
            return Err(ShipError::Io(format!("repl.ack failpoint: {msg}")));
        }
        ReplResponse::decode(tag, &payload).map_err(|e| ShipError::Io(e.to_string()))
    }

    /// Compact the log into a snapshot once enough records accumulated.
    /// Best-effort: a failed compaction only costs disk space.
    fn maybe_compact(&self, inner: &mut Inner) {
        if self.config.snapshot_every == 0 {
            return;
        }
        inner.records_since_snapshot += 1;
        if inner.records_since_snapshot < self.config.snapshot_every {
            return;
        }
        inner.records_since_snapshot = 0;
        let data = encode_profile_snapshot(&self.service);
        if inner.wal.install_snapshot(&data).is_err() {
            pqp_obs::counter_add("repl.snapshot_failed", 1);
        } else {
            pqp_obs::counter_add("repl.snapshots", 1);
        }
    }

    /// Handle one peer request (the other side of the leader's internal
    /// `ship` path, plus probes and failover control).
    pub fn handle_peer(&self, request: ReplRequest) -> ReplResponse {
        let mut inner = self.lock();
        let response = match request {
            ReplRequest::Hello { version, node_id, term } => {
                if version != PROTOCOL_VERSION {
                    ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!(
                            "unsupported protocol version {version} (node speaks \
                             {PROTOCOL_VERSION})"
                        ),
                    }
                } else if term < inner.term {
                    ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!("stale term {term} from {node_id}"),
                    }
                } else {
                    self.adopt(&mut inner, term);
                    ReplResponse::Ok { term: inner.term, ack_seq: inner.wal.last_seq() }
                }
            }
            ReplRequest::Append { term, entries } => self.peer_append(&mut inner, term, entries),
            ReplRequest::Snapshot { term, last_seq, data } => {
                self.peer_snapshot(&mut inner, term, last_seq, &data)
            }
            ReplRequest::Status => ReplResponse::Status(NodeStatus {
                node_id: self.config.node_id.clone(),
                role: inner.role,
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                durable_seq: inner.wal.synced_seq(),
            }),
            ReplRequest::Promote { term } => {
                if term <= inner.term {
                    ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!(
                            "promotion term {term} not above current term {}",
                            inner.term
                        ),
                    }
                } else {
                    inner.term = term;
                    inner.role = Role::Leader;
                    persist_term(&self.config, term);
                    // Follower offsets are stale guesses now; each link
                    // re-handshakes and reports its real offset.
                    for slot in &mut inner.followers {
                        slot.conn = None;
                        slot.ack_seq = 0;
                    }
                    pqp_obs::counter_add("repl.promotions", 1);
                    ReplResponse::Ok { term, ack_seq: inner.wal.last_seq() }
                }
            }
        };
        self.publish(&inner);
        response
    }

    /// Apply shipped entries: fence stale terms, reject gaps (telling
    /// the leader where the log really ends), skip already-held seqs,
    /// then append + one fsync + apply.
    fn peer_append(&self, inner: &mut Inner, term: u64, entries: Vec<LogEntry>) -> ReplResponse {
        if let Some(reject) = self.fence(inner, term, "append") {
            return reject;
        }
        let mut applied = Vec::new();
        for entry in entries {
            let last = inner.wal.last_seq();
            if entry.seq <= last {
                continue; // Re-shipped record we already hold.
            }
            if entry.seq != last + 1 {
                return ReplResponse::Reject {
                    term: inner.term,
                    last_seq: last,
                    reason: format!("log gap: got seq {}, log ends at {last}", entry.seq),
                };
            }
            match inner.wal.append(&entry.payload) {
                Ok(_) => applied.push(entry.payload),
                Err(e) => {
                    return ReplResponse::Reject {
                        term: inner.term,
                        last_seq: inner.wal.last_seq(),
                        reason: format!("append failed: {e}"),
                    };
                }
            }
        }
        let t = Instant::now();
        if let Err(e) = inner.wal.sync() {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("fsync failed: {e}"),
            };
        }
        self.fsync_ms.record(t.elapsed().as_secs_f64() * 1_000.0);
        for payload in applied {
            // The leader validated before logging, so failures here are
            // exceptional; they are counted, never silently dropped.
            if apply_record(&self.service, &payload).is_err() {
                pqp_obs::counter_add("repl.apply_errors", 1);
            }
        }
        ReplResponse::Ok { term: inner.term, ack_seq: inner.wal.last_seq() }
    }

    /// Adopt a full snapshot: replace the WAL and the profile store.
    fn peer_snapshot(
        &self,
        inner: &mut Inner,
        term: u64,
        last_seq: u64,
        data: &[u8],
    ) -> ReplResponse {
        if let Some(reject) = self.fence(inner, term, "snapshot") {
            return reject;
        }
        if let Err(e) = inner.wal.reset_to(last_seq, data) {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("snapshot install failed: {e}"),
            };
        }
        if let Err(e) = apply_profile_snapshot(&self.service, data) {
            return ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("snapshot apply failed: {e}"),
            };
        }
        pqp_obs::counter_add("repl.snapshots_received", 1);
        ReplResponse::Ok { term: inner.term, ack_seq: inner.wal.last_seq() }
    }

    /// Shared term check for state-changing peer requests: reject stale
    /// terms, adopt higher ones (stepping down if this node led).
    fn fence(&self, inner: &mut Inner, term: u64, what: &str) -> Option<ReplResponse> {
        if term < inner.term {
            return Some(ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("stale term {term} on {what} (current {})", inner.term),
            });
        }
        if term == inner.term && inner.role == Role::Leader {
            // Two leaders at one term cannot happen under promote-by-
            // higher-term; refuse rather than corrupt the log.
            return Some(ReplResponse::Reject {
                term: inner.term,
                last_seq: inner.wal.last_seq(),
                reason: format!("this node leads term {term}; split brain refused"),
            });
        }
        self.adopt(inner, term);
        None
    }

    /// Adopt `term` if newer, stepping down from leadership.
    fn adopt(&self, inner: &mut Inner, term: u64) {
        if term > inner.term {
            if inner.role == Role::Leader {
                pqp_obs::counter_add("repl.stepdowns", 1);
            }
            inner.term = term;
            inner.role = Role::Follower;
            persist_term(&self.config, term);
        }
    }

    /// Publish this node's replication state into the service telemetry
    /// (`SHOW METRICS` `repl.*` rows, `Telemetry::repl_status`).
    fn publish(&self, inner: &Inner) {
        let tip = inner.wal.last_seq();
        let fsync = self.fsync_ms.snapshot();
        let ship = self.ship_ms.snapshot();
        self.service.telemetry().set_repl_status(ReplStatus {
            node_id: self.config.node_id.clone(),
            role: inner.role.label().to_string(),
            term: inner.term,
            last_seq: tip,
            durable_seq: inner.wal.synced_seq(),
            quorum: self.config.quorum,
            followers: inner
                .followers
                .iter()
                .map(|f| FollowerLag {
                    addr: f.addr.clone(),
                    ack_seq: f.ack_seq,
                    lag: tip.saturating_sub(f.ack_seq),
                })
                .collect(),
            fsync_p50_ms: fsync.window.p50(),
            fsync_p99_ms: fsync.window.p99(),
            ship_p50_ms: ship.window.p50(),
            ship_p99_ms: ship.window.p99(),
        });
    }
}

/// Why shipping to one follower failed.
enum ShipError {
    /// Transport/protocol trouble on the link; retry next round.
    Io(String),
    /// The follower knows a higher term — this leader is deposed.
    Fenced(u64),
}

/// Validate-and-apply one mutation to the service. `Ok(removed)`
/// mirrors the single-node `Mutate` dispatch semantics.
fn apply_op(service: &Service, user: &UserId, op: &ProfileOp) -> Result<bool> {
    match op {
        ProfileOp::AddSelection { table, column, value, doi } => {
            service.add_selection(user.clone(), table, column, value.clone(), *doi).map(|_| true)
        }
        ProfileOp::AddJoin { from_table, from_column, to_table, to_column, doi } => service
            .add_join(user.clone(), from_table, from_column, to_table, to_column, *doi)
            .map(|_| true),
        ProfileOp::Remove => Ok(service.remove_profile(user.clone())),
    }
}

/// Decode + apply one WAL/shipped record.
fn apply_record(service: &Service, payload: &[u8]) -> Result<bool> {
    let record = MutationRecord::decode(payload)
        .map_err(|e| Error::Protocol(format!("bad mutation record: {e}")))?;
    apply_op(service, &UserId::from(record.user.as_str()), &record.op)
}

/// Replay recovered durable state into the service: the snapshot (if
/// any) first, then the surviving log suffix. Replay errors are counted
/// but do not abort recovery — one bad record must not take down the
/// node when the rest of the log is sound.
fn replay(service: &Service, recovery: &WalRecovery) -> Result<()> {
    if let Some(snapshot) = &recovery.snapshot {
        apply_profile_snapshot(service, &snapshot.data)?;
    }
    for record in &recovery.records {
        if apply_record(service, &record.payload).is_err() {
            pqp_obs::counter_add("repl.replay_errors", 1);
        }
    }
    Ok(())
}

/// Encode the whole profile store as snapshot bytes: `u32` user count,
/// then `(user, profile-json)` string pairs in sorted user order, so
/// identical stores encode to identical bytes.
pub(crate) fn encode_profile_snapshot(service: &Service) -> Vec<u8> {
    let mut pairs = Vec::new();
    for user in service.users() {
        if let Some(profile) = service.profile(user.clone()) {
            pairs.push((user.as_str().to_string(), profile.to_json()));
        }
    }
    let mut w = Writer::new();
    w.u32(pairs.len() as u32);
    for (user, json) in &pairs {
        w.str(user).str(json);
    }
    w.into_vec()
}

/// Replace the service's profile store with a snapshot: install every
/// profile it carries, remove every user it does not.
pub(crate) fn apply_profile_snapshot(service: &Service, data: &[u8]) -> Result<()> {
    let mut r = Reader::new(data);
    let bad = |e: pqp_wire::DecodeError| Error::Protocol(format!("bad snapshot: {e}"));
    let count = r.u32("snapshot user count").map_err(bad)?;
    let mut keep: HashSet<String> = HashSet::with_capacity(count as usize);
    for _ in 0..count {
        let user = r.str("snapshot user").map_err(bad)?;
        let json = r.str("snapshot profile").map_err(bad)?;
        let profile = Profile::from_json(&json)?;
        service.install_profile(profile)?;
        keep.insert(user);
    }
    r.expect_end().map_err(bad)?;
    for user in service.users() {
        if !keep.contains(user.as_str()) {
            service.remove_profile(user);
        }
    }
    Ok(())
}

/// Open a peer link with the ship timeout on connect, reads and writes.
fn connect_peer(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Load the persisted term (0 when absent or unreadable — a fresh node).
fn load_term(config: &ReplConfig) -> u64 {
    std::fs::read_to_string(config.wal_dir.join(TERM_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist the term durably (tmp + fsync + rename). Best-effort: a node
/// that cannot persist its term still fences correctly while running,
/// and a reborn node rejoins as a follower at worst.
fn persist_term(config: &ReplConfig, term: u64) {
    let write = || -> io::Result<()> {
        let tmp = config.wal_dir.join("term.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(term.to_string().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, config.wal_dir.join(TERM_FILE))
    };
    if write().is_err() {
        pqp_obs::counter_add("repl.term_persist_failed", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_datagen::{generate, MovieDbConfig};
    use pqp_storage::Value;

    fn service() -> Arc<Service> {
        Arc::new(Service::new(generate(MovieDbConfig::default()).db))
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqp_repl_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(node: &ReplNode, user: &str, value: i64) -> Result<(u64, bool)> {
        node.client_mutate(
            &UserId::from(user),
            ProfileOp::AddSelection {
                table: "MOVIE".into(),
                column: "year".into(),
                value: Value::Int(value),
                doi: 0.5,
            },
        )
    }

    #[test]
    fn mutations_survive_reopen_via_replay() {
        let dir = tempdir("replay");
        {
            let node = ReplNode::open(service(), ReplConfig::new("n1", &dir)).unwrap();
            add(&node, "ana", 1999).unwrap();
            add(&node, "bob", 2001).unwrap();
            assert_eq!(node.status().last_seq, 2);
        }
        let svc = service();
        let node = ReplNode::open(Arc::clone(&svc), ReplConfig::new("n1", &dir)).unwrap();
        assert_eq!(node.status().last_seq, 2);
        let users: Vec<String> = svc.users().iter().map(|u| u.as_str().to_string()).collect();
        assert_eq!(users, ["ana", "bob"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_refuses_client_mutations() {
        let dir = tempdir("follower");
        let mut config = ReplConfig::new("n2", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        let err = add(&node, "ana", 2000).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
        assert_eq!(err.kind(), "unavailable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_requires_strictly_higher_term_and_persists() {
        let dir = tempdir("promote");
        let mut config = ReplConfig::new("n3", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config.clone()).unwrap();
        assert!(matches!(
            node.handle_peer(ReplRequest::Promote { term: 0 }),
            ReplResponse::Reject { .. }
        ));
        assert!(matches!(
            node.handle_peer(ReplRequest::Promote { term: 3 }),
            ReplResponse::Ok { term: 3, .. }
        ));
        assert_eq!(node.role(), Role::Leader);
        drop(node);
        // The term survives a restart, so the reborn node cannot be
        // promoted with a recycled term.
        let node = ReplNode::open(service(), config).unwrap();
        assert_eq!(node.term(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_term_appends_are_fenced() {
        let dir = tempdir("fence");
        let mut config = ReplConfig::new("n4", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        node.handle_peer(ReplRequest::Promote { term: 5 });
        let record = MutationRecord { user: "ana".into(), op: ProfileOp::Remove }.encode();
        let resp = node.handle_peer(ReplRequest::Append {
            term: 2,
            entries: vec![LogEntry { seq: 1, payload: record }],
        });
        let ReplResponse::Reject { term, reason, .. } = resp else {
            panic!("stale append accepted: {resp:?}");
        };
        assert_eq!(term, 5);
        assert!(reason.contains("stale term"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_gaps_report_the_real_log_end() {
        let dir = tempdir("gap");
        let mut config = ReplConfig::new("n5", &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(service(), config).unwrap();
        let record = MutationRecord { user: "ana".into(), op: ProfileOp::Remove }.encode();
        let resp = node.handle_peer(ReplRequest::Append {
            term: 1,
            entries: vec![LogEntry { seq: 5, payload: record }],
        });
        let ReplResponse::Reject { last_seq: 0, reason, .. } = resp else {
            panic!("gap accepted: {resp:?}");
        };
        assert!(reason.contains("log gap"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_snapshot_round_trips_byte_identically() {
        let svc = service();
        svc.add_selection(UserId::from("ana"), "MOVIE", "year", Value::Int(1999), 0.9).unwrap();
        svc.add_selection(UserId::from("bob"), "MOVIE", "year", Value::Int(2001), 0.4).unwrap();
        let snap = encode_profile_snapshot(&svc);

        let other = service();
        other.add_selection(UserId::from("zoe"), "MOVIE", "year", Value::Int(1950), 0.1).unwrap();
        apply_profile_snapshot(&other, &snap).unwrap();
        assert_eq!(encode_profile_snapshot(&other), snap, "byte-identical store");
        assert!(other.profile(UserId::from("zoe")).is_none(), "absent users removed");
    }

    #[test]
    fn invalid_mutations_never_reach_the_log() {
        let dir = tempdir("invalid");
        let node = ReplNode::open(service(), ReplConfig::new("n6", &dir)).unwrap();
        let err = node.client_mutate(
            &UserId::from("ana"),
            ProfileOp::AddSelection {
                table: "NO_SUCH_TABLE".into(),
                column: "x".into(),
                value: Value::Int(1),
                doi: 0.5,
            },
        );
        assert!(err.is_err());
        assert_eq!(node.status().last_seq, 0, "rejected op not logged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
