//! Thin routing tier for a replicated cluster: health-check the nodes,
//! proxy client connections to the current leader, and promote the
//! most-caught-up follower when the leader dies.
//!
//! The router holds no replicated state of its own — it discovers the
//! leader with [`ReplRequest::Status`] probes and routes by proxying
//! raw bytes, so the wire protocol passes through untouched. Failover
//! is promote-by-term: after `fail_threshold` consecutive probe rounds
//! with no reachable leader, the router picks the reachable node with
//! the longest log (`last_seq`), sends [`ReplRequest::Promote`] with a
//! term above every term it has seen, and the old leader — should it
//! come back — is fenced by that higher term on its first ship.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pqp_service::Error;
use pqp_wire::frame::{read_frame, write_frame};
use pqp_wire::proto::{Response, WireError};
use pqp_wire::repl::{NodeStatus, ReplRequest, ReplResponse, Role};
use pqp_wire::MAX_FRAME_LEN;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address for client connections (`PQP_ROUTER_ADDR`,
    /// default `127.0.0.1:5440`).
    pub addr: String,
    /// Node addresses to probe and route to (`PQP_ROUTER_NODES`,
    /// comma-separated; setting it is what turns router mode on).
    pub nodes: Vec<String>,
    /// Delay between health-probe rounds (`PQP_ROUTER_PROBE_MS`,
    /// default 200).
    pub probe_interval: Duration,
    /// Consecutive leaderless probe rounds before the router promotes a
    /// follower (`PQP_ROUTER_FAIL_THRESHOLD`, default 3).
    pub fail_threshold: u32,
    /// Connect/read/write timeout on probes and promote requests
    /// (`PQP_ROUTER_TIMEOUT_MS`, default 1000).
    pub probe_timeout: Duration,
    /// Cluster shared secret carried on `Promote` (`PQP_REPL_TOKEN` —
    /// the same token the nodes are configured with; empty when the
    /// cluster runs without auth).
    pub token: String,
}

impl RouterConfig {
    /// Build from the environment; `None` unless `PQP_ROUTER_NODES` is
    /// set (the knob that selects router mode over server mode).
    pub fn from_env() -> Option<RouterConfig> {
        let nodes: Vec<String> = std::env::var("PQP_ROUTER_NODES")
            .ok()?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if nodes.is_empty() {
            return None;
        }
        Some(RouterConfig {
            addr: std::env::var("PQP_ROUTER_ADDR").unwrap_or_else(|_| "127.0.0.1:5440".to_string()),
            nodes,
            probe_interval: Duration::from_millis(
                std::env::var("PQP_ROUTER_PROBE_MS")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(200),
            ),
            fail_threshold: std::env::var("PQP_ROUTER_FAIL_THRESHOLD")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(3),
            probe_timeout: Duration::from_millis(
                std::env::var("PQP_ROUTER_TIMEOUT_MS")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(1_000),
            ),
            token: std::env::var("PQP_REPL_TOKEN").unwrap_or_default(),
        })
    }

    /// A config for tests: given nodes, fast probes.
    pub fn new(addr: impl Into<String>, nodes: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: addr.into(),
            nodes,
            probe_interval: Duration::from_millis(50),
            fail_threshold: 2,
            probe_timeout: Duration::from_millis(500),
            token: String::new(),
        }
    }
}

struct RouterState {
    config: RouterConfig,
    leader: Mutex<Option<String>>,
    /// Highest term seen in any probe; promotions go strictly above it.
    max_term: Mutex<u64>,
    misses: AtomicU32,
    shutdown: AtomicBool,
}

/// A bound router. [`Router::spawn`] starts the health loop and the
/// accept loop on their own threads.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

impl Router {
    /// Bind the router's listen socket.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Router {
            listener,
            state: Arc::new(RouterState {
                config,
                leader: Mutex::new(None),
                max_term: Mutex::new(0),
                misses: AtomicU32::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start the health loop and the accept loop.
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let Router { listener, state } = self;
        let health_state = Arc::clone(&state);
        let health = std::thread::Builder::new()
            .name("pqp-router-health".to_string())
            .spawn(move || health_loop(&health_state))?;
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("pqp-router-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_state))?;
        Ok(RouterHandle { addr, state, threads: vec![health, accept] })
    }
}

/// Handle to a running router: leader view, manual failover, shutdown.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node currently routed to, if any.
    pub fn leader(&self) -> Option<String> {
        self.state.leader.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Trigger failover now (manual promotion), bypassing the probe
    /// threshold. Returns the promoted node, if any was reachable.
    pub fn promote_now(&self) -> Option<String> {
        promote(&self.state)
    }

    /// Stop both loops and join them.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn health_loop(state: &Arc<RouterState>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        tick(state);
        std::thread::sleep(state.config.probe_interval);
    }
}

/// One probe round: find the reachable leader with the highest term; if
/// none for `fail_threshold` consecutive rounds, promote.
fn tick(state: &Arc<RouterState>) {
    let mut best: Option<(String, NodeStatus)> = None;
    let mut max_term = 0u64;
    for addr in &state.config.nodes {
        let Some(status) = probe(addr, state.config.probe_timeout) else { continue };
        max_term = max_term.max(status.term);
        if status.role == Role::Leader && best.as_ref().is_none_or(|(_, b)| status.term > b.term) {
            best = Some((addr.clone(), status));
        }
    }
    {
        let mut seen = state.max_term.lock().unwrap_or_else(|e| e.into_inner());
        *seen = (*seen).max(max_term);
    }
    match best {
        Some((addr, _)) => {
            state.misses.store(0, Ordering::Relaxed);
            let mut leader = state.leader.lock().unwrap_or_else(|e| e.into_inner());
            if leader.as_deref() != Some(addr.as_str()) {
                pqp_obs::counter_add("router.leader_changes", 1);
                *leader = Some(addr);
            }
        }
        None => {
            *state.leader.lock().unwrap_or_else(|e| e.into_inner()) = None;
            let misses = state.misses.fetch_add(1, Ordering::Relaxed) + 1;
            if misses >= state.config.fail_threshold {
                state.misses.store(0, Ordering::Relaxed);
                promote(state);
            }
        }
    }
}

/// Promote the reachable node with the longest log at a term above
/// everything seen. Returns the promoted node's address on success.
fn promote(state: &Arc<RouterState>) -> Option<String> {
    let mut candidate: Option<(String, NodeStatus)> = None;
    for addr in &state.config.nodes {
        let Some(status) = probe(addr, state.config.probe_timeout) else { continue };
        if candidate.as_ref().is_none_or(|(_, c)| status.last_seq > c.last_seq) {
            candidate = Some((addr.clone(), status));
        }
    }
    let (addr, status) = candidate?;
    let term = {
        let mut seen = state.max_term.lock().unwrap_or_else(|e| e.into_inner());
        *seen = (*seen).max(status.term) + 1;
        *seen
    };
    let promote = ReplRequest::Promote { term, token: state.config.token.clone() };
    let response = peer_rpc(&addr, &promote, state.config.probe_timeout);
    match response {
        Ok(ReplResponse::Ok { .. }) => {
            pqp_obs::counter_add("router.promotions", 1);
            *state.leader.lock().unwrap_or_else(|e| e.into_inner()) = Some(addr.clone());
            Some(addr)
        }
        _ => {
            pqp_obs::counter_add("router.promote_failed", 1);
            None
        }
    }
}

/// Probe one node's replication status; `None` when unreachable or
/// answering garbage.
fn probe(addr: &str, timeout: Duration) -> Option<NodeStatus> {
    match peer_rpc(addr, &ReplRequest::Status, timeout) {
        Ok(ReplResponse::Status(status)) => Some(status),
        _ => None,
    }
}

/// One framed request/response against a node, with timeouts.
fn peer_rpc(addr: &str, request: &ReplRequest, timeout: Duration) -> io::Result<ReplResponse> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable node"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let (tag, payload) = request.encode();
    write_frame(&mut stream, tag, &payload)
        .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
    stream.flush()?;
    let (tag, payload) = read_frame(&mut stream, MAX_FRAME_LEN)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    ReplResponse::decode(tag, &payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn accept_loop(listener: TcpListener, state: &Arc<RouterState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else {
            pqp_obs::counter_add("router.accept_failed", 1);
            continue;
        };
        pqp_obs::counter_add("router.connections", 1);
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("pqp-router-proxy".to_string())
            .spawn(move || route(client, &conn_state));
        if spawned.is_err() {
            pqp_obs::counter_add("router.spawn_failed", 1);
        }
    }
}

/// Proxy one client connection to the current leader, or answer a typed
/// `unavailable` error frame when there is none.
fn route(client: TcpStream, state: &Arc<RouterState>) {
    let leader = state.leader.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(leader) = leader else {
        refuse(client, "no leader available; failover in progress");
        return;
    };
    let upstream = match TcpStream::connect(&leader) {
        Ok(s) => s,
        Err(e) => {
            refuse(client, &format!("leader {leader} unreachable: {e}"));
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    proxy(client, upstream);
}

/// Answer one typed error frame and close. Best-effort — the client may
/// already be gone.
fn refuse(mut client: TcpStream, reason: &str) {
    pqp_obs::counter_add("router.refused", 1);
    let error = WireError::from_error(&Error::Unavailable(reason.to_string()));
    let (tag, payload) = Response::Error(error).encode();
    let _ = write_frame(&mut client, tag, &payload);
    let _ = client.flush();
    let _ = client.shutdown(Shutdown::Both);
}

/// Bidirectional byte pump. Each direction runs on its own thread; when
/// either side closes, both sockets shut down and the threads exit.
fn proxy(client: TcpStream, upstream: TcpStream) {
    let Ok(client_r) = client.try_clone() else { return };
    let Ok(upstream_r) = upstream.try_clone() else { return };
    let up = std::thread::Builder::new()
        .name("pqp-router-up".to_string())
        .spawn(move || pump(client_r, upstream));
    pump(upstream_r, client);
    if let Ok(handle) = up {
        let _ = handle.join();
    }
}

/// Copy bytes until EOF or error, then shut both ends down.
fn pump(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
