//! One connection = one session: handshake, then a strict
//! request/response loop until close, disconnect, timeout, or a
//! frame-level protocol violation.
//!
//! The first frame routes the connection: a replication request tag
//! hands the stream to the peer loop ([`peer_session`]); anything else
//! must be a client `Hello`.

use std::io::{BufWriter, ErrorKind, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

use pqp_service::{Error, UserId};
use pqp_wire::frame::{read_frame, write_frame, FrameError};
use pqp_wire::proto::{ProfileOp, Request, Response, ShowRequest, WireError};
use pqp_wire::repl::{is_repl_request, ReplRequest, ReplResponse};
use pqp_wire::{MAX_FRAME_LEN, PROTOCOL_VERSION};

use crate::repl::PeerLink;
use crate::Shared;

/// Why a session ended (feeds the `server.close.*` counters).
enum Close {
    /// Orderly `Close` request or clean client EOF.
    Clean,
    /// The client vanished mid-exchange (reset, mid-frame EOF, failed
    /// response write).
    Disconnected,
    /// The read timeout fired on an idle session.
    IdleTimeout,
    /// The peer broke the framing; the stream is not trustworthy.
    Protocol,
}

impl Close {
    fn label(&self) -> &'static str {
        match self {
            Close::Clean => "clean",
            Close::Disconnected => "disconnected",
            Close::IdleTimeout => "idle_timeout",
            Close::Protocol => "protocol",
        }
    }
}

pub(crate) fn serve(shared: &Shared, stream: TcpStream) {
    shared.active.fetch_add(1, Ordering::Relaxed);
    let close = session(shared, stream).unwrap_or(Close::Disconnected);
    pqp_obs::counter_add(&format!("server.close.{}", close.label()), 1);
    shared.active.fetch_sub(1, Ordering::Relaxed);
}

/// Run one session to completion. Transport errors on writes surface as
/// `Err`, mapped to a disconnect by the caller.
fn session(shared: &Shared, stream: TcpStream) -> std::io::Result<Close> {
    stream.set_read_timeout(shared.config.read_timeout)?;
    stream.set_write_timeout(shared.config.write_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);

    // The first frame routes the connection: replication tags go to the
    // peer loop, everything else must be a client Hello.
    let (first_tag, first_payload) = match read_raw(&mut reader) {
        Ok(frame) => frame,
        Err(close) => return Ok(close),
    };
    if is_repl_request(first_tag) {
        return peer_session(shared, &mut reader, &mut writer, first_tag, first_payload);
    }

    // Handshake: the first client frame must be a version-matched Hello.
    let user = match Request::decode(first_tag, &first_payload) {
        Ok(Request::Hello { version, user }) => {
            if version != PROTOCOL_VERSION {
                send(
                    &mut writer,
                    &Response::Error(WireError::protocol(format!(
                        "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                    ))),
                )?;
                return Ok(Close::Protocol);
            }
            if user.is_empty() {
                send(&mut writer, &Response::Error(WireError::protocol("empty user id")))?;
                return Ok(Close::Protocol);
            }
            user
        }
        Ok(_) => {
            send(
                &mut writer,
                &Response::Error(WireError::protocol("first message must be Hello")),
            )?;
            return Ok(Close::Protocol);
        }
        Err(e) => {
            send(&mut writer, &Response::Error(WireError::protocol(format!("bad hello: {e}"))))?;
            return Ok(Close::Protocol);
        }
    };
    let user = UserId::from(user.as_str());
    send(
        &mut writer,
        &Response::HelloOk { version: PROTOCOL_VERSION, server: shared.config.name.clone() },
    )?;

    loop {
        let request = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Frame(close)) => {
                if matches!(close, Close::Protocol) {
                    // Oversized/zero-length frame: tell the peer why, then
                    // close — resynchronization is not possible.
                    send(
                        &mut writer,
                        &Response::Error(WireError::protocol("unreadable frame; closing")),
                    )?;
                }
                return Ok(close);
            }
            Err(ReadError::Malformed(e)) => {
                // The frame itself was sound, so the stream is still
                // aligned: answer with a typed error and keep serving.
                pqp_obs::counter_add("server.malformed_payloads", 1);
                send(&mut writer, &Response::Error(WireError::protocol(e.to_string())))?;
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            send(&mut writer, &Response::Bye)?;
            return Ok(Close::Clean);
        }
        if matches!(request, Request::Close) {
            send(&mut writer, &Response::Bye)?;
            return Ok(Close::Clean);
        }
        // The dispatch boundary is failpoint-instrumented and
        // panic-isolated: an injected (or real) panic costs one request,
        // never the process.
        let response = match catch_unwind(AssertUnwindSafe(|| dispatch(shared, &user, request))) {
            Ok(resp) => resp,
            Err(_) => {
                pqp_obs::counter_add("server.panics_caught", 1);
                Response::Error(WireError::from_error(&Error::Internal(
                    "request handler panicked".to_string(),
                )))
            }
        };
        send(&mut writer, &response)?;
    }
}

fn dispatch(shared: &Shared, user: &UserId, request: Request) -> Response {
    if let Some(msg) = pqp_obs::failpoint::fire("server.frame") {
        return Response::Error(WireError::from_error(&Error::Internal(msg)));
    }
    let service = &shared.service;
    match request {
        Request::Query { sql, options, rewrite } => {
            let options = options.unwrap_or_else(|| service.config().options);
            let rewrite = rewrite.unwrap_or(service.config().rewrite);
            match service.query(user, &sql, options, rewrite) {
                Ok(answer) => Response::Answer(answer),
                Err(e) => Response::Error(WireError::from_error(&e)),
            }
        }
        Request::Prepare { sql } => match service.prepare_sql(&sql) {
            Ok(canonical) => Response::PrepareOk { canonical },
            Err(e) => Response::Error(WireError::from_error(&e)),
        },
        // With a replication engine, mutations go through the WAL + log
        // shipping (leader only); otherwise they apply directly.
        Request::Mutate(op) => match &shared.repl {
            Some(node) => match node.client_mutate(user, op) {
                Ok((epoch, removed)) => Response::MutateOk { epoch, removed },
                Err(e) => Response::Error(WireError::from_error(&e)),
            },
            None => {
                let result = match op {
                    ProfileOp::AddSelection { table, column, value, doi } => service
                        .add_selection(user.clone(), &table, &column, value, doi)
                        .map(|_| true),
                    ProfileOp::AddJoin { from_table, from_column, to_table, to_column, doi } => {
                        service
                            .add_join(
                                user.clone(),
                                &from_table,
                                &from_column,
                                &to_table,
                                &to_column,
                                doi,
                            )
                            .map(|_| true)
                    }
                    ProfileOp::Remove => Ok(service.remove_profile(user.clone())),
                };
                match result {
                    Ok(removed) => {
                        Response::MutateOk { epoch: service.epoch(user.clone()), removed }
                    }
                    Err(e) => Response::Error(WireError::from_error(&e)),
                }
            }
        },
        Request::Show(show) => {
            let sql = match show {
                ShowRequest::Metrics => "SHOW METRICS".to_string(),
                ShowRequest::Queries { limit: Some(n) } => format!("SHOW QUERIES LIMIT {n}"),
                ShowRequest::Queries { limit: None } => "SHOW QUERIES".to_string(),
                ShowRequest::Caches => "SHOW CACHES".to_string(),
            };
            let options = service.config().options;
            let rewrite = service.config().rewrite;
            match service.query(user, &sql, options, rewrite) {
                Ok(answer) => Response::Answer(answer),
                Err(e) => Response::Error(WireError::from_error(&e)),
            }
        }
        // Handled before dispatch; unreachable only via a logic bug, and
        // even then it costs one error frame, not the session.
        Request::Hello { .. } => Response::Error(WireError::protocol("Hello after handshake")),
        Request::Close => Response::Bye,
    }
}

/// Serve a replication peer: a strict request/response loop over the
/// [`ReplRequest`] vocabulary, dispatched to the node's replication
/// engine. A node with no engine (single-node deployment) rejects every
/// peer frame with a typed reason.
fn peer_session(
    shared: &Shared,
    reader: &mut TcpStream,
    writer: &mut BufWriter<TcpStream>,
    mut tag: u8,
    mut payload: Vec<u8>,
) -> std::io::Result<Close> {
    pqp_obs::counter_add("server.peer_sessions", 1);
    // Auth state lives on the link: Hello must present the cluster
    // token before state-changing frames are honored on it.
    let mut link = PeerLink::new();
    loop {
        let response = match &shared.repl {
            None => ReplResponse::Reject {
                term: 0,
                last_seq: 0,
                reason: "replication not configured on this node".to_string(),
            },
            Some(node) => match ReplRequest::decode(tag, &payload) {
                Ok(request) => node.handle_peer(request, &mut link),
                Err(e) => {
                    // The frame was sound, so the stream is aligned:
                    // reject this request and keep serving the link.
                    pqp_obs::counter_add("server.malformed_peer_frames", 1);
                    let status = node.status();
                    ReplResponse::Reject {
                        term: status.term,
                        last_seq: status.last_seq,
                        reason: format!("bad repl frame: {e}"),
                    }
                }
            },
        };
        let (t, p) = response.encode();
        write_frame(writer, t, &p).inspect_err(|_| {
            pqp_obs::counter_add("server.write_failed", 1);
        })?;
        writer.flush()?;
        match read_raw(reader) {
            Ok((t, p)) => {
                tag = t;
                payload = p;
            }
            Err(close) => return Ok(close),
        }
    }
}

enum ReadError {
    /// The transport ended the session (maps to a [`Close`] reason).
    Frame(Close),
    /// The frame was sound but the payload did not decode.
    Malformed(pqp_wire::DecodeError),
}

/// Read one raw frame, mapping transport failures to a [`Close`] reason.
fn read_raw(reader: &mut TcpStream) -> Result<(u8, Vec<u8>), Close> {
    match read_frame(reader, MAX_FRAME_LEN) {
        Ok(frame) => Ok(frame),
        Err(FrameError::Closed) => Err(Close::Clean),
        Err(FrameError::Io(e))
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
        {
            pqp_obs::counter_add("server.idle_timeouts", 1);
            Err(Close::IdleTimeout)
        }
        Err(FrameError::Io(_)) => {
            pqp_obs::counter_add("server.client_disconnects", 1);
            Err(Close::Disconnected)
        }
        Err(FrameError::Oversized { .. } | FrameError::Empty) => {
            pqp_obs::counter_add("server.bad_frames", 1);
            Err(Close::Protocol)
        }
    }
}

fn read_request(reader: &mut TcpStream) -> Result<Request, ReadError> {
    let (tag, payload) = read_raw(reader).map_err(ReadError::Frame)?;
    Request::decode(tag, &payload).map_err(ReadError::Malformed)
}

fn send(writer: &mut BufWriter<TcpStream>, response: &Response) -> std::io::Result<()> {
    let (tag, payload) = response.encode();
    write_frame(writer, tag, &payload).inspect_err(|_| {
        // A failed response write is the mid-query-disconnect path: the
        // query already ran (and released its in-flight slot via RAII);
        // only the delivery failed.
        pqp_obs::counter_add("server.write_failed", 1);
    })?;
    writer.flush()
}
