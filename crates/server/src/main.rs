//! The `pqp-server` binary: serve a personalized-query database over TCP.
//!
//! With no arguments it generates the demo movie database (plus a handful
//! of seeded user profiles) and listens on `PQP_LISTEN_ADDR` (default
//! `127.0.0.1:5433`). Point the `pqp-wire` [`Client`] at it:
//!
//! ```text
//! PQP_LISTEN_ADDR=127.0.0.1:5433 pqp-server
//! ```
//!
//! Knobs (all environment variables):
//! - `PQP_LISTEN_ADDR` — listen address (default `127.0.0.1:5433`)
//! - `PQP_SERVER_READ_TIMEOUT_MS` / `PQP_SERVER_WRITE_TIMEOUT_MS` —
//!   per-session socket timeouts (0 = none)
//! - `PQP_MAX_IN_FLIGHT` — admission-control limit (0 = unlimited)
//! - `PQP_DEADLINE_MS`, `PQP_MAX_ROWS_SCANNED`, `PQP_MAX_MEMORY_BYTES` —
//!   per-query governor budget
//! - `PQP_FAILPOINTS` — fault injection, e.g. `server.frame=error(boom)`
//!
//! [`Client`]: pqp_wire::Client

use std::sync::Arc;

use pqp_datagen::{generate, generate_profiles, MovieDbConfig, ProfileGenConfig};
use pqp_server::{Server, ServerConfig};
use pqp_service::Service;

fn main() {
    let movie_db = generate(MovieDbConfig::default());
    let service = Service::new(movie_db.db);
    let profiles = generate_profiles(
        "user",
        16,
        &movie_db.pools,
        &ProfileGenConfig { selections: 40, seed: 7, ..Default::default() },
    );
    for profile in profiles {
        if let Err(e) = service.install_profile(profile) {
            eprintln!("pqp-server: skipping generated profile: {e}");
        }
    }

    let config = ServerConfig::from_env();
    let server = match Server::bind(Arc::new(service), config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pqp-server: cannot listen on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("pqp-server listening on {addr} (protocol v{})", {
            pqp_wire::PROTOCOL_VERSION
        }),
        Err(e) => eprintln!("pqp-server: local_addr failed: {e}"),
    }
    server.run();
}
