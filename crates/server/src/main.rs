//! The `pqp-server` binary: serve a personalized-query database over TCP.
//!
//! With no arguments it generates the demo movie database (plus a handful
//! of seeded user profiles) and listens on `PQP_LISTEN_ADDR` (default
//! `127.0.0.1:5433`). Point the `pqp-wire` [`Client`] at it:
//!
//! ```text
//! PQP_LISTEN_ADDR=127.0.0.1:5433 pqp-server
//! ```
//!
//! Knobs (all environment variables):
//! - `PQP_LISTEN_ADDR` — listen address (default `127.0.0.1:5433`)
//! - `PQP_SERVER_READ_TIMEOUT_MS` / `PQP_SERVER_WRITE_TIMEOUT_MS` —
//!   per-session socket timeouts (0 = none)
//! - `PQP_MAX_IN_FLIGHT` — admission-control limit (0 = unlimited)
//! - `PQP_DEADLINE_MS`, `PQP_MAX_ROWS_SCANNED`, `PQP_MAX_MEMORY_BYTES` —
//!   per-query governor budget
//! - `PQP_FAILPOINTS` — fault injection, e.g. `server.frame=error(boom)`
//!
//! Replication (see `DESIGN.md` §17):
//! - `PQP_WAL_DIR` — turn on the crash-safe replicated mutation log,
//!   storing the WAL/snapshot/term files here
//! - `PQP_NODE_ID`, `PQP_REPL_ROLE` (`leader`|`follower`),
//!   `PQP_REPL_PEERS` (comma-separated follower addresses),
//!   `PQP_REPL_QUORUM` — replication identity and durability quorum
//!
//! Router mode (replaces server mode when set):
//! - `PQP_ROUTER_NODES` — comma-separated node addresses; the process
//!   becomes a thin router that proxies clients to the current leader
//!   and promotes the most-caught-up follower when the leader dies
//!   (`PQP_ROUTER_ADDR` to pick the listen address)
//!
//! [`Client`]: pqp_wire::Client

use std::sync::Arc;

use pqp_datagen::{generate, generate_profiles, MovieDbConfig, ProfileGenConfig};
use pqp_server::{ReplConfig, ReplNode, Router, RouterConfig, Server, ServerConfig};
use pqp_service::Service;

fn main() {
    pqp_obs::failpoint::init_from_env();

    // Router mode: no database, no service — just health checks and
    // byte proxying to the current leader.
    if let Some(router_config) = RouterConfig::from_env() {
        let addr = router_config.addr.clone();
        let router = match Router::bind(router_config) {
            Ok(router) => router,
            Err(e) => {
                eprintln!("pqp-server: router cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        };
        match router.local_addr() {
            Ok(addr) => println!("pqp-server routing on {addr}"),
            Err(e) => eprintln!("pqp-server: local_addr failed: {e}"),
        }
        match router.spawn() {
            Ok(_handle) => loop {
                std::thread::park();
            },
            Err(e) => {
                eprintln!("pqp-server: router threads failed to start: {e}");
                std::process::exit(1);
            }
        }
    }

    let movie_db = generate(MovieDbConfig::default());
    let service = Arc::new(Service::new(movie_db.db));

    // With a WAL configured, recovery replays the durable profile store;
    // generated seed profiles only populate a fresh (empty-log) node.
    let repl = match ReplConfig::from_env() {
        Some(config) => match ReplNode::open(Arc::clone(&service), config) {
            Ok(node) => Some(node),
            Err(e) => {
                eprintln!("pqp-server: replication recovery failed: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    if service.users().is_empty() {
        let profiles = generate_profiles(
            "user",
            16,
            &movie_db.pools,
            &ProfileGenConfig { selections: 40, seed: 7, ..Default::default() },
        );
        for profile in profiles {
            if let Err(e) = service.install_profile(profile) {
                eprintln!("pqp-server: skipping generated profile: {e}");
            }
        }
    }

    let config = ServerConfig::from_env();
    let server = match Server::bind_replicated(service, config.clone(), repl) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pqp-server: cannot listen on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("pqp-server listening on {addr} (protocol v{})", {
            pqp_wire::PROTOCOL_VERSION
        }),
        Err(e) => eprintln!("pqp-server: local_addr failed: {e}"),
    }
    server.run();
}
