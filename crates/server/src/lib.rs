//! # pqp-server — the TCP session runtime
//!
//! Serves a [`Service`] over TCP speaking the `pqp-wire` protocol: a
//! thread-per-connection runtime where each connection is one user
//! session (bound at handshake), with read/write timeouts, typed error
//! frames for every failure, and the service's admission control surfaced
//! as `Overloaded` frames at the network edge.
//!
//! The robustness contract at this boundary:
//!
//! - A malformed *payload* answers with a `protocol` error frame and the
//!   session continues (the stream is still frame-aligned).
//! - A malformed *frame* (oversized, zero-length) answers with a
//!   `protocol` error frame and closes — the stream can no longer be
//!   trusted to be frame-aligned.
//! - A client that disconnects mid-query costs nothing but the query: the
//!   service's in-flight slot is released by its RAII guard, the write
//!   failure is counted, and the connection thread exits cleanly.
//! - Failpoints (`server.frame`, `repl.ship`, `repl.ack`, `node.crash`,
//!   plus `wal.append`/`wal.fsync` in the storage layer) and
//!   `catch_unwind` at the dispatch boundary turn injected panics into
//!   `internal` error frames instead of process aborts.
//!
//! With `PQP_WAL_DIR` set, the server runs a replicated profile store:
//! every client mutation goes through a crash-safe WAL and single-leader
//! log shipping (see [`repl`]), and the same listen port speaks both the
//! client protocol and the node-to-node replication frames — a
//! connection's first frame picks the handler. The [`router`] module is
//! the companion routing tier for multi-node deployments.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pqp_service::Service;

mod conn;
pub mod repl;
pub mod router;

pub use repl::{PeerLink, ReplConfig, ReplNode};
pub use router::{Router, RouterConfig, RouterHandle};

/// Server knobs. Every field has an environment override so a deployment
/// is configured without code changes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`PQP_LISTEN_ADDR`, default `127.0.0.1:5433`).
    pub addr: String,
    /// Per-session read timeout: an idle session is closed after this long
    /// with no request (`PQP_SERVER_READ_TIMEOUT_MS`, default 60 000; `0`
    /// = no timeout).
    pub read_timeout: Option<Duration>,
    /// Per-session write timeout on responses
    /// (`PQP_SERVER_WRITE_TIMEOUT_MS`, default 30 000; `0` = no timeout).
    pub write_timeout: Option<Duration>,
    /// Server identification sent in the handshake.
    pub name: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:5433".to_string(),
            read_timeout: Some(Duration::from_millis(60_000)),
            write_timeout: Some(Duration::from_millis(30_000)),
            name: format!("pqp-server/{}", env!("CARGO_PKG_VERSION")),
        }
    }
}

fn timeout_from_env(var: &str, default: Option<Duration>) -> Option<Duration> {
    match std::env::var(var).ok().and_then(|v| v.trim().parse::<u64>().ok()) {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => default,
    }
}

impl ServerConfig {
    /// The default config with every `PQP_*` environment override applied.
    pub fn from_env() -> ServerConfig {
        let d = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("PQP_LISTEN_ADDR").unwrap_or(d.addr),
            read_timeout: timeout_from_env("PQP_SERVER_READ_TIMEOUT_MS", d.read_timeout),
            write_timeout: timeout_from_env("PQP_SERVER_WRITE_TIMEOUT_MS", d.write_timeout),
            name: d.name,
        }
    }
}

/// State shared by the accept loop and every connection thread.
pub(crate) struct Shared {
    pub(crate) service: Arc<Service>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Connections accepted over the server's lifetime.
    pub(crate) connections: AtomicU64,
    /// Sessions currently open.
    pub(crate) active: AtomicU64,
    /// The replication engine, when this node runs a replicated store.
    pub(crate) repl: Option<Arc<repl::ReplNode>>,
}

/// A bound-but-not-yet-running server. [`Server::run`] blocks the calling
/// thread in the accept loop; [`Server::spawn`] runs it on its own thread
/// and returns a [`ServerHandle`] for shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket. The service is shared — the same instance
    /// can keep serving in-process sessions concurrently.
    pub fn bind(service: Arc<Service>, config: ServerConfig) -> io::Result<Server> {
        Server::bind_replicated(service, config, None)
    }

    /// Bind with a replication engine attached: client mutations go
    /// through the node's WAL + log shipping, and the listen port also
    /// speaks the replication frames (a connection's first frame picks
    /// the handler).
    pub fn bind_replicated(
        service: Arc<Service>,
        config: ServerConfig,
        repl: Option<Arc<repl::ReplNode>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                config,
                shutdown: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                active: AtomicU64::new(0),
                repl,
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections until shutdown, spawning one session thread per
    /// connection. Blocks the calling thread.
    pub fn run(self) {
        let Server { listener, shared } = self;
        Self::accept_loop(listener, shared);
    }

    /// Run the accept loop on its own thread; the returned handle shuts
    /// the server down and joins it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let Server { listener, shared } = self;
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("pqp-accept".to_string())
            .spawn(move || Self::accept_loop(listener, loop_shared))?;
        Ok(ServerHandle { addr, shared, thread })
    }

    fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    pqp_obs::counter_add("server.connections", 1);
                    let conn_shared = Arc::clone(&shared);
                    // Session threads are detached: they exit when the
                    // client goes away or the read timeout fires, and the
                    // service outlives them via the Arc.
                    let spawned = std::thread::Builder::new()
                        .name("pqp-session".to_string())
                        .spawn(move || conn::serve(&conn_shared, stream));
                    if spawned.is_err() {
                        pqp_obs::counter_add("server.spawn_failed", 1);
                    }
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    pqp_obs::counter_add("server.accept_failed", 1);
                }
            }
        }
    }
}

/// Handle to a running server: address, stats, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<Service> {
        &self.shared.service
    }

    /// Connections accepted since the server started.
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// The replication engine, when this server runs replicated.
    pub fn repl(&self) -> Option<&Arc<repl::ReplNode>> {
        self.shared.repl.as_ref()
    }

    /// Stop accepting, wake the accept loop, and join it. Open sessions
    /// drain on their own (client close or read timeout).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}
