//! Randomized test: printing any generated AST and re-parsing it yields the
//! same AST (`parse ∘ print = id`). Driven by a seeded PRNG so failures
//! reproduce exactly.

use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::ast::*;
use pqp_sql::parser::{parse_expr, parse_query};
use pqp_storage::Value;

fn ident(rng: &mut SmallRng) -> String {
    // A mix of friendly identifiers and hostile ones needing quoting.
    match rng.gen_range(0..5u32) {
        0 => "order".to_string(),
        1 => "select".to_string(),
        2 => "1weird".to_string(),
        3 => "has space".to_string(),
        _ => {
            let first = (b'a' + rng.gen_range(0..26u8)) as char;
            let len = rng.gen_range(0..8usize);
            let mut s = String::new();
            s.push(first);
            for _ in 0..len {
                const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789_";
                s.push(TAIL[rng.gen_index(TAIL.len())] as char);
            }
            s
        }
    }
}

fn literal(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0..5u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.next_u64() as i64),
        // Finite floats only: NaN/inf have no SQL literal.
        3 => Value::Float(rng.gen_range(-1.0e12..1.0e12)),
        _ => {
            let len = rng.gen_range(0..12usize);
            const CHARS: &[char] = &['a', 'b', 'z', 'A', 'Z', ' ', '\'', '‘', 'q', 'x', 'o', 'e'];
            Value::Str((0..len).map(|_| CHARS[rng.gen_index(CHARS.len())]).collect())
        }
    }
}

fn leaf_expr(rng: &mut SmallRng) -> Expr {
    match rng.gen_range(0..4u32) {
        0 => Expr::Literal(literal(rng)),
        1 => {
            let q = ident(rng);
            Expr::Column { qualifier: Some(q), name: ident(rng) }
        }
        2 => Expr::Column { qualifier: None, name: ident(rng) },
        _ => Expr::Function { name: "COUNT".into(), args: vec![], wildcard: true },
    }
}

fn arb_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return leaf_expr(rng);
    }
    match rng.gen_range(0..5u32) {
        0 => {
            const OPS: &[BinaryOp] = &[
                BinaryOp::Eq,
                BinaryOp::NotEq,
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::Plus,
                BinaryOp::Minus,
                BinaryOp::Mul,
                BinaryOp::Div,
            ];
            Expr::Binary {
                left: Box::new(arb_expr(rng, depth - 1)),
                op: OPS[rng.gen_index(OPS.len())],
                right: Box::new(arb_expr(rng, depth - 1)),
            }
        }
        1 => Expr::Not(Box::new(arb_expr(rng, depth - 1))),
        2 => Expr::IsNull { expr: Box::new(arb_expr(rng, depth - 1)), negated: rng.gen_bool(0.5) },
        3 => {
            let n = rng.gen_range(1..3usize);
            Expr::InList {
                expr: Box::new(arb_expr(rng, depth - 1)),
                list: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                negated: rng.gen_bool(0.5),
            }
        }
        _ => {
            let n = rng.gen_range(0..3usize);
            Expr::Function {
                name: ident(rng),
                args: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                wildcard: false,
            }
        }
    }
}

fn arb_select(rng: &mut SmallRng) -> Select {
    let n_proj = rng.gen_range(1..3usize);
    let projection = (0..n_proj)
        .map(|_| {
            if rng.gen_bool(0.25) {
                SelectItem::Wildcard
            } else {
                let expr = arb_expr(rng, 3);
                let alias = if rng.gen_bool(0.5) { Some(ident(rng)) } else { None };
                SelectItem::Expr { expr, alias }
            }
        })
        .collect();
    let n_from = rng.gen_range(0..3usize);
    let from = (0..n_from)
        .map(|_| {
            let name = ident(rng);
            let alias = if rng.gen_bool(0.5) { Some(ident(rng)) } else { None };
            TableFactor::Table { name, alias }
        })
        .collect();
    let selection = if rng.gen_bool(0.5) { Some(arb_expr(rng, 3)) } else { None };
    let n_group = rng.gen_range(0..2usize);
    let group_by = (0..n_group).map(|_| arb_expr(rng, 2)).collect();
    let having = if rng.gen_bool(0.3) { Some(arb_expr(rng, 2)) } else { None };
    Select { distinct: rng.gen_bool(0.5), projection, from, selection, group_by, having }
}

fn arb_query(rng: &mut SmallRng) -> Query {
    let n = rng.gen_range(1..4usize);
    let all = rng.gen_bool(0.5);
    let body = (0..n)
        .map(|_| SetExpr::Select(Box::new(arb_select(rng))))
        .reduce(|l, r| SetExpr::Union { left: Box::new(l), right: Box::new(r), all })
        .unwrap();
    let n_order = rng.gen_range(0..2usize);
    let order_by = (0..n_order)
        .map(|_| OrderByItem { expr: arb_expr(rng, 2), desc: rng.gen_bool(0.5) })
        .collect();
    let limit = if rng.gen_bool(0.5) { Some(rng.gen_range(0..1000u64)) } else { None };
    Query { body, order_by, limit }
}

#[test]
fn expr_print_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xE792);
    for _ in 0..512 {
        let e = arb_expr(&mut rng, 4);
        let printed = e.to_string();
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse `{printed}`: {err}"));
        assert_eq!(back, e, "printed as `{printed}`");
    }
}

#[test]
fn query_print_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x02E71);
    for _ in 0..512 {
        let q = arb_query(&mut rng);
        let printed = q.to_string();
        let back = parse_query(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse `{printed}`: {err}"));
        assert_eq!(back, q, "printed as `{printed}`");
    }
}
