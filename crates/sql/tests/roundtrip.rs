//! Property test: printing any generated AST and re-parsing it yields the
//! same AST (`parse ∘ print = id`).

use pqp_sql::ast::*;
use pqp_sql::parser::{parse_expr, parse_query};
use pqp_storage::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // A mix of friendly identifiers and hostile ones needing quoting.
    prop_oneof![
        "[a-zA-Z][a-zA-Z0-9_]{0,8}",
        Just("order".to_string()),
        Just("select".to_string()),
        Just("1weird".to_string()),
        Just("has space".to_string()),
    ]
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN/inf have no SQL literal.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z '‘]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        (ident(), ident()).prop_map(|(q, n)| Expr::Column { qualifier: Some(q), name: n }),
        ident().prop_map(|n| Expr::Column { qualifier: None, name: n }),
        Just(Expr::Function { name: "COUNT".into(), args: vec![], wildcard: true }),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        let op = prop_oneof![
            Just(BinaryOp::Eq),
            Just(BinaryOp::NotEq),
            Just(BinaryOp::Lt),
            Just(BinaryOp::LtEq),
            Just(BinaryOp::Gt),
            Just(BinaryOp::GtEq),
            Just(BinaryOp::And),
            Just(BinaryOp::Or),
            Just(BinaryOp::Plus),
            Just(BinaryOp::Minus),
            Just(BinaryOp::Mul),
            Just(BinaryOp::Div),
        ];
        prop_oneof![
            (inner.clone(), op, inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r)
            }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..3), any::<bool>()).prop_map(
                |(e, list, n)| Expr::InList { expr: Box::new(e), list, negated: n }
            ),
            (ident(), prop::collection::vec(inner, 0..3)).prop_map(|(name, args)| {
                Expr::Function { name, args, wildcard: false }
            }),
        ]
    })
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                (arb_expr(), proptest::option::of(ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..3,
        ),
        prop::collection::vec(
            (ident(), proptest::option::of(ident()))
                .prop_map(|(name, alias)| TableFactor::Table { name, alias }),
            0..3,
        ),
        proptest::option::of(arb_expr()),
        prop::collection::vec(arb_expr(), 0..2),
        proptest::option::of(arb_expr()),
    )
        .prop_map(|(distinct, projection, from, selection, group_by, having)| Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(arb_select(), 1..4),
        any::<bool>(),
        prop::collection::vec((arb_expr(), any::<bool>()), 0..2),
        proptest::option::of(0u64..1000),
    )
        .prop_map(|(selects, all, order, limit)| {
            let body = selects
                .into_iter()
                .map(|s| SetExpr::Select(Box::new(s)))
                .reduce(|l, r| SetExpr::Union { left: Box::new(l), right: Box::new(r), all })
                .unwrap();
            Query {
                body,
                order_by: order
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect(),
                limit,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse `{printed}`: {err}"));
        prop_assert_eq!(back, e, "printed as `{}`", printed);
    }

    #[test]
    fn query_print_parse_roundtrip(q in arb_query()) {
        let printed = q.to_string();
        let back = parse_query(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse `{printed}`: {err}"));
        prop_assert_eq!(back, q, "printed as `{}`", printed);
    }
}
