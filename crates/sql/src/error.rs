//! Parse errors with source positions.

use std::fmt;

/// Error raised by the lexer or parser, carrying a byte offset into the
/// source text and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl ParseError {
    pub fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError { offset, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the SQL front end.
pub type Result<T> = std::result::Result<T, ParseError>;
