//! Recursive-descent parser for the SQL dialect.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::{Keyword, Spanned, Token};
use pqp_storage::Value;

/// Parse a complete query from source text.
pub fn parse_query(src: &str) -> Result<Query> {
    let _span = pqp_obs::span("sql.parse");
    pqp_obs::record("chars", src.len());
    let tokens = tokenize(src)?;
    pqp_obs::record("tokens", tokens.len());
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone expression (used by tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a query from an already-lexed token stream ending in `Eof`
/// (used by the statement parser).
pub(crate) fn parse_tokens(tokens: Vec<crate::token::Spanned>) -> Result<Query> {
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse the longest expression prefix of a token stream; returns the
/// expression and the number of tokens consumed (used by the statement
/// parser for VALUES rows and DELETE predicates).
pub(crate) fn parse_expr_prefix(tokens: Vec<crate::token::Spanned>) -> Result<(Expr, usize)> {
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    Ok((e, p.pos))
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(k))
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input starting at `{}`", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), msg)
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Token::Ident(_) => match self.next() {
                Token::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // query := set_expr [ORDER BY order_items] [LIMIT int]
    fn query(&mut self) -> Result<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.next() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected LIMIT count, found `{other}`"))),
            }
        } else {
            None
        };
        Ok(Query { body, order_by, limit })
    }

    // set_expr := set_primary (UNION [ALL] set_primary)*
    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_primary()?;
        while self.eat_kw(Keyword::Union) {
            let all = self.eat_kw(Keyword::All);
            let right = self.set_primary()?;
            left = SetExpr::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    // set_primary := select | '(' set_expr ')'
    fn set_primary(&mut self) -> Result<SetExpr> {
        if self.eat(&Token::LParen) {
            let inner = self.set_expr()?;
            self.expect(&Token::RParen)?;
            Ok(inner)
        } else {
            Ok(SetExpr::Select(Box::new(self.select()?)))
        }
    }

    // select := SELECT [DISTINCT] items FROM factors [WHERE e] [GROUP BY es] [HAVING e]
    fn select(&mut self) -> Result<Select> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut projection = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                projection.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = self.alias_opt()?;
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            loop {
                from.push(self.table_factor()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw(Keyword::Where) { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::Having) { Some(self.expr()?) } else { None };
        Ok(Select { distinct, projection, from, selection, group_by, having })
    }

    fn alias_opt(&mut self) -> Result<Option<String>> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.ident()?));
        }
        if matches!(self.peek(), Token::Ident(_)) {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // table_factor := ident [alias] | '(' query ')' alias
    fn table_factor(&mut self) -> Result<TableFactor> {
        if self.eat(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            let alias = match self.alias_opt()? {
                Some(a) => a,
                None => return Err(self.err("derived table requires an alias")),
            };
            return Ok(TableFactor::Derived { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = self.alias_opt()?;
        Ok(TableFactor::Table { name, alias })
    }

    // Expression precedence: OR < AND < NOT < comparison/IS/IN < +- < */ < unary < primary
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.additive()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // `[NOT] IN (list)`
        let negated = if self.peek() == &Token::Keyword(Keyword::Not)
            && self.peek2() == &Token::Keyword(Keyword::In)
        {
            self.next();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::In) {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(self.err("expected IN after NOT"));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            // Fold unary minus into numeric literals; otherwise 0 - e.
            return Ok(match self.unary()? {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                e => Expr::Binary {
                    left: Box::new(Expr::Literal(Value::Int(0))),
                    op: BinaryOp::Minus,
                    right: Box::new(e),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.next();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Token::Float(f) => {
                self.next();
                Ok(Expr::Literal(Value::Float(f)))
            }
            Token::String(_) => match self.next() {
                Token::String(s) => Ok(Expr::Literal(Value::Str(s))),
                _ => unreachable!(),
            },
            Token::Keyword(Keyword::True) => {
                self.next();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.next();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Token::Keyword(Keyword::Null) => {
                self.next();
                Ok(Expr::Literal(Value::Null))
            }
            Token::Keyword(Keyword::Count) => {
                self.next();
                self.function_call("COUNT".to_string())
            }
            Token::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(_) => {
                let name = self.ident()?;
                if self.peek() == &Token::LParen {
                    return self.function_call(name);
                }
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { qualifier: Some(name), name: col });
                }
                Ok(Expr::Column { qualifier: None, name })
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }

    fn function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        if self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function { name, args: Vec::new(), wildcard: true });
        }
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Function { name, args, wildcard: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder as b;

    #[test]
    fn simple_spj() {
        let q = parse_query(
            "select MV.title from MOVIE MV, PLAY PL \
             where MV.mid=PL.mid and PL.date='2/7/2003'",
        )
        .unwrap();
        let s = q.as_select().unwrap();
        assert!(!s.distinct);
        assert_eq!(s.projection.len(), 1);
        assert_eq!(s.from.len(), 2);
        let w = s.selection.as_ref().unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn precedence_and_or() {
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // OR binds loosest: (a=1) OR ((b=2) AND (c=3))
        let ds = e.disjuncts();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[1].conjuncts().len(), 2);
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            b::binary(
                b::lit(1i64),
                BinaryOp::Plus,
                b::binary(b::lit(2i64), BinaryOp::Mul, b::lit(3i64))
            )
        );
    }

    #[test]
    fn unary_minus_folds() {
        assert_eq!(parse_expr("-5").unwrap(), b::lit(-5i64));
        assert_eq!(parse_expr("-1.5").unwrap(), b::lit(-1.5f64));
    }

    #[test]
    fn not_and_is_null() {
        let e = parse_expr("not x is null").unwrap();
        assert!(matches!(e, Expr::Not(_)));
        let e = parse_expr("x is not null").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn in_list() {
        let e = parse_expr("g in ('comedy', 'thriller')").unwrap();
        let Expr::InList { list, negated: false, .. } = e else { panic!() };
        assert_eq!(list.len(), 2);
        assert!(matches!(parse_expr("g not in (1)").unwrap(), Expr::InList { negated: true, .. }));
    }

    #[test]
    fn count_star_and_having() {
        let q =
            parse_query("select t.title from T t group by t.title having count(*) >= 2").unwrap();
        let s = q.as_select().unwrap();
        assert_eq!(s.group_by.len(), 1);
        let h = s.having.as_ref().unwrap();
        assert!(h.contains_aggregate());
    }

    #[test]
    fn union_all_in_derived_table() {
        // The MQ shape from the paper.
        let q = parse_query(
            "select MV_title from (\
               (select distinct MV.title MV_title from MOVIE MV) \
               union all \
               (select distinct MV.title MV_title from MOVIE MV)\
             ) TEMP group by MV_title having count(*) >= 2",
        )
        .unwrap();
        let s = q.as_select().unwrap();
        let TableFactor::Derived { query, alias } = &s.from[0] else { panic!() };
        assert_eq!(alias, "TEMP");
        assert!(matches!(query.body, SetExpr::Union { all: true, .. }));
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse_query("select x from T order by x desc, y limit 10").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn distinct_and_wildcard() {
        let q = parse_query("select distinct * from T").unwrap();
        let s = q.as_select().unwrap();
        assert!(s.distinct);
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = parse_query("select a as x, b y from T as u").unwrap();
        let s = q.as_select().unwrap();
        let SelectItem::Expr { alias, .. } = &s.projection[0] else { panic!() };
        assert_eq!(alias.as_deref(), Some("x"));
        let SelectItem::Expr { alias, .. } = &s.projection[1] else { panic!() };
        assert_eq!(alias.as_deref(), Some("y"));
        assert_eq!(s.from[0].binding_name(), "u");
    }

    #[test]
    fn error_messages_have_position() {
        let e = parse_query("select from T").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_query("select x from").is_err());
        assert!(parse_query("select x from T where").is_err());
        assert!(parse_query("select x from (select y from T)").is_err(), "derived needs alias");
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_query("select x from T garbage garbage").is_err());
    }

    #[test]
    fn paper_sq_example_parses() {
        let q = parse_query(
            "select distinct MV.title \
             from MOVIE MV, PLAY PL, CAST CA, ACTOR AC, GENRE GN, DIRECTED DD, DIRECTOR DI \
             where MV.mid=PL.mid and PL.date='2/7/2003' and (\
               (MV.mid=GN.mid and GN.genre='comedy' and MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman') or \
               (MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman' and MV.mid=DD.mid and DD.did=DI.did and DI.name='D. Lynch') or \
               (MV.mid=GN.mid and GN.genre='comedy' and MV.mid=DD.mid and DD.did=DI.did and DI.name='D. Lynch'))",
        )
        .unwrap();
        let s = q.as_select().unwrap();
        assert!(s.distinct);
        assert_eq!(s.from.len(), 7);
        let conjuncts = s.selection.as_ref().unwrap().conjuncts();
        assert_eq!(conjuncts.len(), 3);
        assert_eq!(conjuncts[2].disjuncts().len(), 3);
    }
}
