//! SQL rendering of ASTs (the inverse of the parser).
//!
//! `parse_query(q.to_string())` reproduces `q` for every AST the builders can
//! construct — a property enforced by the round-trip tests. Precedence-aware
//! parenthesization keeps the printed text minimal while preserving shape.

use crate::ast::*;
use crate::token::Keyword;
use pqp_storage::Value;
use std::fmt;

/// Render a literal as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Int(i) => i.to_string(),
        // `{:?}` keeps the decimal point ("2.0"), so the literal re-parses as
        // a float rather than an int.
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Render an identifier, quoting it when it would not re-lex as a bare
/// identifier (reserved word, odd characters, leading digit).
pub fn sql_ident(s: &str) -> String {
    let bare = !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && Keyword::from_str(s).is_none();
    if bare {
        s.to_string()
    } else {
        format!("\"{s}\"")
    }
}

fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => 4,
        BinaryOp::Plus | BinaryOp::Minus => 5,
        BinaryOp::Mul | BinaryOp::Div => 6,
    }
}

fn op_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Plus => "+",
        BinaryOp::Minus => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
    }
}

/// Write `e` assuming the surrounding context requires at least precedence
/// `min_prec`; parenthesize when the expression binds looser.
fn fmt_expr(e: &Expr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                write!(f, "{}.{}", sql_ident(q), sql_ident(name))
            } else {
                write!(f, "{}", sql_ident(name))
            }
        }
        Expr::Literal(v) => write!(f, "{}", sql_literal(v)),
        Expr::Binary { left, op, right } => {
            let p = precedence(*op);
            let parens = p < min_prec;
            if parens {
                write!(f, "(")?;
            }
            // Comparisons are non-associative in the grammar, so a comparison
            // child of a comparison must be parenthesized on either side.
            let left_min = if op.is_comparison() { p + 1 } else { p };
            fmt_expr(left, left_min, f)?;
            write!(f, " {} ", op_text(*op))?;
            // Right child of a left-associative operator needs strictly
            // higher precedence to keep its shape on re-parse.
            fmt_expr(right, p + 1, f)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Not(inner) => {
            // NOT binds between AND and comparisons.
            let parens = 3 < min_prec;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "NOT ")?;
            fmt_expr(inner, 4, f)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::IsNull { expr, negated } => {
            let parens = 4 < min_prec;
            if parens {
                write!(f, "(")?;
            }
            fmt_expr(expr, 5, f)?;
            write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::InList { expr, list, negated } => {
            let parens = 4 < min_prec;
            if parens {
                write!(f, "(")?;
            }
            fmt_expr(expr, 5, f)?;
            write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(item, 0, f)?;
            }
            write!(f, ")")?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Function { name, args, wildcard } => {
            // COUNT lexes as a keyword the parser special-cases as a
            // function head; quoting it would be valid but ugly.
            let head =
                if name.eq_ignore_ascii_case("count") { name.clone() } else { sql_ident(name) };
            write!(f, "{head}(")?;
            if *wildcard {
                write!(f, "*")?;
            } else {
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    fmt_expr(a, 0, f)?;
                }
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {}", sql_ident(a))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{}", sql_ident(name))?;
                if let Some(a) = alias {
                    write!(f, " {}", sql_ident(a))?;
                }
                Ok(())
            }
            TableFactor::Derived { query, alias } => {
                write!(f, "({query}) {}", sql_ident(alias))
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Union { left, right, all } => {
                // Parenthesize both sides: UNION chains re-parse identically
                // and derived-table bodies stay readable.
                write!(f, "({left}) UNION {}({right})", if *all { "ALL " } else { "" })
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::parser::{parse_expr, parse_query};

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = e.to_string();
        let back = parse_expr(&printed).unwrap();
        assert_eq!(back, e, "printed as `{printed}`");
    }

    fn roundtrip_query(src: &str) {
        let q = parse_query(src).unwrap();
        let printed = q.to_string();
        let back = parse_query(&printed).unwrap();
        assert_eq!(back, q, "printed as `{printed}`");
    }

    #[test]
    fn expr_roundtrips() {
        roundtrip_expr("a = 1 or b = 2 and not c = 3");
        roundtrip_expr("(a = 1 or b = 2) and c = 3");
        roundtrip_expr("1 + 2 * 3 - (4 - 5)");
        roundtrip_expr("x is not null and y in (1, 2, 3)");
        roundtrip_expr("count(*) >= 2");
        roundtrip_expr("degree_of_conjunction(doi) > 0.5");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(sql_literal(&Value::str("O'Neil")), "'O''Neil'");
        roundtrip_expr("name = 'O''Neil'");
    }

    #[test]
    fn float_literals_keep_their_type() {
        let e = lit(2.0f64);
        assert_eq!(e.to_string(), "2.0");
        let back = parse_expr("2.0").unwrap();
        assert!(matches!(back, Expr::Literal(Value::Float(_))));
    }

    #[test]
    fn reserved_words_are_quoted() {
        assert_eq!(sql_ident("order"), "\"order\"");
        assert_eq!(sql_ident("title"), "title");
        assert_eq!(sql_ident("has space"), "\"has space\"");
        roundtrip_expr("\"order\".x = 1");
    }

    #[test]
    fn query_roundtrips() {
        roundtrip_query("select distinct MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid");
        roundtrip_query(
            "select t from ((select distinct a t from A) union all (select distinct b t from B)) TEMP \
             group by t having count(*) >= 2 order by t desc limit 5",
        );
        roundtrip_query("select * from T");
    }

    #[test]
    fn shape_preserving_parens() {
        // a-(b-c) must not print as a-b-c.
        let e = binary(lit(1i64), BinaryOp::Minus, binary(lit(2i64), BinaryOp::Minus, lit(3i64)));
        assert_eq!(e.to_string(), "1 - (2 - 3)");
        let back = parse_expr(&e.to_string()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn or_inside_and_parenthesized() {
        let e = and(or(col("a", "x"), col("a", "y")), col("a", "z"));
        assert_eq!(e.to_string(), "(a.x OR a.y) AND a.z");
    }
}
