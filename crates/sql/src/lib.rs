//! # pqp-sql
//!
//! The SQL front end of the `pqp` workspace: a hand-written lexer, a
//! recursive-descent parser, an AST with programmatic builders, and a
//! precedence-aware printer whose output re-parses to the same AST.
//!
//! The dialect is exactly the fragment the paper's personalization framework
//! produces and consumes: SPJ blocks with and/or/not qualifications,
//! `DISTINCT`, `UNION [ALL]`, derived tables, `GROUP BY`/`HAVING`, aggregate
//! calls (including `DEGREE_OF_CONJUNCTION`/`DEGREE_OF_DISJUNCTION` from §6),
//! `ORDER BY` and `LIMIT`.
//!
//! ```
//! use pqp_sql::{parse_query, Expr};
//!
//! let q = parse_query(
//!     "select distinct MV.title from MOVIE MV, GENRE GE \
//!      where MV.mid = GE.mid and GE.genre = 'comedy'",
//! )
//! .unwrap();
//! let select = q.as_select().unwrap();
//! assert!(select.distinct);
//! assert_eq!(select.from.len(), 2);
//!
//! // The printer round-trips: printed SQL re-parses to the same AST.
//! assert_eq!(parse_query(&q.to_string()).unwrap(), q);
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod stmt;
pub mod token;

pub use ast::{BinaryOp, Expr, OrderByItem, Query, Select, SelectItem, SetExpr, TableFactor};
pub use error::{ParseError, Result};
pub use parser::{parse_expr, parse_query};
pub use printer::{sql_ident, sql_literal};
pub use stmt::{parse_statement, ColumnSpec, ShowStmt, Statement, TableConstraint};

/// Names recognized as aggregate functions by the engine and by
/// [`ast::Expr::contains_aggregate`].
pub const AGGREGATE_NAMES: &[&str] =
    &["COUNT", "SUM", "AVG", "MIN", "MAX", "DEGREE_OF_CONJUNCTION", "DEGREE_OF_DISJUNCTION"];

/// Whether `name` is an aggregate function name (case-insensitive).
pub fn is_aggregate_name(name: &str) -> bool {
    AGGREGATE_NAMES.iter().any(|a| a.eq_ignore_ascii_case(name))
}
