//! The abstract syntax tree of the SQL dialect.
//!
//! The dialect covers exactly what the paper's framework produces and
//! consumes: SPJ blocks with arbitrary and/or/not qualifications, `DISTINCT`,
//! `UNION ALL` (and plain `UNION`), derived tables, `GROUP BY` / `HAVING`,
//! aggregate functions (including the paper's `DEGREE_OF_CONJUNCTION` /
//! `DEGREE_OF_DISJUNCTION`), `ORDER BY` and `LIMIT`.

use pqp_storage::Value;

/// A full query: a set expression plus optional ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub body: SetExpr,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// Wrap a select block into a bare query.
    pub fn from_select(select: Select) -> Query {
        Query { body: SetExpr::Select(Box::new(select)), order_by: Vec::new(), limit: None }
    }

    /// The outermost select block, if the body is a plain select.
    pub fn as_select(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            _ => None,
        }
    }
}

/// Body of a query: a select block or a union of two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    Union {
        left: Box<SetExpr>,
        right: Box<SetExpr>,
        /// `UNION ALL` when true, duplicate-eliminating `UNION` otherwise.
        all: bool,
    },
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableFactor>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

impl Select {
    /// An empty select block (no projection, no from).
    pub fn new() -> Select {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

impl Default for Select {
    fn default() -> Self {
        Self::new()
    }
}

/// An item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause factor.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// `name [alias]` — a base table with an optional tuple variable.
    Table { name: String, alias: Option<String> },
    /// `( query ) alias` — a derived table.
    Derived { query: Box<Query>, alias: String },
}

impl TableFactor {
    /// The name by which columns of this factor are qualified: the alias if
    /// present, the table name otherwise.
    pub fn binding_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Mul,
    Div,
}

impl BinaryOp {
    /// Whether this is a comparison operator yielding a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Scalar and boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[qualifier.]name`
    Column { qualifier: Option<String>, name: String },
    /// A literal value.
    Literal(Value),
    /// `left op right`
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    /// `name(args)` or `name(*)` — aggregate or scalar function call.
    Function { name: String, args: Vec<Expr>, wildcard: bool },
}

impl Expr {
    /// Split a conjunction into its top-level conjuncts (flattening nested
    /// ANDs). A non-AND expression yields itself.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::And, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Split a disjunction into its top-level disjuncts.
    pub fn disjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::Or, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Collect the qualifiers of every column referenced in this expression.
    pub fn referenced_qualifiers(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column { qualifier: Some(q), .. } => {
                if !out.iter().any(|x| x.eq_ignore_ascii_case(q)) {
                    out.push(q.clone());
                }
            }
            Expr::Column { qualifier: None, .. } | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_qualifiers(out);
                right.referenced_qualifiers(out);
            }
            Expr::Not(e) => e.referenced_qualifiers(out),
            Expr::IsNull { expr, .. } => expr.referenced_qualifiers(out),
            Expr::InList { expr, list, .. } => {
                expr.referenced_qualifiers(out);
                for e in list {
                    e.referenced_qualifiers(out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_qualifiers(out);
                }
            }
        }
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } if crate::is_aggregate_name(name) => true,
            Expr::Function { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Column { .. } | Expr::Literal(_) => false,
        }
    }
}

/// One key of an ORDER BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn conjunct_flattening() {
        let e = and(and(col("a", "x"), col("b", "y")), col("c", "z"));
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(col("a", "x").conjuncts().len(), 1);
    }

    #[test]
    fn disjunct_flattening() {
        let e = or(col("a", "x"), or(col("b", "y"), col("c", "z")));
        assert_eq!(e.disjuncts().len(), 3);
    }

    #[test]
    fn qualifier_collection_dedupes() {
        let e = and(eq(col("MV", "mid"), col("PL", "mid")), eq(col("mv", "year"), lit(2000i64)));
        let mut qs = Vec::new();
        e.referenced_qualifiers(&mut qs);
        assert_eq!(qs, vec!["MV".to_string(), "PL".to_string()]);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function { name: "COUNT".into(), args: vec![], wildcard: true };
        assert!(agg.contains_aggregate());
        assert!(gt(agg.clone(), lit(2i64)).contains_aggregate());
        assert!(!col("a", "b").contains_aggregate());
    }

    #[test]
    fn binding_name() {
        let t = TableFactor::Table { name: "MOVIE".into(), alias: Some("MV".into()) };
        assert_eq!(t.binding_name(), "MV");
        let t = TableFactor::Table { name: "MOVIE".into(), alias: None };
        assert_eq!(t.binding_name(), "MOVIE");
    }
}
