//! Statements beyond queries: DDL and DML.
//!
//! The paper's framework only consumes and produces queries; the prototype
//! still needed to create and load its tables. This module gives the engine
//! a complete textual interface: `CREATE TABLE`, `CREATE INDEX`,
//! `INSERT ... VALUES`, `DELETE`, `DROP TABLE`, and queries.

use crate::ast::{Expr, Query};
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::printer::sql_ident;
use crate::token::{Keyword, Spanned, Token};
use pqp_storage::DataType;
use std::fmt;

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
    /// Inline `PRIMARY KEY`.
    pub primary_key: bool,
    /// Inline `UNIQUE`.
    pub unique: bool,
}

/// A table-level constraint in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableConstraint {
    PrimaryKey(Vec<String>),
    Unique(Vec<String>),
    ForeignKey { columns: Vec<String>, parent: String, parent_columns: Vec<String> },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    CreateTable {
        name: String,
        columns: Vec<ColumnSpec>,
        constraints: Vec<TableConstraint>,
    },
    CreateIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Delete {
        table: String,
        selection: Option<Expr>,
    },
    DropTable {
        name: String,
    },
    /// `ANALYZE [table]`: collect optimizer statistics for one table, or for
    /// every table when no name is given.
    Analyze {
        table: Option<String>,
    },
    /// `SHOW ...`: in-band introspection of the running service's telemetry.
    /// Answered by the service layer from live counters, not by the engine.
    Show(ShowStmt),
}

/// The introspection surface behind `SHOW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowStmt {
    /// `SHOW METRICS`: lifetime and last-window latency/SLO counters.
    Metrics,
    /// `SHOW QUERIES [LIMIT n]`: most recent entries of the query log.
    Queries { limit: Option<usize> },
    /// `SHOW CACHES`: occupancy and hit rates of the service caches.
    Caches,
}

/// Parse one statement (optionally `;`-terminated).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let src = src.trim_end().trim_end_matches(';');
    let tokens = tokenize(src)?;
    let mut p = StmtParser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semi_and_eof()?;
    Ok(stmt)
}

struct StmtParser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl StmtParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.tokens[self.pos].offset, msg)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(k))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn eat_semi_and_eof(&mut self) -> Result<()> {
        // Trailing `;` was stripped before lexing; only EOF remains.
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input starting at `{}`", self.peek())))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Token::Keyword(Keyword::Create) => self.create(),
            Token::Keyword(Keyword::Insert) => self.insert(),
            Token::Keyword(Keyword::Delete) => self.delete(),
            Token::Keyword(Keyword::Drop) => self.drop_table(),
            Token::Keyword(Keyword::Analyze) => self.analyze(),
            Token::Keyword(Keyword::Show) => self.show(),
            _ => {
                // Delegate to the query parser on the remaining text — we
                // re-parse from the original tokens for position fidelity.
                let q = self.query()?;
                Ok(Statement::Query(q))
            }
        }
    }

    fn query(&mut self) -> Result<Query> {
        // Delegate to the main query parser over the remaining tokens (the
        // statement parser only reaches here when the whole input is a
        // query).
        let src: Vec<Spanned> = self.tokens[self.pos..].to_vec();
        let q = crate::parser::parse_tokens(src)?;
        self.pos = self.tokens.len() - 1; // consume everything
        Ok(q)
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Index) {
            // CREATE INDEX [name] ON table (column)
            if matches!(self.peek(), Token::Ident(_)) {
                let _name = self.ident()?;
            }
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex { table, column });
        }
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Keyword(Keyword::Primary) => {
                    self.next();
                    self.expect_kw(Keyword::Key)?;
                    constraints.push(TableConstraint::PrimaryKey(self.column_list()?));
                }
                Token::Keyword(Keyword::Unique) => {
                    self.next();
                    constraints.push(TableConstraint::Unique(self.column_list()?));
                }
                Token::Keyword(Keyword::Foreign) => {
                    self.next();
                    self.expect_kw(Keyword::Key)?;
                    let columns = self.column_list()?;
                    self.expect_kw(Keyword::References)?;
                    let parent = self.ident()?;
                    let parent_columns = self.column_list()?;
                    constraints.push(TableConstraint::ForeignKey {
                        columns,
                        parent,
                        parent_columns,
                    });
                }
                _ => {
                    let col = self.ident()?;
                    let ty = self.data_type()?;
                    let mut spec = ColumnSpec {
                        name: col,
                        ty,
                        nullable: true,
                        primary_key: false,
                        unique: false,
                    };
                    loop {
                        if self.eat_kw(Keyword::Not) {
                            self.expect_kw(Keyword::Null)?;
                            spec.nullable = false;
                        } else if self.eat_kw(Keyword::Primary) {
                            self.expect_kw(Keyword::Key)?;
                            spec.primary_key = true;
                            spec.nullable = false;
                        } else if self.eat_kw(Keyword::Unique) {
                            spec.unique = true;
                        } else if self.eat_kw(Keyword::Null) {
                            // explicit NULL-able
                        } else {
                            break;
                        }
                    }
                    columns.push(spec);
                }
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        if columns.is_empty() {
            return Err(self.err("a table needs at least one column"));
        }
        Ok(Statement::CreateTable { name, columns, constraints })
    }

    fn column_list(&mut self) -> Result<Vec<String>> {
        self.expect(&Token::LParen)?;
        let mut out = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            out.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(out)
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let ty = match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => DataType::Float,
            "TEXT" | "STRING" | "VARCHAR" | "CHAR" => DataType::Str,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => return Err(self.err(format!("unknown type `{other}`"))),
        };
        // Optional length, e.g. VARCHAR(40): accepted and ignored.
        if self.eat(&Token::LParen) {
            match self.next() {
                Token::Int(_) => {}
                other => return Err(self.err(format!("expected length, found `{other}`"))),
            }
            self.expect(&Token::RParen)?;
        }
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.peek() == &Token::LParen { Some(self.column_list()?) } else { None };
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.value_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    /// A constant expression inside VALUES — reuse the expression grammar.
    fn value_expr(&mut self) -> Result<Expr> {
        let (expr, consumed) = crate::parser::parse_expr_prefix(self.tokens[self.pos..].to_vec())?;
        self.pos += consumed;
        Ok(expr)
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let selection = if self.eat_kw(Keyword::Where) {
            let (expr, consumed) =
                crate::parser::parse_expr_prefix(self.tokens[self.pos..].to_vec())?;
            self.pos += consumed;
            Some(expr)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        Ok(Statement::DropTable { name: self.ident()? })
    }

    fn analyze(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Analyze)?;
        let table = if matches!(self.peek(), Token::Ident(_)) { Some(self.ident()?) } else { None };
        Ok(Statement::Analyze { table })
    }

    fn show(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Show)?;
        // METRICS / QUERIES / CACHES are contextual: ordinary identifiers
        // that only mean something directly after SHOW.
        let what = self.ident()?;
        let show = match what.to_ascii_uppercase().as_str() {
            "METRICS" => ShowStmt::Metrics,
            "QUERIES" => {
                let limit = if self.eat_kw(Keyword::Limit) {
                    match self.next() {
                        Token::Int(n) if n >= 0 => Some(n as usize),
                        other => {
                            return Err(
                                self.err(format!("expected a non-negative LIMIT, found `{other}`"))
                            )
                        }
                    }
                } else {
                    None
                };
                ShowStmt::Queries { limit }
            }
            "CACHES" => ShowStmt::Caches,
            other => {
                return Err(self.err(format!(
                    "unknown SHOW target `{other}` (expected METRICS, QUERIES or CACHES)"
                )))
            }
        };
        Ok(Statement::Show(show))
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::CreateTable { name, columns, constraints } => {
                write!(f, "CREATE TABLE {} (", sql_ident(name))?;
                let mut first = true;
                for c in columns {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{} {}", sql_ident(&c.name), c.ty)?;
                    if c.primary_key {
                        write!(f, " PRIMARY KEY")?;
                    } else if !c.nullable {
                        write!(f, " NOT NULL")?;
                    }
                    if c.unique {
                        write!(f, " UNIQUE")?;
                    }
                }
                for con in constraints {
                    write!(f, ", ")?;
                    match con {
                        TableConstraint::PrimaryKey(cols) => {
                            write!(f, "PRIMARY KEY ({})", idents(cols))?;
                        }
                        TableConstraint::Unique(cols) => {
                            write!(f, "UNIQUE ({})", idents(cols))?;
                        }
                        TableConstraint::ForeignKey { columns, parent, parent_columns } => {
                            write!(
                                f,
                                "FOREIGN KEY ({}) REFERENCES {} ({})",
                                idents(columns),
                                sql_ident(parent),
                                idents(parent_columns)
                            )?;
                        }
                    }
                }
                write!(f, ")")
            }
            Statement::CreateIndex { table, column } => {
                write!(f, "CREATE INDEX ON {} ({})", sql_ident(table), sql_ident(column))
            }
            Statement::Insert { table, columns, rows } => {
                write!(f, "INSERT INTO {}", sql_ident(table))?;
                if let Some(cols) = columns {
                    write!(f, " ({})", idents(cols))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Delete { table, selection } => {
                write!(f, "DELETE FROM {}", sql_ident(table))?;
                if let Some(w) = selection {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {}", sql_ident(name)),
            Statement::Analyze { table } => match table {
                Some(t) => write!(f, "ANALYZE {}", sql_ident(t)),
                None => write!(f, "ANALYZE"),
            },
            Statement::Show(show) => match show {
                ShowStmt::Metrics => write!(f, "SHOW METRICS"),
                ShowStmt::Queries { limit: Some(n) } => write!(f, "SHOW QUERIES LIMIT {n}"),
                ShowStmt::Queries { limit: None } => write!(f, "SHOW QUERIES"),
                ShowStmt::Caches => write!(f, "SHOW CACHES"),
            },
        }
    }
}

fn idents(cols: &[String]) -> String {
    cols.iter().map(|c| sql_ident(c)).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::Value;

    fn roundtrip(src: &str) -> Statement {
        let s = parse_statement(src).unwrap();
        let printed = s.to_string();
        let back = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        assert_eq!(back, s, "printed as `{printed}`");
        s
    }

    #[test]
    fn create_table_full() {
        let s = roundtrip(
            "create table MOVIE (\
               mid int primary key, \
               title varchar(64) not null, \
               year integer, \
               rating float unique, \
               fresh boolean, \
               primary key (mid), \
               unique (title, year), \
               foreign key (year) references YEARS (y))",
        );
        let Statement::CreateTable { name, columns, constraints } = s else { panic!() };
        assert_eq!(name, "MOVIE");
        assert_eq!(columns.len(), 5);
        assert!(columns[0].primary_key);
        assert!(!columns[1].nullable);
        assert_eq!(columns[1].ty, DataType::Str);
        assert!(columns[3].unique);
        assert_eq!(columns[4].ty, DataType::Bool);
        assert_eq!(constraints.len(), 3);
    }

    #[test]
    fn create_index_with_and_without_name() {
        let s = roundtrip("create index on GENRE (genre)");
        assert_eq!(s, Statement::CreateIndex { table: "GENRE".into(), column: "genre".into() });
        let s = parse_statement("create index idx_g on GENRE (genre)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { .. }));
    }

    #[test]
    fn insert_multi_row() {
        let s =
            roundtrip("insert into MOVIE (mid, title) values (1, 'Alpha'), (2, 'Beta'), (3, NULL)");
        let Statement::Insert { rows, columns, .. } = s else { panic!() };
        assert_eq!(rows.len(), 3);
        assert_eq!(columns.unwrap().len(), 2);
        assert_eq!(rows[2][1], Expr::Literal(Value::Null));
    }

    #[test]
    fn insert_without_columns_and_negative_numbers() {
        let s = roundtrip("insert into T values (-4, 2.5, true)");
        let Statement::Insert { rows, columns, .. } = s else { panic!() };
        assert!(columns.is_none());
        assert_eq!(rows[0][0], Expr::Literal(Value::Int(-4)));
    }

    #[test]
    fn delete_with_and_without_where() {
        let s = roundtrip("delete from MOVIE where mid = 3 and year > 2000");
        assert!(matches!(s, Statement::Delete { selection: Some(_), .. }));
        let s = roundtrip("delete from MOVIE");
        assert!(matches!(s, Statement::Delete { selection: None, .. }));
    }

    #[test]
    fn drop_table() {
        assert_eq!(roundtrip("drop table T"), Statement::DropTable { name: "T".into() });
    }

    #[test]
    fn analyze_with_and_without_table() {
        assert_eq!(roundtrip("analyze MOVIE"), Statement::Analyze { table: Some("MOVIE".into()) });
        assert_eq!(roundtrip("ANALYZE"), Statement::Analyze { table: None });
        assert_eq!(roundtrip("analyze;"), Statement::Analyze { table: None });
        assert!(parse_statement("analyze MOVIE GENRE").is_err(), "one table at most");
    }

    #[test]
    fn show_statements_roundtrip() {
        assert_eq!(roundtrip("show metrics"), Statement::Show(ShowStmt::Metrics));
        assert_eq!(roundtrip("SHOW METRICS;"), Statement::Show(ShowStmt::Metrics));
        assert_eq!(roundtrip("show queries"), Statement::Show(ShowStmt::Queries { limit: None }));
        assert_eq!(
            roundtrip("show queries limit 25"),
            Statement::Show(ShowStmt::Queries { limit: Some(25) })
        );
        assert_eq!(roundtrip("show caches"), Statement::Show(ShowStmt::Caches));
    }

    #[test]
    fn show_rejects_bad_targets() {
        assert!(parse_statement("show").is_err());
        assert!(parse_statement("show tables").is_err());
        assert!(parse_statement("show queries limit").is_err());
        assert!(parse_statement("show queries limit -1").is_err());
        assert!(parse_statement("show metrics extra").is_err());
    }

    #[test]
    fn show_words_stay_usable_as_identifiers() {
        // Only SHOW is reserved; METRICS / QUERIES / CACHES remain valid
        // table and column names.
        let s = roundtrip("select Q.metrics from QUERIES Q where Q.caches = 1");
        assert!(matches!(s, Statement::Query(_)));
    }

    #[test]
    fn trailing_semicolon_accepted() {
        assert!(matches!(parse_statement("select 1 from T;").unwrap(), Statement::Query(_)));
        assert!(matches!(
            parse_statement("drop table T ;  ").unwrap(),
            Statement::DropTable { .. }
        ));
        // Mid-statement semicolons are still rejected.
        assert!(parse_statement("select 1; select 2").is_err());
    }

    #[test]
    fn plain_query_passes_through() {
        let s = roundtrip("select MV.title from MOVIE MV where MV.mid = 1");
        assert!(matches!(s, Statement::Query(_)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("create table T ()").is_err());
        assert!(parse_statement("create table T (x blob)").is_err());
        assert!(parse_statement("insert into T").is_err());
        assert!(parse_statement("delete T").is_err());
        assert!(parse_statement("create table T (x int) garbage").is_err());
    }
}
