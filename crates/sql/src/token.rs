//! Tokens produced by the lexer.

use std::fmt;

/// SQL keywords recognized by this dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Union,
    All,
    And,
    Or,
    Not,
    As,
    Asc,
    Desc,
    Limit,
    Is,
    Null,
    In,
    True,
    False,
    Count,
    // DDL / DML
    Create,
    Table,
    Primary,
    Key,
    Foreign,
    References,
    Unique,
    Index,
    On,
    Insert,
    Into,
    Values,
    Delete,
    Drop,
    Analyze,
    // Introspection. Only SHOW itself is reserved; METRICS / QUERIES /
    // CACHES stay contextual identifiers so tables and columns can keep
    // those names.
    Show,
}

impl Keyword {
    /// Parse an identifier into a keyword, case-insensitively.
    #[allow(clippy::should_implement_trait)] // fallible, returns Option not Result
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "UNION" => Union,
            "ALL" => All,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "AS" => As,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "IS" => Is,
            "NULL" => Null,
            "IN" => In,
            "TRUE" => True,
            "FALSE" => False,
            "COUNT" => Count,
            "CREATE" => Create,
            "TABLE" => Table,
            "PRIMARY" => Primary,
            "KEY" => Key,
            "FOREIGN" => Foreign,
            "REFERENCES" => References,
            "UNIQUE" => Unique,
            "INDEX" => Index,
            "ON" => On,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "DELETE" => Delete,
            "DROP" => Drop,
            "ANALYZE" => Analyze,
            "SHOW" => Show,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (always also available as its original identifier text).
    Keyword(Keyword),
    /// A bare identifier.
    Ident(String),
    /// A single-quoted string literal (unescaped contents).
    String(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    /// `<>` or `!=`
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}
