//! Hand-written lexer for the SQL dialect.
//!
//! Supports identifiers (optionally `"quoted"`), single-quoted strings with
//! `''` escapes, integer and float literals, the operator set of the dialect
//! and `--` line comments.

use crate::error::{ParseError, Result};
use crate::token::{Keyword, Spanned, Token};

/// Tokenize a complete source string.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned { token: Token::LParen, offset: i });
                i += 1;
            }
            ')' => {
                out.push(Spanned { token: Token::RParen, offset: i });
                i += 1;
            }
            ',' => {
                out.push(Spanned { token: Token::Comma, offset: i });
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                out.push(Spanned { token: Token::Dot, offset: i });
                i += 1;
            }
            '*' => {
                out.push(Spanned { token: Token::Star, offset: i });
                i += 1;
            }
            '+' => {
                out.push(Spanned { token: Token::Plus, offset: i });
                i += 1;
            }
            '-' => {
                out.push(Spanned { token: Token::Minus, offset: i });
                i += 1;
            }
            '/' => {
                out.push(Spanned { token: Token::Slash, offset: i });
                i += 1;
            }
            '=' => {
                out.push(Spanned { token: Token::Eq, offset: i });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::NotEq, offset: i });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "unexpected `!`"));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Spanned { token: Token::LtEq, offset: i });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Spanned { token: Token::NotEq, offset: i });
                    i += 2;
                }
                _ => {
                    out.push(Spanned { token: Token::Lt, offset: i });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::GtEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(start, "unterminated string literal")),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one UTF-8 character.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len])
                                    .map_err(|_| ParseError::new(i, "invalid utf-8"))?,
                            );
                            i += ch_len;
                        }
                    }
                }
                out.push(Spanned { token: Token::String(s), offset: start });
            }
            '"' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(start, "unterminated quoted identifier"));
                }
                let ident = src[begin..i].to_string();
                i += 1;
                out.push(Spanned { token: Token::Ident(ident), offset: start });
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let start = i;
                let mut has_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !has_dot))
                {
                    if bytes[i] == b'.' {
                        // A dot not followed by a digit terminates the number
                        // (e.g. `1.name` never occurs; `T1.x` is ident-dot).
                        if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                            break;
                        }
                        has_dot = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let token = if has_dot {
                    Token::Float(
                        text.parse()
                            .map_err(|_| ParseError::new(start, format!("bad float `{text}`")))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| ParseError::new(start, format!("bad integer `{text}`")))?,
                    )
                };
                out.push(Spanned { token, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let token = match Keyword::from_str(text) {
                    Some(k) => Token::Keyword(k),
                    None => Token::Ident(text.to_string()),
                };
                out.push(Spanned { token, offset: start });
            }
            other => {
                return Err(ParseError::new(i, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Spanned { token: Token::Eof, offset: src.len() });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("select MV.title from MOVIE MV"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("MV".into()),
                Token::Dot,
                Token::Ident("title".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("MOVIE".into()),
                Token::Ident("MV".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("SeLeCt")[0], Token::Keyword(Keyword::Select));
    }

    #[test]
    fn string_with_escape_and_unicode() {
        assert_eq!(toks("'O''Neil κ'")[0], Token::String("O'Neil κ".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42), Token::Eof]);
        assert_eq!(toks("0.75"), vec![Token::Float(0.75), Token::Eof]);
        // Unary minus is a separate token; the parser folds it.
        assert_eq!(toks("-7"), vec![Token::Minus, Token::Int(7), Token::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >= + - * /"),
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- the projection\n x"),
            vec![Token::Keyword(Keyword::Select), Token::Ident("x".into()), Token::Eof]
        );
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(toks("\"weird name\""), vec![Token::Ident("weird name".into()), Token::Eof]);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = tokenize("select 'oops").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn count_is_a_keyword() {
        assert_eq!(toks("count")[0], Token::Keyword(Keyword::Count));
    }
}
