//! Ergonomic constructors for building ASTs programmatically.
//!
//! The preference-integration step of `pqp-core` composes personalized
//! queries out of hundreds of small expression fragments; these helpers keep
//! that code readable.

use crate::ast::{BinaryOp, Expr, OrderByItem, Query, Select, SelectItem, SetExpr, TableFactor};
use pqp_storage::Value;

/// A qualified column reference `qualifier.name`.
pub fn col(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
    Expr::Column { qualifier: Some(qualifier.into()), name: name.into() }
}

/// An unqualified column reference.
pub fn bare_col(name: impl Into<String>) -> Expr {
    Expr::Column { qualifier: None, name: name.into() }
}

/// A literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// A binary expression.
pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
    Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
}

/// `left = right`
pub fn eq(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Eq, right)
}

/// `left <> right`
pub fn neq(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::NotEq, right)
}

/// `left > right`
pub fn gt(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Gt, right)
}

/// `left >= right`
pub fn gte(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::GtEq, right)
}

/// `left < right`
pub fn lt(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Lt, right)
}

/// `left AND right`
pub fn and(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::And, right)
}

/// `left OR right`
pub fn or(left: Expr, right: Expr) -> Expr {
    binary(left, BinaryOp::Or, right)
}

/// Left-deep conjunction of all expressions; `None` for an empty input.
pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
    exprs.into_iter().reduce(and)
}

/// Left-deep disjunction of all expressions; `None` for an empty input.
pub fn or_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
    exprs.into_iter().reduce(or)
}

/// `NOT expr`
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// `COUNT(*)`
pub fn count_star() -> Expr {
    Expr::Function { name: "COUNT".into(), args: Vec::new(), wildcard: true }
}

/// A function call.
pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
    Expr::Function { name: name.into(), args, wildcard: false }
}

/// A projection item without alias.
pub fn item(expr: Expr) -> SelectItem {
    SelectItem::Expr { expr, alias: None }
}

/// A projection item with an alias.
pub fn item_as(expr: Expr, alias: impl Into<String>) -> SelectItem {
    SelectItem::Expr { expr, alias: Some(alias.into()) }
}

/// A base-table FROM factor with an alias (tuple variable).
pub fn table(name: impl Into<String>, alias: impl Into<String>) -> TableFactor {
    TableFactor::Table { name: name.into(), alias: Some(alias.into()) }
}

/// A base-table FROM factor without alias.
pub fn bare_table(name: impl Into<String>) -> TableFactor {
    TableFactor::Table { name: name.into(), alias: None }
}

/// A derived-table FROM factor.
pub fn derived(query: Query, alias: impl Into<String>) -> TableFactor {
    TableFactor::Derived { query: Box::new(query), alias: alias.into() }
}

/// An ORDER BY key.
pub fn order_by(expr: Expr, desc: bool) -> OrderByItem {
    OrderByItem { expr, desc }
}

/// `UNION ALL` of a non-empty list of selects, as a left-deep tree.
pub fn union_all(selects: Vec<Select>) -> Option<SetExpr> {
    selects.into_iter().map(|s| SetExpr::Select(Box::new(s))).reduce(|l, r| SetExpr::Union {
        left: Box::new(l),
        right: Box::new(r),
        all: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_or_all() {
        assert!(and_all(Vec::new()).is_none());
        let e = and_all(vec![lit(true), lit(false), lit(true)]).unwrap();
        assert_eq!(e.conjuncts().len(), 3);
        let e = or_all(vec![lit(1i64), lit(2i64)]).unwrap();
        assert_eq!(e.disjuncts().len(), 2);
    }

    #[test]
    fn union_all_shape() {
        assert!(union_all(Vec::new()).is_none());
        let one = union_all(vec![Select::new()]).unwrap();
        assert!(matches!(one, SetExpr::Select(_)));
        let three = union_all(vec![Select::new(), Select::new(), Select::new()]).unwrap();
        let SetExpr::Union { left, all: true, .. } = three else {
            panic!("expected union");
        };
        assert!(matches!(*left, SetExpr::Union { .. }));
    }
}
