//! DDL/DML execution: `CREATE TABLE`, `CREATE INDEX`, `INSERT`, `DELETE`,
//! `DROP TABLE`.

use crate::error::{bind_err, EngineError, Result};
use crate::types::ResultSet;
use pqp_sql::stmt::{ColumnSpec, Statement, TableConstraint};
use pqp_sql::Expr;
use pqp_storage::{Catalog, ColumnDef, RowId, TableSchema, Value};

/// Outcome of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// A query's rows.
    Rows(ResultSet),
    /// DDL/DML row count (0 for DDL).
    Affected(usize),
}

impl StatementResult {
    /// The result set, if this was a query.
    pub fn rows(self) -> Option<ResultSet> {
        match self {
            StatementResult::Rows(rs) => Some(rs),
            StatementResult::Affected(_) => None,
        }
    }

    /// The affected-row count, if this was DDL/DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            StatementResult::Rows(_) => None,
            StatementResult::Affected(n) => Some(*n),
        }
    }
}

/// Execute a parsed statement against a catalog (queries are handled by the
/// caller, which owns the full pipeline).
pub fn execute_statement(stmt: &Statement, catalog: &mut Catalog) -> Result<StatementResult> {
    match stmt {
        Statement::Query(_) => {
            bind_err("execute_statement does not handle queries; use Database::run_query")
        }
        Statement::CreateTable { name, columns, constraints } => {
            let schema = build_schema(name, columns, constraints)?;
            catalog.create_table(schema)?;
            Ok(StatementResult::Affected(0))
        }
        Statement::CreateIndex { table, column } => {
            let t = catalog.table(table)?;
            t.write().create_index(column)?;
            Ok(StatementResult::Affected(0))
        }
        Statement::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(StatementResult::Affected(0))
        }
        Statement::Insert { table, columns, rows } => {
            let t = catalog.table(table)?;
            let mut t = t.write();
            let arity = t.schema().arity();
            // Map the provided column list (if any) to schema positions.
            let positions: Vec<usize> = match columns {
                None => (0..arity).collect(),
                Some(cols) => {
                    let mut out = Vec::with_capacity(cols.len());
                    for c in cols {
                        match t.schema().column_index(c) {
                            Some(i) => out.push(i),
                            None => return bind_err(format!("unknown column `{c}` in `{table}`")),
                        }
                    }
                    out
                }
            };
            let mut inserted = 0;
            for row in rows {
                if row.len() != positions.len() {
                    return bind_err(format!(
                        "INSERT row has {} values for {} columns",
                        row.len(),
                        positions.len()
                    ));
                }
                let mut full = vec![Value::Null; arity];
                for (expr, &pos) in row.iter().zip(&positions) {
                    full[pos] = const_value(expr)?;
                }
                t.insert(full)?;
                inserted += 1;
            }
            Ok(StatementResult::Affected(inserted))
        }
        Statement::Analyze { table } => {
            // Returns the number of tables analyzed. Statistics feed the
            // cost-based planner; see `crate::cost`.
            match table {
                Some(name) => {
                    catalog.analyze_table(name)?;
                    Ok(StatementResult::Affected(1))
                }
                None => Ok(StatementResult::Affected(catalog.analyze_all()?)),
            }
        }
        Statement::Show(_) => {
            // Telemetry lives in the service layer (pqp-service); the bare
            // engine has nothing to report.
            bind_err("SHOW statements are answered by the service layer, not the storage engine")
        }
        Statement::Delete { table, selection } => {
            let t = catalog.table(table)?;
            let mut t = t.write();
            let predicate = match selection {
                Some(e) => {
                    // Bind the predicate against the bare table schema.
                    let schema = crate::types::OutputSchema::new(
                        t.schema()
                            .columns
                            .iter()
                            .map(|c| crate::types::OutputColumn::new(Some(table), &c.name))
                            .collect(),
                    );
                    let planner = PredicateBinder { schema };
                    Some(planner.bind(e)?)
                }
                None => None,
            };
            let mut doomed: Vec<RowId> = Vec::new();
            for (id, row) in t.iter() {
                let row = row?;
                let keep = match &predicate {
                    Some(p) => !p.eval_predicate(&row)?,
                    None => false,
                };
                if !keep {
                    doomed.push(id);
                }
            }
            let mut deleted = 0;
            for id in doomed {
                if t.delete(id)? {
                    deleted += 1;
                }
            }
            Ok(StatementResult::Affected(deleted))
        }
    }
}

/// Bind a DELETE predicate over a single table's columns (qualified by the
/// table name or unqualified).
struct PredicateBinder {
    schema: crate::types::OutputSchema,
}

impl PredicateBinder {
    fn bind(&self, e: &Expr) -> Result<crate::bound::BoundExpr> {
        use crate::bound::BoundExpr;
        Ok(match e {
            Expr::Column { qualifier, name } => BoundExpr::Column(
                self.schema.resolve(qualifier.as_deref(), name).map_err(EngineError::Bind)?,
            ),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(self.bind(left)?),
                op: *op,
                right: Box::new(self.bind(right)?),
            },
            Expr::Not(i) => BoundExpr::Not(Box::new(self.bind(i)?)),
            Expr::IsNull { expr, negated } => {
                BoundExpr::IsNull { expr: Box::new(self.bind(expr)?), negated: *negated }
            }
            Expr::InList { expr, list, negated } => BoundExpr::InList {
                expr: Box::new(self.bind(expr)?),
                list: list.iter().map(|x| self.bind(x)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Function { name, .. } => {
                return bind_err(format!("function `{name}` not allowed in DELETE"))
            }
        })
    }
}

/// Evaluate a constant VALUES expression.
fn const_value(e: &Expr) -> Result<Value> {
    // Reuse the bound-expression evaluator over an empty row; any column
    // reference fails to bind and is reported.
    let binder = PredicateBinder { schema: crate::types::OutputSchema::default() };
    binder.bind(e)?.eval(&[])
}

fn build_schema(
    name: &str,
    columns: &[ColumnSpec],
    constraints: &[TableConstraint],
) -> Result<TableSchema> {
    let defs: Vec<ColumnDef> = columns
        .iter()
        .map(|c| ColumnDef {
            name: c.name.clone(),
            ty: c.ty,
            nullable: c.nullable && !c.primary_key,
        })
        .collect();
    let mut schema = TableSchema::new(name, defs);
    let names: Vec<String> = columns.iter().map(|c| c.name.clone()).collect();
    let index_of = move |col: &str| -> Result<usize> {
        names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(col))
            .ok_or_else(|| EngineError::Bind(format!("unknown column `{col}`")))
    };
    // Inline primary key / unique markers.
    for (i, c) in columns.iter().enumerate() {
        if c.primary_key {
            if !schema.primary_key.is_empty() {
                return bind_err("multiple PRIMARY KEY definitions");
            }
            schema.primary_key = vec![i];
        }
        if c.unique {
            schema.unique.push(vec![i]);
        }
    }
    for con in constraints {
        match con {
            TableConstraint::PrimaryKey(cols) => {
                let idx: Vec<usize> = cols.iter().map(|c| index_of(c)).collect::<Result<_>>()?;
                if !schema.primary_key.is_empty() && schema.primary_key != idx {
                    return bind_err("multiple PRIMARY KEY definitions");
                }
                for &i in &idx {
                    schema.columns[i].nullable = false;
                }
                schema.primary_key = idx;
            }
            TableConstraint::Unique(cols) => {
                let idx = cols.iter().map(|c| index_of(c)).collect::<Result<_>>()?;
                schema.unique.push(idx);
            }
            TableConstraint::ForeignKey { columns, parent, parent_columns } => {
                for c in columns {
                    index_of(c)?;
                }
                schema.foreign_keys.push(pqp_storage::ForeignKey {
                    columns: columns.clone(),
                    parent_table: parent.clone(),
                    parent_columns: parent_columns.clone(),
                });
            }
        }
    }
    Ok(schema)
}
