//! Partitioned parallel operators: morsel-style scans, filter/project
//! evaluation, and a partitioned hash join, all built on
//! [`std::thread::scope`] (the workspace allows no external dependencies,
//! so no rayon).
//!
//! ## Determinism contract
//!
//! Every operator here produces **byte-identical output to its serial
//! counterpart** in `exec.rs`:
//!
//! - scans partition the heap into contiguous *page* ranges and concatenate
//!   partition outputs in partition order, which is exactly the serial
//!   iteration order ([`pqp_storage::Heap::iter_partition`]);
//! - filter/project split their materialized input into contiguous row
//!   chunks and merge chunk outputs in chunk order;
//! - the hash join builds hash-partitioned tables over the smaller side
//!   (each partition built by one worker scanning the build rows in order,
//!   so per-key match lists keep build-insertion order), then probes
//!   contiguous chunks of the larger side, merging probe-chunk outputs in
//!   chunk order — reproducing the serial join's (probe order, then
//!   build-insertion order) emission exactly.
//!
//! Downstream order-sensitive operators (DISTINCT, GROUP BY, first-seen
//! dedup) therefore see the same row order under any thread budget.
//!
//! ## Observability
//!
//! Spans and fields are thread-local, so all recording happens on the
//! coordinating thread: each parallel operator records `partitions` and
//! per-partition output rows on its own `exec.<op>` span, bumps the
//! `exec.parallel.workers` counter by the number of workers it spawned
//! (the serial path never touches it — the regression tests key off that),
//! and the join records `strategy=parallel_hash_join`. Worker closures make
//! no observability calls.

use crate::bound::BoundExpr;
use crate::error::Result;
use crate::exec::key_of;
use pqp_storage::{Row, Table, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Count workers spawned by a parallel operator (the never-spawns-when-
/// serial regression tests watch this counter).
fn count_workers(n: usize) {
    pqp_obs::counter_add("exec.parallel.workers", n as i64);
}

/// Record the partition fan-out of the current operator's span.
fn record_partitions(sizes: &[usize]) {
    pqp_obs::record("partitions", sizes.len());
    pqp_obs::record("partition_rows", format!("{sizes:?}"));
}

/// Split `rows` into at most `parts` contiguous chunks (all but the last of
/// equal size), preserving order across the concatenation of the chunks.
fn split_chunks(mut rows: Vec<Row>, parts: usize) -> Vec<Vec<Row>> {
    let chunk = rows.len().div_ceil(parts.max(1)).max(1);
    let mut chunks = Vec::with_capacity(parts);
    while rows.len() > chunk {
        let tail = rows.split_off(chunk);
        chunks.push(std::mem::replace(&mut rows, tail));
    }
    chunks.push(rows);
    chunks
}

/// Merge per-partition results in partition order, recording the fan-out.
fn merge_ordered(results: Vec<Result<Vec<Row>>>) -> Result<Vec<Row>> {
    let parts: Vec<Vec<Row>> = results.into_iter().collect::<Result<_>>()?;
    let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
    record_partitions(&sizes);
    let mut out = Vec::with_capacity(sizes.iter().sum());
    for p in parts {
        out.extend(p);
    }
    Ok(out)
}

/// Parallel partitioned scan over a table's heap pages: each worker scans
/// one contiguous page range, applying the pushed-down filter; partitions
/// merge in page order (= serial scan order). Records
/// `exec.scan.partitions` via the span fields and metrics.
pub(crate) fn scan_partitioned(
    t: &Table,
    filter: Option<&BoundExpr>,
    parts: usize,
) -> Result<Vec<Row>> {
    count_workers(parts);
    pqp_obs::counter_add("exec.scan.partitions", parts as i64);
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                s.spawn(move || -> Result<Vec<Row>> {
                    let mut out = Vec::new();
                    for (_, row) in t.iter_partition(p, parts) {
                        let row = row?;
                        match filter {
                            Some(f) => {
                                if f.eval_predicate(&row)? {
                                    out.push(row);
                                }
                            }
                            None => out.push(row),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });
    merge_ordered(results)
}

/// Parallel filter over materialized rows: contiguous chunks, ordered merge.
pub(crate) fn filter_partitioned(
    rows: Vec<Row>,
    predicate: &BoundExpr,
    parts: usize,
) -> Result<Vec<Row>> {
    let chunks = split_chunks(rows, parts);
    count_workers(chunks.len());
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Row>> {
                    let mut out = Vec::with_capacity(chunk.len() / 2);
                    for row in chunk {
                        if predicate.eval_predicate(&row)? {
                            out.push(row);
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("filter worker panicked")).collect()
    });
    merge_ordered(results)
}

/// Parallel projection over materialized rows: contiguous chunks, ordered
/// merge.
pub(crate) fn project_partitioned(
    rows: Vec<Row>,
    exprs: &[BoundExpr],
    parts: usize,
) -> Result<Vec<Row>> {
    let chunks = split_chunks(rows, parts);
    count_workers(chunks.len());
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Row>> {
                    let mut out = Vec::with_capacity(chunk.len());
                    for row in chunk {
                        let mut projected = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            projected.push(e.eval(&row)?);
                        }
                        out.push(projected);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("project worker panicked")).collect()
    });
    merge_ordered(results)
}

/// Stable hash partition of a join key. `DefaultHasher::new()` uses fixed
/// keys, so the routing is deterministic within and across runs.
fn partition_of(key: &[Value], parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Partitioned hash join: parallel build of `parts` hash-partitioned tables
/// over the smaller side, then parallel probe of the larger side in
/// contiguous chunks merged in chunk order. Output rows are identical (and
/// identically ordered) to the serial `hash_join`.
pub(crate) fn hash_join_partitioned(
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    left_keys: &[usize],
    right_keys: &[usize],
    parts: usize,
) -> Result<Vec<Row>> {
    // Build on the smaller side; output column order is always left ++ right.
    let build_left = lrows.len() <= rrows.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (&lrows, &rrows, left_keys, right_keys)
    } else {
        (&rrows, &lrows, right_keys, left_keys)
    };
    pqp_obs::record("strategy", "parallel_hash_join");
    pqp_obs::record("build_rows", build.len());

    // Phase 1: each worker owns one hash partition and builds its table by
    // scanning the build rows in order (per-key match lists therefore keep
    // build-insertion order, as the serial join's single table does).
    count_workers(parts);
    let tables: Vec<HashMap<Vec<Value>, Vec<usize>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                s.spawn(move || {
                    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                    for (i, row) in build.iter().enumerate() {
                        if let Some(k) = key_of(row, build_keys) {
                            if partition_of(&k, parts) == p {
                                table.entry(k).or_default().push(i);
                            }
                        }
                    }
                    table
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("build worker panicked")).collect()
    });

    // Phase 2: probe contiguous chunks in parallel; chunk outputs merge in
    // chunk order, reproducing the serial probe-order emission.
    let chunk = probe.len().div_ceil(parts).max(1);
    let chunk_count = probe.len().div_ceil(chunk);
    count_workers(chunk_count);
    let tables = &tables;
    let outs: Vec<Vec<Row>> = std::thread::scope(|s| {
        let handles: Vec<_> = probe
            .chunks(chunk)
            .map(|chunk_rows| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for prow in chunk_rows {
                        let Some(k) = key_of(prow, probe_keys) else {
                            continue;
                        };
                        if let Some(matches) = tables[partition_of(&k, parts)].get(&k) {
                            for &bi in matches {
                                let brow = &build[bi];
                                let (l, r) = if build_left { (brow, prow) } else { (prow, brow) };
                                let mut row = l.clone();
                                row.extend(r.iter().cloned());
                                out.push(row);
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("probe worker panicked")).collect()
    });
    let sizes: Vec<usize> = outs.iter().map(Vec::len).collect();
    record_partitions(&sizes);
    let mut out = Vec::with_capacity(sizes.iter().sum());
    for o in outs {
        out.extend(o);
    }
    Ok(out)
}
