//! Partitioned parallel operators: morsel-style scans, filter/project
//! evaluation, and a partitioned hash join, all built on
//! [`std::thread::scope`] (the workspace allows no external dependencies,
//! so no rayon).
//!
//! ## Determinism contract
//!
//! Every operator here produces **byte-identical output to its serial
//! counterpart** in `exec.rs`:
//!
//! - scans partition the heap into contiguous *page* ranges and concatenate
//!   partition outputs in partition order, which is exactly the serial
//!   iteration order ([`pqp_storage::Heap::iter_partition`]);
//! - filter/project split their materialized input into contiguous row
//!   chunks and merge chunk outputs in chunk order;
//! - the hash join builds hash-partitioned tables over the smaller side
//!   (each partition built by one worker scanning the build rows in order,
//!   so per-key match lists keep build-insertion order), then probes
//!   contiguous chunks of the larger side, merging probe-chunk outputs in
//!   chunk order — reproducing the serial join's (probe order, then
//!   build-insertion order) emission exactly.
//!
//! Downstream order-sensitive operators (DISTINCT, GROUP BY, first-seen
//! dedup) therefore see the same row order under any thread budget.
//!
//! ## Failure & governor semantics
//!
//! Workers share the query's [`QueryCtx`]: scans charge rows and other
//! loops checkpoint on the same atomic counters as the serial paths, so a
//! budget tripped by any worker stops the rest at their next checkpoint. A
//! *panicking* worker is isolated: every `scope` joins all its handles and
//! maps a panicked join into [`EngineError::Internal`] — the query fails
//! with a typed error, no thread leaks, and the process keeps serving. The
//! `par.worker` failpoint fires at each worker's entry to prove exactly
//! that under chaos testing.
//!
//! ## Observability
//!
//! Spans and fields are thread-local, so all recording happens on the
//! coordinating thread: each parallel operator records `partitions` and
//! per-partition output rows on its own `exec.<op>` span, bumps the
//! `exec.parallel.workers` counter by the number of workers it spawned
//! (the serial path never touches it — the regression tests key off that),
//! and the join records `strategy=parallel_hash_join`. Worker closures make
//! no observability calls.

use crate::bound::BoundExpr;
use crate::error::{EngineError, Result};
use crate::exec::key_of;
use pqp_obs::governor::{CHARGE_BATCH_ROWS, CHECKPOINT_STRIDE};
use pqp_obs::{approx_row_bytes, QueryCtx};
use pqp_storage::{Row, Table, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::thread::ScopedJoinHandle;

/// Count workers spawned by a parallel operator (the never-spawns-when-
/// serial regression tests watch this counter).
pub(crate) fn count_workers(n: usize) {
    pqp_obs::counter_add("exec.parallel.workers", n as i64);
}

/// Record the partition fan-out of the current operator's span.
pub(crate) fn record_partitions(sizes: &[usize]) {
    pqp_obs::record("partitions", sizes.len());
    pqp_obs::record("partition_rows", format!("{sizes:?}"));
}

/// The `par.worker` failpoint, fired at every worker's entry: `error` fails
/// that worker's partition, `panic` exercises the panic-isolation path
/// below, `delay` stretches the worker so deadlines trip mid-operator.
pub(crate) fn worker_failpoint() -> Result<()> {
    match pqp_obs::failpoint::fire("par.worker") {
        Some(msg) => Err(EngineError::Internal(format!("failpoint par.worker: {msg}"))),
        None => Ok(()),
    }
}

/// Join a scoped worker, converting a worker panic into a typed
/// [`EngineError::Internal`] instead of propagating the unwind: the query
/// fails, the scope still joins every other worker, the process lives on.
pub(crate) fn join_worker<T>(handle: ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    match handle.join() {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(EngineError::Internal(format!("parallel worker panicked: {msg}")))
        }
    }
}

/// Split `rows` into at most `parts` contiguous chunks (all but the last of
/// equal size), preserving order across the concatenation of the chunks.
fn split_chunks(mut rows: Vec<Row>, parts: usize) -> Vec<Vec<Row>> {
    let chunk = rows.len().div_ceil(parts.max(1)).max(1);
    let mut chunks = Vec::with_capacity(parts);
    while rows.len() > chunk {
        let tail = rows.split_off(chunk);
        chunks.push(std::mem::replace(&mut rows, tail));
    }
    chunks.push(rows);
    chunks
}

/// Merge per-partition results in partition order, recording the fan-out.
fn merge_ordered(results: Vec<Result<Vec<Row>>>) -> Result<Vec<Row>> {
    let parts: Vec<Vec<Row>> = results.into_iter().collect::<Result<_>>()?;
    let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
    record_partitions(&sizes);
    let mut out = Vec::with_capacity(sizes.iter().sum());
    for p in parts {
        out.extend(p);
    }
    Ok(out)
}

/// Parallel partitioned scan over a table's heap pages: each worker scans
/// one contiguous page range, applying the pushed-down filter; partitions
/// merge in page order (= serial scan order). Records
/// `exec.scan.partitions` via the span fields and metrics.
pub(crate) fn scan_partitioned(
    t: &Table,
    filter: Option<&BoundExpr>,
    parts: usize,
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    count_workers(parts);
    pqp_obs::counter_add("exec.scan.partitions", parts as i64);
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                s.spawn(move || -> Result<Vec<Row>> {
                    worker_failpoint()?;
                    let mut out = Vec::new();
                    let mut pending = 0u64;
                    for (_, row) in t.iter_partition(p, parts) {
                        let row = row?;
                        pending += 1;
                        if pending == CHARGE_BATCH_ROWS {
                            ctx.charge_rows(pending)?;
                            pending = 0;
                        }
                        match filter {
                            Some(f) => {
                                if f.eval_predicate(&row)? {
                                    out.push(row);
                                }
                            }
                            None => out.push(row),
                        }
                    }
                    ctx.charge_rows(pending)?;
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    merge_ordered(results)
}

/// Parallel filter over materialized rows: contiguous chunks, ordered merge.
pub(crate) fn filter_partitioned(
    rows: Vec<Row>,
    predicate: &BoundExpr,
    parts: usize,
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    let chunks = split_chunks(rows, parts);
    count_workers(chunks.len());
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Row>> {
                    worker_failpoint()?;
                    let mut out = Vec::with_capacity(chunk.len() / 2);
                    for (i, row) in chunk.into_iter().enumerate() {
                        if i & (CHECKPOINT_STRIDE - 1) == 0 {
                            ctx.checkpoint()?;
                        }
                        if predicate.eval_predicate(&row)? {
                            out.push(row);
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    merge_ordered(results)
}

/// Parallel projection over materialized rows: contiguous chunks, ordered
/// merge.
pub(crate) fn project_partitioned(
    rows: Vec<Row>,
    exprs: &[BoundExpr],
    parts: usize,
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    let chunks = split_chunks(rows, parts);
    count_workers(chunks.len());
    let results: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Row>> {
                    worker_failpoint()?;
                    let mut out = Vec::with_capacity(chunk.len());
                    for (i, row) in chunk.into_iter().enumerate() {
                        if i & (CHECKPOINT_STRIDE - 1) == 0 {
                            ctx.checkpoint()?;
                        }
                        let mut projected = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            projected.push(e.eval(&row)?);
                        }
                        out.push(projected);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    merge_ordered(results)
}

/// Stable hash partition of a join key. `DefaultHasher::new()` uses fixed
/// keys, so the routing is deterministic within and across runs.
fn partition_of(key: &[Value], parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Partitioned hash join: parallel build of `parts` hash-partitioned tables
/// over the smaller side, then parallel probe of the larger side in
/// contiguous chunks merged in chunk order. Output rows are identical (and
/// identically ordered) to the serial `hash_join`.
pub(crate) fn hash_join_partitioned(
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    left_keys: &[usize],
    right_keys: &[usize],
    parts: usize,
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    // Build on the smaller side; output column order is always left ++ right.
    let build_left = lrows.len() <= rrows.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (&lrows, &rrows, left_keys, right_keys)
    } else {
        (&rrows, &lrows, right_keys, left_keys)
    };
    pqp_obs::record("strategy", "parallel_hash_join");
    pqp_obs::record("build_rows", build.len());

    // Phase 1: each worker owns one hash partition and builds its table by
    // scanning the build rows in order (per-key match lists therefore keep
    // build-insertion order, as the serial join's single table does).
    count_workers(parts);
    let tables: Result<Vec<HashMap<Vec<Value>, Vec<usize>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                s.spawn(move || -> Result<HashMap<Vec<Value>, Vec<usize>>> {
                    worker_failpoint()?;
                    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                    for (i, row) in build.iter().enumerate() {
                        if i & (CHECKPOINT_STRIDE - 1) == 0 {
                            ctx.checkpoint()?;
                        }
                        if let Some(k) = key_of(row, build_keys) {
                            if partition_of(&k, parts) == p {
                                table.entry(k).or_default().push(i);
                            }
                        }
                    }
                    Ok(table)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let tables = tables?;

    // Phase 2: probe contiguous chunks in parallel; chunk outputs merge in
    // chunk order, reproducing the serial probe-order emission.
    let chunk = probe.len().div_ceil(parts).max(1);
    let chunk_count = probe.len().div_ceil(chunk);
    count_workers(chunk_count);
    let tables = &tables;
    let outs: Vec<Result<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = probe
            .chunks(chunk)
            .map(|chunk_rows| {
                s.spawn(move || -> Result<Vec<Row>> {
                    worker_failpoint()?;
                    let mut out = Vec::new();
                    let mut pending_mem = 0u64;
                    for (i, prow) in chunk_rows.iter().enumerate() {
                        if i & (CHECKPOINT_STRIDE - 1) == 0 {
                            ctx.charge_mem(pending_mem)?;
                            pending_mem = 0;
                        }
                        let Some(k) = key_of(prow, probe_keys) else {
                            continue;
                        };
                        if let Some(matches) = tables[partition_of(&k, parts)].get(&k) {
                            for &bi in matches {
                                let brow = &build[bi];
                                let (l, r) = if build_left { (brow, prow) } else { (prow, brow) };
                                let mut row = l.clone();
                                row.extend(r.iter().cloned());
                                pending_mem += approx_row_bytes(row.len());
                                out.push(row);
                            }
                        }
                    }
                    ctx.charge_mem(pending_mem)?;
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    merge_ordered(outs)
}
