//! Aggregate functions, including the paper's ranking aggregates.
//!
//! `DEGREE_OF_CONJUNCTION` and `DEGREE_OF_DISJUNCTION` implement §6 of the
//! paper: when the MQ rewrite unions partial results carrying per-preference
//! degrees of interest, the outer `GROUP BY` combines the degrees of the
//! preferences each row satisfies with the conjunction function
//! `1 − ∏(1 − dᵢ)` (or the disjunction function `avg(dᵢ)`), yielding the
//! estimated degree of interest used for ranking.

use crate::bound::BoundExpr;
use crate::error::{bind_err, Result};
use pqp_storage::Value;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// `1 − ∏(1 − dᵢ)` over non-null inputs (paper §3.3 conjunction).
    DegreeOfConjunction,
    /// `avg(dᵢ)` over non-null inputs (paper §3.3 disjunction).
    DegreeOfDisjunction,
}

impl AggFunc {
    /// Resolve a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "DEGREE_OF_CONJUNCTION" => AggFunc::DegreeOfConjunction,
            "DEGREE_OF_DISJUNCTION" => AggFunc::DegreeOfDisjunction,
            _ => return None,
        })
    }
}

/// A bound aggregate call: the function plus its argument expression
/// (`None` for `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<BoundExpr>,
}

impl AggCall {
    /// Validate arity at bind time.
    pub fn new(func: AggFunc, arg: Option<BoundExpr>) -> Result<AggCall> {
        if arg.is_none() && func != AggFunc::Count {
            return bind_err(format!("{func:?} requires an argument; only COUNT accepts `*`"));
        }
        Ok(AggCall { func, arg })
    }

    /// A fresh accumulator for this call.
    pub fn new_state(&self) -> AggState {
        AggState { func: self.func, count: 0, sum: 0.0, min: None, max: None, one_minus_prod: 1.0 }
    }
}

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
    one_minus_prod: f64,
}

impl AggState {
    /// Feed one input value. `None` means `COUNT(*)` (count the row
    /// unconditionally); `Some(NULL)` is ignored per SQL semantics.
    pub fn update(&mut self, v: Option<&Value>) -> Result<()> {
        let Some(v) = v else {
            self.count += 1;
            return Ok(());
        };
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg | AggFunc::DegreeOfDisjunction => {
                let x = numeric(v)?;
                self.sum += x;
            }
            AggFunc::DegreeOfConjunction => {
                let x = numeric(v)?;
                self.one_minus_prod *= 1.0 - x;
            }
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// The final aggregate value. SQL semantics: `COUNT` of nothing is 0,
    /// every other aggregate of nothing is NULL.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg | AggFunc::DegreeOfDisjunction => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::DegreeOfConjunction => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(1.0 - self.one_minus_prod)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

fn numeric(v: &Value) -> Result<f64> {
    v.as_f64().ok_or_else(|| {
        crate::error::EngineError::Exec(format!("non-numeric aggregate input `{v}`"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, inputs: &[Option<Value>]) -> Value {
        let call = AggCall::new(
            func,
            if inputs.iter().any(Option::is_some) { Some(BoundExpr::Column(0)) } else { None },
        )
        .unwrap_or(AggCall { func, arg: None });
        let mut s = call.new_state();
        for v in inputs {
            s.update(v.as_ref()).unwrap();
        }
        s.finish()
    }

    #[test]
    fn count_star_counts_rows() {
        assert_eq!(run(AggFunc::Count, &[None, None, None]), Value::Int(3));
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
    }

    #[test]
    fn count_expr_skips_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Some(Value::Int(1)), Some(Value::Null), Some(Value::Int(2))]),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_avg_min_max() {
        let ins: Vec<Option<Value>> = [1i64, 5, 3].iter().map(|&i| Some(Value::Int(i))).collect();
        assert_eq!(run(AggFunc::Sum, &ins), Value::Float(9.0));
        assert_eq!(run(AggFunc::Avg, &ins), Value::Float(3.0));
        assert_eq!(run(AggFunc::Min, &ins), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &ins), Value::Int(5));
    }

    #[test]
    fn empty_aggregates_are_null() {
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
        assert_eq!(run(AggFunc::DegreeOfConjunction, &[]), Value::Null);
    }

    #[test]
    fn degree_of_conjunction_matches_paper() {
        // Paper §3.3: degrees 0.7 and 0.81 combine to 1-(1-0.7)(1-0.81)=0.943.
        let v =
            run(AggFunc::DegreeOfConjunction, &[Some(Value::Float(0.7)), Some(Value::Float(0.81))]);
        let Value::Float(f) = v else { panic!() };
        assert!((f - 0.943).abs() < 1e-9);
    }

    #[test]
    fn degree_of_disjunction_matches_paper() {
        // Paper §3.3: (0.7 + 0.81)/2 = 0.755.
        let v =
            run(AggFunc::DegreeOfDisjunction, &[Some(Value::Float(0.7)), Some(Value::Float(0.81))]);
        assert_eq!(v, Value::Float(0.755));
    }

    #[test]
    fn single_degree_is_identity() {
        assert_eq!(
            run(AggFunc::DegreeOfConjunction, &[Some(Value::Float(0.6))]),
            Value::Float(0.6)
        );
    }

    #[test]
    fn names_resolve() {
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("Degree_Of_Conjunction"), Some(AggFunc::DegreeOfConjunction));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn non_count_requires_argument() {
        assert!(AggCall::new(AggFunc::Sum, None).is_err());
        assert!(AggCall::new(AggFunc::Count, None).is_ok());
    }
}
