//! Bound expressions: name-resolved, directly evaluable against a row.
//!
//! Evaluation follows SQL three-valued logic: `NULL` propagates through
//! comparisons and arithmetic; `AND`/`OR`/`NOT` use Kleene logic; a filter
//! keeps a row only when its predicate evaluates to `TRUE` (not `NULL`).

use crate::error::{exec_err, Result};
use pqp_sql::BinaryOp;
use pqp_storage::Value;

/// An expression whose column references are resolved to positions in the
/// input row.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Input column by position.
    Column(usize),
    Literal(Value),
    Binary {
        left: Box<BoundExpr>,
        op: BinaryOp,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            BoundExpr::Column(i) => Ok(row[*i].clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And => {
                    // Kleene AND: FALSE dominates NULL.
                    let l = left.eval(row)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = right.eval(row)?;
                    if r == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(expect_bool(&l)? && expect_bool(&r)?))
                }
                BinaryOp::Or => {
                    let l = left.eval(row)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = right.eval(row)?;
                    if r == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(expect_bool(&l)? || expect_bool(&r)?))
                }
                _ => {
                    let l = left.eval(row)?;
                    let r = right.eval(row)?;
                    eval_binary_scalar(&l, *op, &r)
                }
            },
            BoundExpr::Not(inner) => match inner.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => exec_err(format!("NOT applied to non-boolean `{other}`")),
            },
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let w = item.eval(row)?;
                    if w.is_null() {
                        saw_null = true;
                    } else if w == v {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(*negated))
            }
        }
    }

    /// Evaluate as a filter predicate: row passes iff result is `TRUE`.
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        Ok(self.eval(row)? == Value::Bool(true))
    }

    /// Constant-fold literal-only subtrees. Folding is best-effort: runtime
    /// errors (e.g. type mismatches) are left in place to surface at
    /// execution.
    pub fn fold(self) -> BoundExpr {
        match self {
            BoundExpr::Binary { left, op, right } => {
                let left = left.fold();
                let right = right.fold();
                if let (BoundExpr::Literal(_), BoundExpr::Literal(_)) = (&left, &right) {
                    let e = BoundExpr::Binary {
                        left: Box::new(left.clone()),
                        op,
                        right: Box::new(right.clone()),
                    };
                    if let Ok(v) = e.eval(&[]) {
                        return BoundExpr::Literal(v);
                    }
                    return e;
                }
                BoundExpr::Binary { left: Box::new(left), op, right: Box::new(right) }
            }
            BoundExpr::Not(inner) => {
                let inner = inner.fold();
                if let BoundExpr::Literal(_) = &inner {
                    let e = BoundExpr::Not(Box::new(inner.clone()));
                    if let Ok(v) = e.eval(&[]) {
                        return BoundExpr::Literal(v);
                    }
                    return e;
                }
                BoundExpr::Not(Box::new(inner))
            }
            BoundExpr::IsNull { expr, negated } => {
                let expr = expr.fold();
                if let BoundExpr::Literal(v) = &expr {
                    return BoundExpr::Literal(Value::Bool(v.is_null() != negated));
                }
                BoundExpr::IsNull { expr: Box::new(expr), negated }
            }
            BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
                expr: Box::new(expr.fold()),
                list: list.into_iter().map(BoundExpr::fold).collect(),
                negated,
            },
            other => other,
        }
    }

    /// Whether the expression is the literal FALSE (used to short-circuit
    /// whole plans).
    pub fn is_const_false(&self) -> bool {
        matches!(self, BoundExpr::Literal(Value::Bool(false)))
    }

    /// Whether the expression is the literal TRUE.
    pub fn is_const_true(&self) -> bool {
        matches!(self, BoundExpr::Literal(Value::Bool(true)))
    }
}

fn expect_bool(v: &Value) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| crate::error::EngineError::Exec(format!("expected boolean, found `{v}`")))
}

/// Scalar binary evaluation with NULL propagation.
pub fn eval_binary_scalar(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq => Ok(Value::Bool(l == r)),
        NotEq => Ok(Value::Bool(l != r)),
        Lt | LtEq | Gt | GtEq => {
            // Comparing values of incompatible types is a type error rather
            // than silently using the cross-type total order.
            let comparable = match (l, r) {
                (Value::Str(_), Value::Str(_)) => true,
                (Value::Bool(_), Value::Bool(_)) => true,
                _ => l.as_f64().is_some() && r.as_f64().is_some(),
            };
            if !comparable {
                return exec_err(format!("cannot compare `{l}` with `{r}`"));
            }
            let ord = l.cmp(r);
            Ok(Value::Bool(match op {
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                GtEq => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        Plus | Minus | Mul | Div => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return exec_err(format!("arithmetic on non-numeric `{l}`, `{r}`")),
            };
            // Integer-preserving arithmetic when both sides are Int.
            if let (Value::Int(x), Value::Int(y)) = (l, r) {
                return match op {
                    Plus => Ok(Value::Int(x.wrapping_add(*y))),
                    Minus => Ok(Value::Int(x.wrapping_sub(*y))),
                    Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                    Div => {
                        if *y == 0 {
                            exec_err("division by zero")
                        } else {
                            Ok(Value::Int(x.wrapping_div(*y)))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            match op {
                Plus => Ok(Value::Float(a + b)),
                Minus => Ok(Value::Float(a - b)),
                Mul => Ok(Value::Float(a * b)),
                Div => {
                    if b == 0.0 {
                        exec_err("division by zero")
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
        And | Or => unreachable!("handled in BoundExpr::eval"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    #[test]
    fn comparisons() {
        assert_eq!(bin(lit(1i64), BinaryOp::Lt, lit(2i64)).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(bin(lit("a"), BinaryOp::Eq, lit("a")).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(
            bin(lit(1i64), BinaryOp::Eq, lit(1.0f64)).eval(&[]).unwrap(),
            Value::Bool(true),
            "cross-type numeric equality"
        );
        assert!(bin(lit("a"), BinaryOp::Lt, lit(1i64)).eval(&[]).is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            bin(lit(1i64), BinaryOp::Eq, BoundExpr::Literal(Value::Null)).eval(&[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(BoundExpr::Literal(Value::Null), BinaryOp::Plus, lit(1i64)).eval(&[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn kleene_and_or() {
        let null = || BoundExpr::Literal(Value::Null);
        let t = || lit(true);
        let f = || lit(false);
        assert_eq!(bin(f(), BinaryOp::And, null()).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(bin(null(), BinaryOp::And, f()).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(bin(t(), BinaryOp::And, null()).eval(&[]).unwrap(), Value::Null);
        assert_eq!(bin(t(), BinaryOp::Or, null()).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(bin(null(), BinaryOp::Or, t()).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(bin(f(), BinaryOp::Or, null()).eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn not_and_is_null() {
        assert_eq!(BoundExpr::Not(Box::new(lit(true))).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(
            BoundExpr::Not(Box::new(BoundExpr::Literal(Value::Null))).eval(&[]).unwrap(),
            Value::Null
        );
        let isn =
            BoundExpr::IsNull { expr: Box::new(BoundExpr::Literal(Value::Null)), negated: false };
        assert_eq!(isn.eval(&[]).unwrap(), Value::Bool(true));
        let isnn = BoundExpr::IsNull { expr: Box::new(lit(1i64)), negated: true };
        assert_eq!(isnn.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_with_nulls() {
        let e = BoundExpr::InList {
            expr: Box::new(lit(2i64)),
            list: vec![lit(1i64), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        // 2 IN (1, NULL) is NULL, not FALSE.
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        let e = BoundExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(1i64), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(bin(lit(6i64), BinaryOp::Div, lit(4i64)).eval(&[]).unwrap(), Value::Int(1));
        assert_eq!(
            bin(lit(6.0f64), BinaryOp::Div, lit(4i64)).eval(&[]).unwrap(),
            Value::Float(1.5)
        );
        assert!(bin(lit(1i64), BinaryOp::Div, lit(0i64)).eval(&[]).is_err());
    }

    #[test]
    fn column_access() {
        let row = vec![Value::Int(10), Value::str("x")];
        assert_eq!(BoundExpr::Column(1).eval(&row).unwrap(), Value::str("x"));
    }

    #[test]
    fn folding() {
        let e = bin(bin(lit(1i64), BinaryOp::Plus, lit(2i64)), BinaryOp::Eq, lit(3i64)).fold();
        assert!(e.is_const_true());
        let e = bin(lit(1i64), BinaryOp::Eq, lit(2i64)).fold();
        assert!(e.is_const_false());
        // Column references block folding.
        let e = bin(BoundExpr::Column(0), BinaryOp::Plus, lit(2i64)).fold();
        assert!(matches!(e, BoundExpr::Binary { .. }));
        // Division by zero is not folded into a panic; it stays an expression.
        let e = bin(lit(1i64), BinaryOp::Div, lit(0i64)).fold();
        assert!(matches!(e, BoundExpr::Binary { .. }));
    }

    #[test]
    fn predicate_semantics() {
        assert!(lit(true).eval_predicate(&[]).unwrap());
        assert!(!lit(false).eval_predicate(&[]).unwrap());
        assert!(!BoundExpr::Literal(Value::Null).eval_predicate(&[]).unwrap());
    }
}
