//! The planner: binds an AST query against the catalog and produces an
//! executable [`Plan`].
//!
//! Planning includes the optimizations the reproduction depends on for
//! honest relative costs:
//!
//! - single-table predicates are pushed into scans;
//! - equi-join conjuncts drive a greedy join-order search producing hash
//!   joins (cross joins only remain for genuinely disconnected factors);
//! - constant folding short-circuits `WHERE FALSE` branches to `Empty`.
//!
//! The OR-expansion rewrite (see [`crate::rewrite`]) runs before planning.

use crate::aggregate::{AggCall, AggFunc};
use crate::bound::BoundExpr;
use crate::cost::Estimator;
use crate::error::{bind_err, EngineError, Result};
use crate::exec::{as_eq_literal, split_and};
use crate::plan::Plan;
use crate::types::{OutputColumn, OutputSchema};
use pqp_sql::ast::*;
use pqp_storage::{Catalog, Value};
use std::collections::HashSet;

/// Plans queries against a catalog.
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog) -> Planner<'a> {
        Planner { catalog }
    }

    /// Plan a full query (set expression + order by + limit).
    pub fn plan_query(&self, q: &Query) -> Result<Plan> {
        let mut plan = self.plan_set_expr(&q.body)?;
        if !q.order_by.is_empty() {
            match self.bind_order_by(&q.order_by, &q.body, plan.schema()) {
                Ok(keys) => plan = Plan::Sort { input: Box::new(plan), keys },
                // Sorting by a non-projected column: legal for a plain
                // (non-DISTINCT, non-aggregate) select — append hidden sort
                // columns, sort, then strip them.
                Err(e) => plan = self.sort_with_hidden_columns(q, plan).map_err(|_| e)?,
            }
        }
        if let Some(n) = q.limit {
            plan = Plan::Limit { input: Box::new(plan), n };
        }
        Ok(plan)
    }

    /// Fallback ORDER BY path: extend the top projection with hidden key
    /// columns bound against the pre-projection schema.
    fn sort_with_hidden_columns(&self, q: &Query, plan: Plan) -> Result<Plan> {
        let SetExpr::Select(sel) = &q.body else {
            return bind_err("ORDER BY column not in UNION output");
        };
        if sel.distinct || !sel.group_by.is_empty() || sel.having.is_some() {
            return bind_err("ORDER BY column must appear in the projection");
        }
        let Plan::Project { input, mut exprs, mut schema } = plan else {
            return bind_err("ORDER BY column must appear in the projection");
        };
        let visible = schema.arity();
        let mut keys = Vec::new();
        for item in &q.order_by {
            // Visible output column first; otherwise bind against the input.
            if let Expr::Column { qualifier, name } = &item.expr {
                if let Ok(i) = schema.resolve(qualifier.as_deref(), name) {
                    keys.push((i, item.desc));
                    continue;
                }
            }
            let bound = self.bind_expr(&item.expr, input.schema())?;
            let idx = exprs.len();
            exprs.push(bound);
            schema.columns.push(OutputColumn::new(None, &format!("__sort_{idx}")));
            keys.push((idx, item.desc));
        }
        let extended = Plan::Project { input, exprs, schema: schema.clone() };
        let sorted = Plan::Sort { input: Box::new(extended), keys };
        // Strip hidden columns.
        let out_schema = OutputSchema::new(schema.columns[..visible].to_vec());
        Ok(Plan::Project {
            input: Box::new(sorted),
            exprs: (0..visible).map(BoundExpr::Column).collect(),
            schema: out_schema,
        })
    }

    fn plan_set_expr(&self, s: &SetExpr) -> Result<Plan> {
        match s {
            SetExpr::Select(sel) => self.plan_select(sel),
            SetExpr::Union { left, right, all } => {
                // Flatten nested unions of the same kind into one n-ary node.
                let mut inputs = Vec::new();
                self.collect_union(left, *all, &mut inputs)?;
                self.collect_union(right, *all, &mut inputs)?;
                let arity = inputs[0].schema().arity();
                for p in &inputs[1..] {
                    if p.schema().arity() != arity {
                        return bind_err(format!(
                            "UNION arms have different arities ({arity} vs {})",
                            p.schema().arity()
                        ));
                    }
                }
                let schema = inputs[0].schema().clone();
                Ok(Plan::Union { inputs, all: *all, schema })
            }
        }
    }

    fn collect_union(&self, s: &SetExpr, all: bool, out: &mut Vec<Plan>) -> Result<()> {
        match s {
            SetExpr::Union { left, right, all: inner_all } if *inner_all == all => {
                self.collect_union(left, all, out)?;
                self.collect_union(right, all, out)?;
                Ok(())
            }
            other => {
                out.push(self.plan_set_expr(other)?);
                Ok(())
            }
        }
    }

    fn plan_select(&self, s: &Select) -> Result<Plan> {
        // 1. Bind FROM factors.
        let mut factors = Vec::new();
        let mut seen = HashSet::new();
        for f in &s.from {
            let binding = f.binding_name().to_string();
            if !seen.insert(binding.to_ascii_uppercase()) {
                return bind_err(format!("duplicate tuple variable `{binding}`"));
            }
            let plan = self.plan_table_factor(f)?;
            factors.push(BoundFactor { binding, plan });
        }

        // 2. Decompose WHERE into conjuncts and plan the join tree.
        let combined_schema =
            factors.iter().fold(OutputSchema::default(), |acc, f| acc.join(f.plan.schema()));
        let mut plan = if factors.is_empty() {
            // FROM-less select: a single empty row lets `SELECT 1` work.
            Plan::Project {
                input: Box::new(Plan::Empty { schema: OutputSchema::default() }),
                exprs: Vec::new(),
                schema: OutputSchema::default(),
            }
        } else {
            let conjuncts: Vec<Expr> = match &s.selection {
                Some(w) => w.conjuncts().into_iter().cloned().collect(),
                None => Vec::new(),
            };
            self.plan_joins(factors, conjuncts, &combined_schema)?
        };
        if s.from.is_empty() {
            if let Some(w) = &s.selection {
                let pred = self.bind_expr(w, plan.schema())?.fold();
                plan = Plan::Filter { input: Box::new(plan), predicate: pred };
            }
        }

        // 3. Aggregation.
        let needs_agg = !s.group_by.is_empty()
            || s.having.is_some()
            || s.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });

        let (proj_exprs, proj_schema, bound_having) = if needs_agg {
            self.bind_aggregate_select(s, &mut plan)?
        } else {
            let (exprs, schema) = self.bind_projection(&s.projection, plan.schema())?;
            (exprs, schema, None)
        };

        if let Some(h) = bound_having {
            plan = Plan::Filter { input: Box::new(plan), predicate: h };
        }

        plan = Plan::Project { input: Box::new(plan), exprs: proj_exprs, schema: proj_schema };
        if s.distinct {
            plan = Plan::Distinct { input: Box::new(plan) };
        }
        Ok(plan)
    }

    fn plan_table_factor(&self, f: &TableFactor) -> Result<Plan> {
        match f {
            TableFactor::Table { name, alias } => {
                let schema = self.catalog.schema_of(name)?;
                let binding = alias.as_deref().unwrap_or(name);
                let columns = schema
                    .columns
                    .iter()
                    .map(|c| OutputColumn::new(Some(binding), &c.name))
                    .collect();
                Ok(Plan::Scan {
                    table: schema.name.clone(),
                    filter: None,
                    schema: OutputSchema::new(columns),
                })
            }
            TableFactor::Derived { query, alias } => {
                let inner = self.plan_query(query)?;
                // Re-qualify the derived table's output columns with its
                // alias so references like `TEMP.title` resolve.
                let columns = inner
                    .schema()
                    .columns
                    .iter()
                    .map(|c| OutputColumn::new(Some(alias), &c.name))
                    .collect();
                let schema = OutputSchema::new(columns);
                let exprs = (0..schema.arity()).map(BoundExpr::Column).collect();
                Ok(Plan::Project { input: Box::new(inner), exprs, schema })
            }
        }
    }

    /// Greedy bushy-free join planning over the FROM factors.
    fn plan_joins(
        &self,
        factors: Vec<BoundFactor>,
        conjuncts: Vec<Expr>,
        combined: &OutputSchema,
    ) -> Result<Plan> {
        // Classify conjuncts by the set of factors they reference.
        let mut single: Vec<Vec<Expr>> = vec![Vec::new(); factors.len()];
        let mut join_edges: Vec<JoinEdge> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts {
            let refs = self.factor_refs(&c, &factors, combined)?;
            if refs.len() <= 1 {
                match refs.iter().next() {
                    Some(&i) => single[i].push(c),
                    None => residual.push(c), // constant predicate
                }
                continue;
            }
            if refs.len() == 2 {
                if let Expr::Binary { left, op: BinaryOp::Eq, right } = &c {
                    if let (Expr::Column { .. }, Expr::Column { .. }) = (&**left, &**right) {
                        let li = self.factor_of_column(left, &factors)?;
                        let ri = self.factor_of_column(right, &factors)?;
                        if let (Some(li), Some(ri)) = (li, ri) {
                            if li != ri {
                                join_edges.push(JoinEdge {
                                    factors: (li, ri),
                                    cols: ((*left.clone()).clone(), (*right.clone()).clone()),
                                });
                                continue;
                            }
                        }
                    }
                }
            }
            residual.push(c);
        }

        // Attach single-factor predicates, pushing them into the access path
        // (an IndexScan when an equality conjunct hits a hash index, a
        // filtered scan otherwise). Each factor's cardinality comes from the
        // statistics-backed estimator; un-analyzed tables fall back to the
        // fixed per-conjunct selectivities inside `crate::cost`.
        let estimator = Estimator::new(self.catalog);
        let mut nodes: Vec<Option<FactorNode>> = Vec::new();
        for (i, f) in factors.into_iter().enumerate() {
            let mut plan = f.plan;
            if !single[i].is_empty() {
                let mut pred: Option<BoundExpr> = None;
                for c in &single[i] {
                    let b = self.bind_expr(c, plan.schema())?.fold();
                    pred = Some(match pred {
                        None => b,
                        Some(p) => BoundExpr::Binary {
                            left: Box::new(p),
                            op: BinaryOp::And,
                            right: Box::new(b),
                        },
                    });
                }
                let pred = pred.unwrap();
                if pred.is_const_false() {
                    plan = Plan::Empty { schema: plan.schema().clone() };
                } else if !pred.is_const_true() {
                    plan = self.push_predicate(plan, pred);
                }
            }
            let est = estimator.rows(&plan);
            nodes.push(Some(FactorNode { binding: f.binding, plan, est }));
        }

        // Greedy ordering: start from the cheapest node, then repeatedly
        // join the connected candidate whose estimated join *output* is
        // smallest (|L|·|R| / Π max(ndv_L, ndv_R) over the connecting
        // edges); cross join when disconnected.
        let n = nodes.len();
        let start = (0..n)
            .min_by(|&a, &b| {
                let ea = nodes[a].as_ref().unwrap().est;
                let eb = nodes[b].as_ref().unwrap().est;
                ea.total_cmp(&eb)
            })
            .expect("non-empty factors");
        let mut current = nodes[start].take().unwrap();
        let mut joined: HashSet<usize> = HashSet::from([start]);
        let mut used_edges: HashSet<usize> = HashSet::new();
        let mut bindings_in: Vec<String> = vec![current.binding.clone()];

        // Track residuals not yet applied.
        let mut residual: Vec<Option<Expr>> = residual.into_iter().map(Some).collect();

        for _ in 1..n {
            // Cost each connected candidate by the cardinality of the join
            // it would produce, propagating estimates through
            // |L|·|R| / Π max(ndv_L, ndv_R) over its connecting edges.
            let lorigins = estimator.origins(&current.plan);
            let mut best: Option<(usize, f64)> = None;
            for i in (0..n).filter(|i| nodes[*i].is_some()) {
                let node = nodes[i].as_ref().unwrap();
                let norigins = estimator.origins(&node.plan);
                let mut denom = 1.0f64;
                let mut touches = false;
                for (ei, e) in join_edges.iter().enumerate() {
                    if used_edges.contains(&ei) {
                        continue;
                    }
                    let (a, b) = e.factors;
                    let (near, far) = if joined.contains(&a) && b == i {
                        (&e.cols.0, &e.cols.1)
                    } else if joined.contains(&b) && a == i {
                        (&e.cols.1, &e.cols.0)
                    } else {
                        continue;
                    };
                    touches = true;
                    let lk = self.bind_column_index(near, current.plan.schema())?;
                    let rk = self.bind_column_index(far, node.plan.schema())?;
                    let ndv_l = estimator.ndv(&lorigins[lk], current.est);
                    let ndv_r = estimator.ndv(&norigins[rk], node.est);
                    denom *= ndv_l.max(ndv_r).max(1.0);
                }
                if !touches {
                    continue;
                }
                let out = current.est * node.est / denom;
                if out < best.map_or(f64::INFINITY, |(_, o)| o) {
                    best = Some((i, out));
                }
            }
            let (idx, connected, out_est) = match best {
                Some((i, o)) => (i, true, o),
                None => {
                    let i = (0..n)
                        .filter(|i| nodes[*i].is_some())
                        .min_by(|&a, &b| {
                            nodes[a]
                                .as_ref()
                                .unwrap()
                                .est
                                .total_cmp(&nodes[b].as_ref().unwrap().est)
                        })
                        .unwrap();
                    let o = current.est * nodes[i].as_ref().unwrap().est;
                    (i, false, o)
                }
            };
            let node = nodes[idx].take().unwrap();
            let left_schema = current.plan.schema().clone();
            let right_schema = node.plan.schema().clone();
            let out_schema = left_schema.join(&right_schema);

            if connected {
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (ei, e) in join_edges.iter().enumerate() {
                    if used_edges.contains(&ei) {
                        continue;
                    }
                    let (a, b) = e.factors;
                    let (near, far) = if joined.contains(&a) && b == idx {
                        (&e.cols.0, &e.cols.1)
                    } else if joined.contains(&b) && a == idx {
                        (&e.cols.1, &e.cols.0)
                    } else {
                        continue;
                    };
                    let lk = self.bind_column_index(near, &left_schema)?;
                    let rk = self.bind_column_index(far, &right_schema)?;
                    left_keys.push(lk);
                    right_keys.push(rk);
                    used_edges.insert(ei);
                }
                debug_assert!(!left_keys.is_empty());
                current.plan = self.choose_join(
                    current.plan,
                    node.plan,
                    left_keys,
                    right_keys,
                    out_schema,
                    current.est,
                    node.est,
                );
            } else {
                current.plan = Plan::CrossJoin {
                    left: Box::new(current.plan),
                    right: Box::new(node.plan),
                    schema: out_schema,
                };
            }
            current.est = out_est.max(1.0);
            joined.insert(idx);
            bindings_in.push(node.binding.clone());

            // Any join edges between already-joined factors that were not
            // used as hash keys become filters (e.g. cycles in the join
            // graph).
            for (ei, e) in join_edges.iter().enumerate() {
                if used_edges.contains(&ei) {
                    continue;
                }
                if joined.contains(&e.factors.0) && joined.contains(&e.factors.1) {
                    let l = self.bind_expr(&e.cols.0, current.plan.schema())?;
                    let r = self.bind_expr(&e.cols.1, current.plan.schema())?;
                    current.plan = Plan::Filter {
                        input: Box::new(current.plan),
                        predicate: BoundExpr::Binary {
                            left: Box::new(l),
                            op: BinaryOp::Eq,
                            right: Box::new(r),
                        },
                    };
                    used_edges.insert(ei);
                }
            }

            // Apply residual predicates whose factors are all available.
            for r in residual.iter_mut() {
                let apply = match r {
                    Some(expr) => {
                        let refs = self.binding_refs(expr, current.plan.schema())?;
                        refs.iter().all(|q| bindings_in.iter().any(|b| b.eq_ignore_ascii_case(q)))
                    }
                    None => false,
                };
                if apply {
                    let expr = r.take().unwrap();
                    let pred = self.bind_expr(&expr, current.plan.schema())?.fold();
                    if pred.is_const_false() {
                        current.plan = Plan::Empty { schema: current.plan.schema().clone() };
                    } else if !pred.is_const_true() {
                        current.plan =
                            Plan::Filter { input: Box::new(current.plan), predicate: pred };
                    }
                }
            }
        }

        // Leftover residuals (constant predicates, or anything unresolved).
        for r in residual.into_iter().flatten() {
            let pred = self.bind_expr(&r, current.plan.schema())?.fold();
            if pred.is_const_false() {
                current.plan = Plan::Empty { schema: current.plan.schema().clone() };
            } else if !pred.is_const_true() {
                current.plan = Plan::Filter { input: Box::new(current.plan), predicate: pred };
            }
        }
        Ok(current.plan)
    }

    /// Push a bound single-table predicate into a base-table access path:
    /// an [`Plan::IndexScan`] when an equality conjunct hits a hash index,
    /// a filtered scan otherwise; a plain filter over anything that is not
    /// a bare scan.
    fn push_predicate(&self, plan: Plan, pred: BoundExpr) -> Plan {
        match plan {
            Plan::Scan { table, filter: None, schema } => {
                if let Some((column, key, residual)) = self.index_split(&table, &pred) {
                    return Plan::IndexScan { table, column, key, residual, schema };
                }
                Plan::Scan { table, filter: Some(pred), schema }
            }
            other => Plan::Filter { input: Box::new(other), predicate: pred },
        }
    }

    /// Find the first `col = literal` conjunct of `pred` (non-NULL literal)
    /// that hits a hash index of `table`; returns the indexed column name,
    /// the key, and the remaining conjuncts re-ANDed in order.
    fn index_split(
        &self,
        table: &str,
        pred: &BoundExpr,
    ) -> Option<(String, Value, Option<BoundExpr>)> {
        let t = self.catalog.table(table).ok()?;
        let t = t.read();
        let conjuncts = split_and(pred);
        let (pos, column, key) = conjuncts.iter().enumerate().find_map(|(i, c)| {
            let (col, v) = as_eq_literal(c)?;
            if v.is_null() {
                return None; // `= NULL` is never TRUE; leave it to the filter
            }
            let name = &t.schema().columns.get(col)?.name;
            t.index_on(name)?;
            Some((i, name.to_string(), v.clone()))
        })?;
        let residual = conjuncts
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, c)| c.clone())
            .reduce(|a, b| BoundExpr::Binary {
                left: Box::new(a),
                op: BinaryOp::And,
                right: Box::new(b),
            });
        Some((column, key, residual))
    }

    /// Build the physical join for the chosen factor pair: an index
    /// nested-loop join when one side is a bare scan of an analyzed,
    /// indexed base table and the other side's estimate clears the 4×
    /// probe-size guard, a hash join otherwise.
    #[allow(clippy::too_many_arguments)]
    fn choose_join(
        &self,
        left: Plan,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        schema: OutputSchema,
        left_est: f64,
        right_est: f64,
    ) -> Plan {
        if left_keys.len() == 1 {
            if let Some(p) = self.promote_index_join(
                &left,
                &right,
                left_keys[0],
                right_keys[0],
                &schema,
                left_est,
                /*probe_is_left=*/ true,
            ) {
                return p;
            }
            if let Some(p) = self.promote_index_join(
                &right,
                &left,
                right_keys[0],
                left_keys[0],
                &schema,
                right_est,
                /*probe_is_left=*/ false,
            ) {
                return p;
            }
        }
        Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys,
            right_keys,
            schema,
        }
    }

    /// `Some(IndexJoin)` when `scan_side` is a bare scan of an *analyzed*
    /// table with a hash index on its join column and the probe side's
    /// estimated cardinality clears the executor's 4× size guard at plan
    /// time. Without statistics the estimate is too crude to commit here,
    /// so the executor's runtime sniffing keeps the decision instead.
    #[allow(clippy::too_many_arguments)]
    fn promote_index_join(
        &self,
        probe: &Plan,
        scan_side: &Plan,
        probe_key: usize,
        scan_key: usize,
        schema: &OutputSchema,
        probe_est: f64,
        probe_is_left: bool,
    ) -> Option<Plan> {
        let Plan::Scan { table, filter, .. } = scan_side else {
            return None;
        };
        let t = self.catalog.table(table).ok()?;
        let t = t.read();
        let stats = t.stats()?;
        let column = t.schema().columns.get(scan_key)?.name.clone();
        t.index_on(&column)?;
        if probe_est * 4.0 > stats.rows as f64 {
            return None;
        }
        Some(Plan::IndexJoin {
            probe: Box::new(probe.clone()),
            probe_key,
            table: table.clone(),
            column,
            filter: filter.clone(),
            probe_is_left,
            schema: schema.clone(),
        })
    }

    /// Which factors an expression references.
    fn factor_refs(
        &self,
        e: &Expr,
        factors: &[BoundFactor],
        combined: &OutputSchema,
    ) -> Result<HashSet<usize>> {
        let mut qs = Vec::new();
        e.referenced_qualifiers(&mut qs);
        // Unqualified columns: resolve to find their factor.
        collect_unqualified(e, &mut |name| {
            if let Ok(i) = combined.resolve(None, name) {
                if let Some(q) = &combined.columns[i].qualifier {
                    if !qs.iter().any(|x| x.eq_ignore_ascii_case(q)) {
                        qs.push(q.clone());
                    }
                }
            }
        });
        let mut out = HashSet::new();
        for q in qs {
            match factors.iter().position(|f| f.binding.eq_ignore_ascii_case(&q)) {
                Some(i) => {
                    out.insert(i);
                }
                None => {
                    return bind_err(format!("unknown tuple variable `{q}`"));
                }
            }
        }
        Ok(out)
    }

    /// Qualifiers referenced by an expression, resolving unqualified columns
    /// through the given schema.
    fn binding_refs(&self, e: &Expr, schema: &OutputSchema) -> Result<Vec<String>> {
        let mut qs = Vec::new();
        e.referenced_qualifiers(&mut qs);
        collect_unqualified(e, &mut |name| {
            if let Ok(i) = schema.resolve(None, name) {
                if let Some(q) = &schema.columns[i].qualifier {
                    if !qs.iter().any(|x| x.eq_ignore_ascii_case(q)) {
                        qs.push(q.clone());
                    }
                }
            }
        });
        Ok(qs)
    }

    fn factor_of_column(&self, e: &Expr, factors: &[BoundFactor]) -> Result<Option<usize>> {
        let Expr::Column { qualifier, name } = e else {
            return Ok(None);
        };
        match qualifier {
            Some(q) => Ok(factors.iter().position(|f| f.binding.eq_ignore_ascii_case(q))),
            None => {
                // Unqualified: find the unique factor having this column.
                let mut hit = None;
                for (i, f) in factors.iter().enumerate() {
                    if f.plan.schema().resolve(None, name).is_ok() {
                        if hit.is_some() {
                            return bind_err(format!("ambiguous column `{name}`"));
                        }
                        hit = Some(i);
                    }
                }
                Ok(hit)
            }
        }
    }

    fn bind_column_index(&self, e: &Expr, schema: &OutputSchema) -> Result<usize> {
        let Expr::Column { qualifier, name } = e else {
            return bind_err("join key must be a plain column");
        };
        schema.resolve(qualifier.as_deref(), name).map_err(EngineError::Bind)
    }

    /// Bind a scalar expression (no aggregates allowed here).
    pub fn bind_expr(&self, e: &Expr, schema: &OutputSchema) -> Result<BoundExpr> {
        match e {
            Expr::Column { qualifier, name } => {
                let i = schema.resolve(qualifier.as_deref(), name).map_err(EngineError::Bind)?;
                Ok(BoundExpr::Column(i))
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.bind_expr(left, schema)?),
                op: *op,
                right: Box::new(self.bind_expr(right, schema)?),
            }),
            Expr::Not(inner) => Ok(BoundExpr::Not(Box::new(self.bind_expr(inner, schema)?))),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, schema)?),
                negated: *negated,
            }),
            Expr::InList { expr, list, negated } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr, schema)?),
                list: list.iter().map(|x| self.bind_expr(x, schema)).collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::Function { name, .. } => {
                if pqp_sql::is_aggregate_name(name) {
                    bind_err(format!("aggregate `{name}` not allowed in this context"))
                } else {
                    bind_err(format!("unknown function `{name}`"))
                }
            }
        }
    }

    /// Bind a plain (non-aggregate) projection.
    fn bind_projection(
        &self,
        items: &[SelectItem],
        schema: &OutputSchema,
    ) -> Result<(Vec<BoundExpr>, OutputSchema)> {
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.columns.iter().enumerate() {
                        exprs.push(BoundExpr::Column(i));
                        cols.push(c.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.bind_expr(expr, schema)?);
                    cols.push(projected_column(expr, alias.as_deref()));
                }
            }
        }
        Ok((exprs, OutputSchema::new(cols)))
    }

    /// Bind an aggregate select: inserts an Aggregate node below and returns
    /// the projection over its output plus the rebound HAVING.
    fn bind_aggregate_select(
        &self,
        s: &Select,
        plan: &mut Plan,
    ) -> Result<(Vec<BoundExpr>, OutputSchema, Option<BoundExpr>)> {
        let input_schema = plan.schema().clone();

        // Collect aggregate calls from projection and having.
        let mut agg_asts: Vec<Expr> = Vec::new();
        for item in &s.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, &mut agg_asts);
            }
        }
        if let Some(h) = &s.having {
            collect_aggregates(h, &mut agg_asts);
        }

        // Bind group-by expressions.
        let mut group_bound = Vec::new();
        let mut agg_schema_cols = Vec::new();
        for (i, g) in s.group_by.iter().enumerate() {
            group_bound.push(self.bind_expr(g, &input_schema)?);
            agg_schema_cols.push(match g {
                Expr::Column { qualifier, name } => OutputColumn::new(qualifier.as_deref(), name),
                other => OutputColumn::new(None, &format!("group_{i}__{other}")),
            });
        }

        // Bind aggregate calls.
        let mut aggs = Vec::new();
        for (i, a) in agg_asts.iter().enumerate() {
            let Expr::Function { name, args, wildcard } = a else { unreachable!() };
            let func = AggFunc::from_name(name)
                .ok_or_else(|| EngineError::Bind(format!("unknown aggregate `{name}`")))?;
            let arg = if *wildcard {
                if func != AggFunc::Count {
                    return bind_err(format!("only COUNT accepts `*`, not {name}"));
                }
                None
            } else {
                if args.len() != 1 {
                    return bind_err(format!("aggregate `{name}` takes exactly one argument"));
                }
                Some(self.bind_expr(&args[0], &input_schema)?)
            };
            aggs.push(AggCall::new(func, arg)?);
            agg_schema_cols.push(OutputColumn::new(None, &format!("agg_{i}")));
        }

        let agg_out = OutputSchema::new(agg_schema_cols);
        *plan = Plan::Aggregate {
            input: Box::new(plan.clone()),
            group_by: group_bound,
            aggs,
            schema: agg_out.clone(),
        };

        // Rebind projection and HAVING over the aggregate output.
        let ctx = AggContext { group_asts: &s.group_by, agg_asts: &agg_asts };
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Wildcard => {
                    return bind_err("`*` is not allowed in an aggregate query");
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.rebind_post_agg(expr, &ctx, &agg_out)?);
                    cols.push(projected_column(expr, alias.as_deref()));
                }
            }
        }
        let having = match &s.having {
            Some(h) => Some(self.rebind_post_agg(h, &ctx, &agg_out)?),
            None => None,
        };
        Ok((exprs, OutputSchema::new(cols), having))
    }

    /// Rebind an expression that may reference group keys and aggregates to
    /// the output of the Aggregate node.
    fn rebind_post_agg(
        &self,
        e: &Expr,
        ctx: &AggContext<'_>,
        agg_out: &OutputSchema,
    ) -> Result<BoundExpr> {
        // Group expression match → group column.
        if let Some(i) = ctx.group_asts.iter().position(|g| expr_eq_ci(g, e)) {
            return Ok(BoundExpr::Column(i));
        }
        // Aggregate call match → aggregate column.
        if let Some(i) = ctx.agg_asts.iter().position(|a| expr_eq_ci(a, e)) {
            return Ok(BoundExpr::Column(ctx.group_asts.len() + i));
        }
        match e {
            Expr::Column { qualifier, name } => {
                // Allow referencing a group column by name.
                let i = agg_out.resolve(qualifier.as_deref(), name).map_err(|_| {
                    EngineError::Bind(format!(
                        "column `{}` must appear in GROUP BY or inside an aggregate",
                        e
                    ))
                })?;
                Ok(BoundExpr::Column(i))
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.rebind_post_agg(left, ctx, agg_out)?),
                op: *op,
                right: Box::new(self.rebind_post_agg(right, ctx, agg_out)?),
            }),
            Expr::Not(inner) => {
                Ok(BoundExpr::Not(Box::new(self.rebind_post_agg(inner, ctx, agg_out)?)))
            }
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.rebind_post_agg(expr, ctx, agg_out)?),
                negated: *negated,
            }),
            Expr::InList { expr, list, negated } => Ok(BoundExpr::InList {
                expr: Box::new(self.rebind_post_agg(expr, ctx, agg_out)?),
                list: list
                    .iter()
                    .map(|x| self.rebind_post_agg(x, ctx, agg_out))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::Function { name, .. } => {
                bind_err(format!("unexpected function `{name}` after aggregation"))
            }
        }
    }

    /// Bind ORDER BY keys against the projected output.
    fn bind_order_by(
        &self,
        items: &[OrderByItem],
        body: &SetExpr,
        schema: &OutputSchema,
    ) -> Result<Vec<(usize, bool)>> {
        // Projection ASTs of the first select block, for structural matching.
        let first_projection: Vec<(Option<&str>, &Expr)> = match first_select(body) {
            Some(sel) => sel
                .projection
                .iter()
                .filter_map(|it| match it {
                    SelectItem::Expr { expr, alias } => Some((alias.as_deref(), expr)),
                    SelectItem::Wildcard => None,
                })
                .collect(),
            None => Vec::new(),
        };
        let mut keys = Vec::new();
        for item in items {
            // 1. Alias or column name in the output schema.
            if let Expr::Column { qualifier, name } = &item.expr {
                if let Ok(i) = schema.resolve(qualifier.as_deref(), name) {
                    keys.push((i, item.desc));
                    continue;
                }
            }
            // 2. Structural match against a projection expression.
            if let Some(i) = first_projection.iter().position(|(_, e)| expr_eq_ci(e, &item.expr)) {
                keys.push((i, item.desc));
                continue;
            }
            return bind_err(format!(
                "ORDER BY expression `{}` does not match any output column",
                item.expr
            ));
        }
        Ok(keys)
    }
}

struct BoundFactor {
    binding: String,
    plan: Plan,
}

struct FactorNode {
    binding: String,
    plan: Plan,
    est: f64,
}

struct JoinEdge {
    factors: (usize, usize),
    cols: (Expr, Expr),
}

struct AggContext<'a> {
    group_asts: &'a [Expr],
    agg_asts: &'a [Expr],
}

/// Output column for a projected expression.
fn projected_column(expr: &Expr, alias: Option<&str>) -> OutputColumn {
    match alias {
        Some(a) => OutputColumn::new(None, a),
        None => match expr {
            Expr::Column { qualifier, name } => OutputColumn::new(qualifier.as_deref(), name),
            other => OutputColumn::new(None, &other.to_string()),
        },
    }
}

/// Collect aggregate function calls (outermost only), deduplicating
/// structurally.
fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Function { name, .. } if pqp_sql::is_aggregate_name(name) => {
            if !out.iter().any(|x| expr_eq_ci(x, e)) {
                out.push(e.clone());
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Not(inner) => collect_aggregates(inner, out),
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for x in list {
                collect_aggregates(x, out);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) => {}
    }
}

/// Case-insensitive structural equality of expressions (identifiers and
/// function names compare case-insensitively; literals exactly).
pub fn expr_eq_ci(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Column { qualifier: qa, name: na }, Expr::Column { qualifier: qb, name: nb }) => {
            na.eq_ignore_ascii_case(nb)
                && match (qa, qb) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    (None, None) => true,
                    _ => false,
                }
        }
        (Expr::Literal(x), Expr::Literal(y)) => x == y,
        (
            Expr::Binary { left: la, op: oa, right: ra },
            Expr::Binary { left: lb, op: ob, right: rb },
        ) => oa == ob && expr_eq_ci(la, lb) && expr_eq_ci(ra, rb),
        (Expr::Not(x), Expr::Not(y)) => expr_eq_ci(x, y),
        (Expr::IsNull { expr: ea, negated: na }, Expr::IsNull { expr: eb, negated: nb }) => {
            na == nb && expr_eq_ci(ea, eb)
        }
        (
            Expr::InList { expr: ea, list: la, negated: na },
            Expr::InList { expr: eb, list: lb, negated: nb },
        ) => {
            na == nb
                && expr_eq_ci(ea, eb)
                && la.len() == lb.len()
                && la.iter().zip(lb).all(|(x, y)| expr_eq_ci(x, y))
        }
        (
            Expr::Function { name: na, args: aa, wildcard: wa },
            Expr::Function { name: nb, args: ab, wildcard: wb },
        ) => {
            na.eq_ignore_ascii_case(nb)
                && wa == wb
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| expr_eq_ci(x, y))
        }
        _ => false,
    }
}

fn collect_unqualified(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Column { qualifier: None, name } => f(name),
        Expr::Column { .. } | Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_unqualified(left, f);
            collect_unqualified(right, f);
        }
        Expr::Not(inner) => collect_unqualified(inner, f),
        Expr::IsNull { expr, .. } => collect_unqualified(expr, f),
        Expr::InList { expr, list, .. } => {
            collect_unqualified(expr, f);
            for x in list {
                collect_unqualified(x, f);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_unqualified(a, f);
            }
        }
    }
}

fn first_select(s: &SetExpr) -> Option<&Select> {
    match s {
        SetExpr::Select(sel) => Some(sel),
        SetExpr::Union { left, .. } => first_select(left),
    }
}
