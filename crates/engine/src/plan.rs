//! The (physical) query plan produced by the planner and consumed by the
//! executor.

use crate::aggregate::AggCall;
use crate::bound::BoundExpr;
use crate::types::OutputSchema;
use pqp_storage::Value;

/// A query plan node. Plans are produced fully bound: every expression
//  references input columns by position.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Produces no rows (e.g. `WHERE FALSE`, or a scan of a provably empty
    /// branch).
    Empty { schema: OutputSchema },
    /// Full scan of a base table, with an optional pushed-down filter.
    Scan { table: String, filter: Option<BoundExpr>, schema: OutputSchema },
    /// Index point lookup on a base table: the rows where `column = key`
    /// (fetched through the table's hash index), then filtered by the
    /// remaining pushed-down conjuncts. Chosen at plan time when a
    /// pushed-down equality conjunct hits a `HashIndex`; the executor falls
    /// back to a full scan if the index is missing at runtime.
    IndexScan {
        table: String,
        column: String,
        key: Value,
        residual: Option<BoundExpr>,
        schema: OutputSchema,
    },
    /// σ: keep rows whose predicate evaluates to TRUE.
    Filter { input: Box<Plan>, predicate: BoundExpr },
    /// Equi-join: `left.left_keys[i] = right.right_keys[i]` for all i.
    /// Output rows are `left ++ right`.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        schema: OutputSchema,
    },
    /// Index nested-loop join chosen at plan time: execute `probe`, then for
    /// each probe row fetch `table` rows with `column = probe[probe_key]`
    /// through the table's hash index, applying the pushed-down `filter` to
    /// fetched rows. Output columns are in the engine's fixed `left ++
    /// right` order: probe columns first when `probe_is_left`, table columns
    /// first otherwise. The executor keeps a size guard and falls back to a
    /// hash join when the probe side turns out large (or the index is gone).
    IndexJoin {
        probe: Box<Plan>,
        probe_key: usize,
        table: String,
        column: String,
        filter: Option<BoundExpr>,
        probe_is_left: bool,
        schema: OutputSchema,
    },
    /// Cartesian product (kept for predicates the join planner cannot turn
    /// into equi-joins).
    CrossJoin { left: Box<Plan>, right: Box<Plan>, schema: OutputSchema },
    /// π: compute output expressions.
    Project { input: Box<Plan>, exprs: Vec<BoundExpr>, schema: OutputSchema },
    /// γ: hash aggregation. Output rows are group values followed by
    /// aggregate results. With no group keys, exactly one output row is
    /// produced (even over empty input).
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggCall>,
        schema: OutputSchema,
    },
    /// δ: duplicate elimination preserving first-seen order.
    Distinct { input: Box<Plan> },
    /// Sort by output column positions.
    Sort { input: Box<Plan>, keys: Vec<(usize, bool)> },
    /// First-n.
    Limit { input: Box<Plan>, n: u64 },
    /// Concatenation (`all = true`) or set union (`all = false`).
    Union { inputs: Vec<Plan>, all: bool, schema: OutputSchema },
    /// Native rank operator (preference pushdown): evaluate per-preference
    /// satisfaction inside the executor instead of expanding preferences
    /// into a rewrite. `base` produces the visible columns followed by one
    /// probe column per preference; each [`TopKProbe`] tests its probe
    /// column (literal equality or membership in a witness sub-plan's
    /// output), satisfaction bits are OR-folded per visible group, and the
    /// group's degree of interest is `1 − ∏(1 − dᵢ)` over the satisfied
    /// preferences. Preference passes run in decreasing-degree order with
    /// threshold-style early termination (see `crate::topk`).
    TopK {
        base: Box<Plan>,
        probes: Vec<TopKProbe>,
        /// How many leading base columns are visible output (the rest are
        /// probe columns, one per probe, in probe order).
        visible: usize,
        matching: TopKMatching,
        /// Append the `interest` column and sort by it (descending, ties by
        /// the visible columns ascending).
        rank: bool,
        limit: Option<u64>,
        schema: OutputSchema,
    },
}

/// One optional preference carried into a [`Plan::TopK`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKProbe {
    /// The preference's degree of interest, in `[0, 1]`.
    pub doi: f64,
    pub source: TopKProbeSource,
}

/// How a [`TopKProbe`]'s probe column is tested.
#[derive(Debug, Clone, PartialEq)]
pub enum TopKProbeSource {
    /// Satisfied when the probe column equals the literal (SQL equality:
    /// NULL never matches).
    Literal(Value),
    /// Satisfied when the probe column is a member of the witness plan's
    /// single-column output (NULLs on either side never match).
    Witness(Box<Plan>),
}

/// The match requirement of a [`Plan::TopK`] node (mirrors the
/// personalization layer's `MatchSpec` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKMatching {
    /// Keep groups satisfying at least this many preferences (0 keeps all).
    AtLeast(usize),
    /// Keep groups whose degree of interest exceeds the threshold.
    MinDegree(f64),
}

impl Plan {
    /// The output schema of this node.
    pub fn schema(&self) -> &OutputSchema {
        match self {
            Plan::Empty { schema }
            | Plan::Scan { schema, .. }
            | Plan::IndexScan { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::IndexJoin { schema, .. }
            | Plan::CrossJoin { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::Aggregate { schema, .. }
            | Plan::Union { schema, .. }
            | Plan::TopK { schema, .. } => schema,
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
        }
    }

    /// A compact, indented rendering of the plan tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        self.explain_annotated(&mut |_| None)
    }

    /// Like [`Plan::explain`], but appends ` (annotation)` to every node for
    /// which `annot` returns `Some` — the hook the cost estimator uses to
    /// print `est_rows` without the plan depending on the estimator.
    pub fn explain_annotated(&self, annot: &mut dyn FnMut(&Plan) -> Option<String>) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out, annot);
        out
    }

    fn explain_into(
        &self,
        depth: usize,
        out: &mut String,
        annot: &mut dyn FnMut(&Plan) -> Option<String>,
    ) {
        let pad = "  ".repeat(depth);
        let suffix = match annot(self) {
            Some(s) => format!(" ({s})"),
            None => String::new(),
        };
        match self {
            Plan::Empty { .. } => out.push_str(&format!("{pad}Empty{suffix}\n")),
            Plan::Scan { table, filter, .. } => {
                out.push_str(&format!(
                    "{pad}Scan {table}{}{suffix}\n",
                    if filter.is_some() { " [filtered]" } else { "" }
                ));
            }
            Plan::IndexScan { table, column, key, residual, .. } => {
                out.push_str(&format!(
                    "{pad}IndexScan {table}.{column}={key}{}{suffix}\n",
                    if residual.is_some() { " [filtered]" } else { "" }
                ));
            }
            Plan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter{suffix}\n"));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::HashJoin { left, right, left_keys, right_keys, .. } => {
                out.push_str(&format!("{pad}HashJoin on {left_keys:?}={right_keys:?}{suffix}\n"));
                left.explain_into(depth + 1, out, annot);
                right.explain_into(depth + 1, out, annot);
            }
            Plan::IndexJoin { probe, table, column, filter, probe_is_left, .. } => {
                out.push_str(&format!(
                    "{pad}IndexJoin {table}.{column}{} [probe={}]{suffix}\n",
                    if filter.is_some() { " [filtered]" } else { "" },
                    if *probe_is_left { "left" } else { "right" }
                ));
                probe.explain_into(depth + 1, out, annot);
            }
            Plan::CrossJoin { left, right, .. } => {
                out.push_str(&format!("{pad}CrossJoin{suffix}\n"));
                left.explain_into(depth + 1, out, annot);
                right.explain_into(depth + 1, out, annot);
            }
            Plan::Project { input, exprs, .. } => {
                out.push_str(&format!("{pad}Project [{} exprs]{suffix}\n", exprs.len()));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::Aggregate { input, group_by, aggs, .. } => {
                out.push_str(&format!(
                    "{pad}Aggregate [{} groups, {} aggs]{suffix}\n",
                    group_by.len(),
                    aggs.len()
                ));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct{suffix}\n"));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort by {keys:?}{suffix}\n"));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}{suffix}\n"));
                input.explain_into(depth + 1, out, annot);
            }
            Plan::Union { inputs, all, .. } => {
                out.push_str(&format!(
                    "{pad}Union{} [{} inputs]{suffix}\n",
                    if *all { " All" } else { "" },
                    inputs.len()
                ));
                for i in inputs {
                    i.explain_into(depth + 1, out, annot);
                }
            }
            Plan::TopK { base, probes, visible, matching, rank, limit, .. } => {
                let match_desc = match matching {
                    TopKMatching::AtLeast(l) => format!("at-least {l}"),
                    TopKMatching::MinDegree(d) => format!("degree > {d}"),
                };
                let limit_desc = match limit {
                    Some(n) => format!(", limit {n}"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{pad}TopK [{} prefs, visible={visible}, {match_desc}{}{limit_desc}]{suffix}\n",
                    probes.len(),
                    if *rank { ", ranked" } else { "" },
                ));
                base.explain_into(depth + 1, out, annot);
                for p in probes {
                    match &p.source {
                        TopKProbeSource::Literal(v) => {
                            let pad2 = "  ".repeat(depth + 1);
                            out.push_str(&format!("{pad2}Probe = {v} [doi {}]\n", p.doi));
                        }
                        TopKProbeSource::Witness(w) => {
                            let pad2 = "  ".repeat(depth + 1);
                            out.push_str(&format!("{pad2}Probe in witness [doi {}]\n", p.doi));
                            w.explain_into(depth + 2, out, annot);
                        }
                    }
                }
            }
        }
    }
}
