//! The (physical) query plan produced by the planner and consumed by the
//! executor.

use crate::aggregate::AggCall;
use crate::bound::BoundExpr;
use crate::types::OutputSchema;

/// A query plan node. Plans are produced fully bound: every expression
//  references input columns by position.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Produces no rows (e.g. `WHERE FALSE`, or a scan of a provably empty
    /// branch).
    Empty { schema: OutputSchema },
    /// Full scan of a base table, with an optional pushed-down filter.
    Scan { table: String, filter: Option<BoundExpr>, schema: OutputSchema },
    /// σ: keep rows whose predicate evaluates to TRUE.
    Filter { input: Box<Plan>, predicate: BoundExpr },
    /// Equi-join: `left.left_keys[i] = right.right_keys[i]` for all i.
    /// Output rows are `left ++ right`.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        schema: OutputSchema,
    },
    /// Cartesian product (kept for predicates the join planner cannot turn
    /// into equi-joins).
    CrossJoin { left: Box<Plan>, right: Box<Plan>, schema: OutputSchema },
    /// π: compute output expressions.
    Project { input: Box<Plan>, exprs: Vec<BoundExpr>, schema: OutputSchema },
    /// γ: hash aggregation. Output rows are group values followed by
    /// aggregate results. With no group keys, exactly one output row is
    /// produced (even over empty input).
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggCall>,
        schema: OutputSchema,
    },
    /// δ: duplicate elimination preserving first-seen order.
    Distinct { input: Box<Plan> },
    /// Sort by output column positions.
    Sort { input: Box<Plan>, keys: Vec<(usize, bool)> },
    /// First-n.
    Limit { input: Box<Plan>, n: u64 },
    /// Concatenation (`all = true`) or set union (`all = false`).
    Union { inputs: Vec<Plan>, all: bool, schema: OutputSchema },
}

impl Plan {
    /// The output schema of this node.
    pub fn schema(&self) -> &OutputSchema {
        match self {
            Plan::Empty { schema }
            | Plan::Scan { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::CrossJoin { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::Aggregate { schema, .. }
            | Plan::Union { schema, .. } => schema,
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
        }
    }

    /// A compact, indented rendering of the plan tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Empty { .. } => out.push_str(&format!("{pad}Empty\n")),
            Plan::Scan { table, filter, .. } => {
                out.push_str(&format!(
                    "{pad}Scan {table}{}\n",
                    if filter.is_some() { " [filtered]" } else { "" }
                ));
            }
            Plan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::HashJoin { left, right, left_keys, right_keys, .. } => {
                out.push_str(&format!("{pad}HashJoin on {left_keys:?}={right_keys:?}\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            Plan::CrossJoin { left, right, .. } => {
                out.push_str(&format!("{pad}CrossJoin\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            Plan::Project { input, exprs, .. } => {
                out.push_str(&format!("{pad}Project [{} exprs]\n", exprs.len()));
                input.explain_into(depth + 1, out);
            }
            Plan::Aggregate { input, group_by, aggs, .. } => {
                out.push_str(&format!(
                    "{pad}Aggregate [{} groups, {} aggs]\n",
                    group_by.len(),
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort by {keys:?}\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::Union { inputs, all, .. } => {
                out.push_str(&format!(
                    "{pad}Union{} [{} inputs]\n",
                    if *all { " All" } else { "" },
                    inputs.len()
                ));
                for i in inputs {
                    i.explain_into(depth + 1, out);
                }
            }
        }
    }
}
