//! Schemas of intermediate results and the final result-set type.

use pqp_storage::{Row, Value};
use std::fmt;

/// One column of an intermediate or final result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputColumn {
    /// The tuple variable (or derived-table alias) the column belongs to;
    /// `None` for synthesized columns such as aggregates.
    pub qualifier: Option<String>,
    pub name: String,
}

impl OutputColumn {
    pub fn new(qualifier: Option<&str>, name: &str) -> OutputColumn {
        OutputColumn { qualifier: qualifier.map(str::to_string), name: name.to_string() }
    }

    /// Whether a reference `[qualifier.]name` resolves to this column.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self.qualifier.as_deref().is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for OutputColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Schema of an intermediate result: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutputSchema {
    pub columns: Vec<OutputColumn>,
}

impl OutputSchema {
    pub fn new(columns: Vec<OutputColumn>) -> OutputSchema {
        OutputSchema { columns }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &OutputSchema) -> OutputSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        OutputSchema { columns }
    }

    /// Resolve a column reference to its position.
    ///
    /// Returns `Err` with a descriptive message on ambiguity or absence.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, String> {
        let mut hits = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name))
            .map(|(i, _)| i);
        match (hits.next(), hits.next()) {
            (Some(i), None) => Ok(i),
            (Some(_), Some(_)) => {
                let display = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                };
                Err(format!("ambiguous column reference `{display}`"))
            }
            (None, _) => {
                let display = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                };
                Err(format!("unknown column `{display}`"))
            }
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (display names, unqualified).
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of a single column, by name.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let i = self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))?;
        Some(self.rows.iter().map(|r| r[i].clone()).collect())
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> OutputSchema {
        OutputSchema::new(vec![
            OutputColumn::new(Some("MV"), "mid"),
            OutputColumn::new(Some("MV"), "title"),
            OutputColumn::new(Some("PL"), "mid"),
            OutputColumn::new(None, "agg_0"),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("MV"), "mid"), Ok(0));
        assert_eq!(s.resolve(Some("pl"), "MID"), Ok(2));
    }

    #[test]
    fn resolve_unqualified_unique() {
        let s = schema();
        assert_eq!(s.resolve(None, "title"), Ok(1));
        assert_eq!(s.resolve(None, "agg_0"), Ok(3));
    }

    #[test]
    fn resolve_ambiguous() {
        let s = schema();
        let e = s.resolve(None, "mid").unwrap_err();
        assert!(e.contains("ambiguous"));
    }

    #[test]
    fn resolve_missing() {
        let s = schema();
        assert!(s.resolve(Some("MV"), "nope").unwrap_err().contains("unknown"));
        assert!(s.resolve(Some("XX"), "mid").unwrap_err().contains("unknown"));
    }

    #[test]
    fn join_concatenates() {
        let s = schema();
        let joined = s.join(&OutputSchema::new(vec![OutputColumn::new(Some("GN"), "genre")]));
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined.resolve(Some("GN"), "genre"), Ok(4));
    }

    #[test]
    fn result_set_column() {
        let rs = ResultSet {
            columns: vec!["title".into(), "n".into()],
            rows: vec![vec![Value::str("a"), Value::Int(1)], vec![Value::str("b"), Value::Int(2)]],
        };
        assert_eq!(rs.column("N").unwrap(), vec![Value::Int(1), Value::Int(2)]);
        assert!(rs.column("x").is_none());
        assert_eq!(rs.len(), 2);
    }
}
