//! Engine error type.

use pqp_sql::ParseError;
use pqp_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// Lexer/parser failure.
    Parse(ParseError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// Name resolution / semantic analysis failure.
    Bind(String),
    /// Runtime evaluation failure.
    Exec(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Shorthand constructor for bind errors.
pub fn bind_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(EngineError::Bind(msg.into()))
}

/// Shorthand constructor for execution errors.
pub fn exec_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(EngineError::Exec(msg.into()))
}
