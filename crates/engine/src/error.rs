//! Engine error type.

use pqp_obs::BudgetExceeded;
use pqp_sql::ParseError;
use pqp_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// Lexer/parser failure.
    Parse(ParseError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// Name resolution / semantic analysis failure.
    Bind(String),
    /// Runtime evaluation failure.
    Exec(String),
    /// The query's [`pqp_obs::Budget`] was exceeded (deadline, rows-scanned
    /// or memory cap, or cooperative cancellation) — carries
    /// partial-progress counters.
    Budget(BudgetExceeded),
    /// An invariant violation inside the engine: a panicking parallel
    /// worker, or an injected failpoint fault. The query fails; the process
    /// (and other queries) keep going.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Budget(e) => write!(f, "{e}"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<BudgetExceeded> for EngineError {
    fn from(e: BudgetExceeded) -> Self {
        EngineError::Budget(e)
    }
}

/// Evaluate the failpoint at `site`; an injected `error` action surfaces as
/// [`EngineError::Internal`].
pub(crate) fn failpoint(site: &str) -> Result<()> {
    match pqp_obs::failpoint::fire(site) {
        Some(msg) => Err(EngineError::Internal(format!("failpoint {site}: {msg}"))),
        None => Ok(()),
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Shorthand constructor for bind errors.
pub fn bind_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(EngineError::Bind(msg.into()))
}

/// Shorthand constructor for execution errors.
pub fn exec_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(EngineError::Exec(msg.into()))
}
