//! Vectorized expression evaluation over [`Batch`] columns.
//!
//! The contract is strict: every function here is **observably identical**
//! to evaluating the same [`BoundExpr`] with `BoundExpr::eval` against each
//! materialized row — same selected rows, same projected values, and an
//! error exactly when the tuple path would error (in exotic rows carrying
//! *multiple* latent errors, which error surfaces may differ; both paths
//! still fail). Typed comparison kernels are used only where the column
//! representation proves them exact; everything else falls back to a
//! per-row loop over materialized rows, which is trivially exact.
//!
//! Three-valued logic is evaluated as a per-row tri-state ([`Tri`]):
//! `AND`/`OR` first evaluate their left side over the whole selection (the
//! tuple path also always evaluates the left), then the right side only over
//! the sub-selection the left did not decide — preserving the tuple path's
//! guarantee that `x <> 0 AND 10 / x > 1` never divides by zero on a
//! filtered-out row.

use crate::bound::BoundExpr;
use crate::error::{exec_err, Result};
use pqp_sql::BinaryOp;
use pqp_storage::{total_fcmp, Batch, Column, ColumnData, Value};
use std::cmp::Ordering;

/// The row indices of `batch` (in order) whose predicate evaluates to TRUE
/// — the batched equivalent of `BoundExpr::eval_predicate` per row.
pub(crate) fn select_true(pred: &BoundExpr, batch: &Batch) -> Result<Vec<u32>> {
    let sel: Vec<u32> = (0..batch.len() as u32).collect();
    let tri = eval_tri(pred, batch, &sel)?;
    Ok(sel.into_iter().zip(tri).filter(|(_, t)| matches!(t, Tri::T)).map(|(i, _)| i).collect())
}

/// Project a batch through output expressions — the batched equivalent of
/// `BoundExpr::eval` per row per expression.
///
/// Column references copy the input column wholesale and literals broadcast
/// without touching rows; any other expression shape drops to one
/// row-at-a-time pass (rows materialized once, expressions evaluated
/// left-to-right — the tuple path's exact error order).
pub(crate) fn project_batch(exprs: &[BoundExpr], batch: &Batch) -> Result<Batch> {
    let n = batch.len();
    let mut cols: Vec<Option<Column>> = exprs
        .iter()
        .map(|e| match e {
            BoundExpr::Column(i) => Some(batch.column(*i).clone()),
            BoundExpr::Literal(v) => {
                Some(Column::from_values(std::iter::repeat_n(v.clone(), n).collect()))
            }
            _ => None,
        })
        .collect();
    if cols.iter().any(Option::is_none) {
        let mut vals: Vec<Vec<Value>> = exprs.iter().map(|_| Vec::new()).collect();
        for i in 0..n {
            let row = batch.row(i);
            for (j, e) in exprs.iter().enumerate() {
                if cols[j].is_none() {
                    vals[j].push(e.eval(&row)?);
                }
            }
        }
        for (j, c) in cols.iter_mut().enumerate() {
            if c.is_none() {
                *c = Some(Column::from_values(std::mem::take(&mut vals[j])));
            }
        }
    }
    Ok(Batch::from_columns(cols.into_iter().flatten().collect()))
}

/// Per-row predicate state: TRUE, FALSE, NULL, or a non-boolean value that
/// becomes a type error if (and only if) a logical connective must inspect
/// it — mirroring `expect_bool` in the tuple evaluator.
enum Tri {
    T,
    F,
    N,
    X(Value),
}

fn classify(v: Value) -> Tri {
    match v {
        Value::Bool(true) => Tri::T,
        Value::Bool(false) => Tri::F,
        Value::Null => Tri::N,
        other => Tri::X(other),
    }
}

/// Evaluate `e` as a tri-state for each row of `sel` (ascending row
/// indices), returning one entry per selected row.
fn eval_tri(e: &BoundExpr, batch: &Batch, sel: &[u32]) -> Result<Vec<Tri>> {
    match e {
        BoundExpr::Literal(v) => Ok(sel.iter().map(|_| classify(v.clone())).collect()),
        BoundExpr::Column(c) => {
            let col = batch.column(*c);
            Ok(sel
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    if col.is_null(i) {
                        Tri::N
                    } else if let ColumnData::Bool(v) = col.data() {
                        if v[i] {
                            Tri::T
                        } else {
                            Tri::F
                        }
                    } else {
                        classify(col.value(i))
                    }
                })
                .collect())
        }
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            // Kleene AND, FALSE-dominant: the right side is evaluated only
            // where the left is not FALSE (matching the tuple short-circuit).
            let l = eval_tri(left, batch, sel)?;
            let sub: Vec<u32> =
                sel.iter().zip(&l).filter(|(_, t)| !matches!(t, Tri::F)).map(|(&i, _)| i).collect();
            let mut r = eval_tri(right, batch, &sub)?.into_iter();
            l.into_iter()
                .map(|lt| {
                    if matches!(lt, Tri::F) {
                        return Ok(Tri::F);
                    }
                    let Some(rt) = r.next() else {
                        return exec_err("AND sub-selection misaligned");
                    };
                    match (lt, rt) {
                        (Tri::F, _) | (_, Tri::F) => Ok(Tri::F),
                        (Tri::N, _) | (_, Tri::N) => Ok(Tri::N),
                        (Tri::X(v), _) | (_, Tri::X(v)) => {
                            exec_err(format!("expected boolean, found `{v}`"))
                        }
                        (Tri::T, Tri::T) => Ok(Tri::T),
                    }
                })
                .collect()
        }
        BoundExpr::Binary { left, op: BinaryOp::Or, right } => {
            // Kleene OR, TRUE-dominant.
            let l = eval_tri(left, batch, sel)?;
            let sub: Vec<u32> =
                sel.iter().zip(&l).filter(|(_, t)| !matches!(t, Tri::T)).map(|(&i, _)| i).collect();
            let mut r = eval_tri(right, batch, &sub)?.into_iter();
            l.into_iter()
                .map(|lt| {
                    if matches!(lt, Tri::T) {
                        return Ok(Tri::T);
                    }
                    let Some(rt) = r.next() else {
                        return exec_err("OR sub-selection misaligned");
                    };
                    match (lt, rt) {
                        (Tri::T, _) | (_, Tri::T) => Ok(Tri::T),
                        (Tri::N, _) | (_, Tri::N) => Ok(Tri::N),
                        (Tri::X(v), _) | (_, Tri::X(v)) => {
                            exec_err(format!("expected boolean, found `{v}`"))
                        }
                        (Tri::F, Tri::F) => Ok(Tri::F),
                    }
                })
                .collect()
        }
        BoundExpr::Binary { left, op, right } => {
            if let Some(tri) = cmp_kernel(left, *op, right, batch, sel)? {
                return Ok(tri);
            }
            per_row(e, batch, sel)
        }
        BoundExpr::Not(inner) => eval_tri(inner, batch, sel)?
            .into_iter()
            .map(|t| match t {
                Tri::T => Ok(Tri::F),
                Tri::F => Ok(Tri::T),
                Tri::N => Ok(Tri::N),
                Tri::X(v) => exec_err(format!("NOT applied to non-boolean `{v}`")),
            })
            .collect(),
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Column(c) = &**expr {
                let col = batch.column(*c);
                return Ok(sel
                    .iter()
                    .map(|&i| if col.is_null(i as usize) != *negated { Tri::T } else { Tri::F })
                    .collect());
            }
            per_row(e, batch, sel)
        }
        BoundExpr::InList { .. } => per_row(e, batch, sel),
    }
}

/// Exact fallback: materialize each selected row and evaluate the tuple
/// way. Errors surface at the first erring row in selection (= row) order,
/// exactly as the tuple loop would.
fn per_row(e: &BoundExpr, batch: &Batch, sel: &[u32]) -> Result<Vec<Tri>> {
    sel.iter()
        .map(|&i| {
            let row = batch.row(i as usize);
            Ok(classify(e.eval(&row)?))
        })
        .collect()
}

/// Typed comparison kernel for `column <op> literal` (either orientation).
/// Returns `Ok(None)` when no kernel is provably exact for this shape —
/// `Val`-represented columns, non-literal operands, ordered comparison
/// across incomparable type classes (which must error per row, in row
/// order), and arithmetic (whose div-by-zero errors are likewise
/// row-ordered) all take the per-row fallback.
fn cmp_kernel(
    left: &BoundExpr,
    op: BinaryOp,
    right: &BoundExpr,
    batch: &Batch,
    sel: &[u32],
) -> Result<Option<Vec<Tri>>> {
    use BinaryOp::*;
    if !matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq) {
        return Ok(None);
    }
    let (c, lit, col_is_left) = match (left, right) {
        (BoundExpr::Column(c), BoundExpr::Literal(v)) => (*c, v, true),
        (BoundExpr::Literal(v), BoundExpr::Column(c)) => (*c, v, false),
        _ => return Ok(None),
    };
    let col = batch.column(c);
    if lit.is_null() {
        // NULL propagates through every comparison.
        return Ok(Some(sel.iter().map(|_| Tri::N).collect()));
    }
    let build = |ord_of: &dyn Fn(usize) -> Ordering| -> Vec<Tri> {
        sel.iter()
            .map(|&i| {
                let i = i as usize;
                if col.is_null(i) {
                    return Tri::N;
                }
                // `ord_of` compares column-value vs literal; flip for the
                // `literal <op> column` orientation.
                let ord = if col_is_left { ord_of(i) } else { ord_of(i).reverse() };
                let pass = match op {
                    Eq => ord.is_eq(),
                    NotEq => ord.is_ne(),
                    Lt => ord.is_lt(),
                    LtEq => ord.is_le(),
                    Gt => ord.is_gt(),
                    GtEq => ord.is_ge(),
                    _ => false,
                };
                if pass {
                    Tri::T
                } else {
                    Tri::F
                }
            })
            .collect()
    };
    // Same-class comparisons reproduce `Value::cmp` exactly: Int–Int stays
    // exact 64-bit, mixed numerics go through the same `total_fcmp` the
    // scalar path uses.
    Ok(match (col.data(), lit) {
        (ColumnData::Int(v), Value::Int(x)) => Some(build(&|i| v[i].cmp(x))),
        (ColumnData::Int(v), Value::Float(x)) => Some(build(&|i| total_fcmp(v[i] as f64, *x))),
        (ColumnData::Float(v), Value::Int(x)) => Some(build(&|i| total_fcmp(v[i], *x as f64))),
        (ColumnData::Float(v), Value::Float(x)) => Some(build(&|i| total_fcmp(v[i], *x))),
        (ColumnData::Str(v), Value::Str(x)) => Some(build(&|i| (*v[i]).cmp(x.as_str()))),
        (ColumnData::Bool(v), Value::Bool(x)) => Some(build(&|i| v[i].cmp(x))),
        // Cross-class equality never errors and never matches (distinct
        // type ranks compare unequal); ordered cross-class comparison is a
        // per-row type error, so it is NOT kerneled.
        (
            ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Bool(_) | ColumnData::Str(_),
            _,
        ) if matches!(op, Eq | NotEq) => Some(
            sel.iter()
                .map(|&i| {
                    if col.is_null(i as usize) {
                        Tri::N
                    } else if matches!(op, NotEq) {
                        Tri::T
                    } else {
                        Tri::F
                    }
                })
                .collect(),
        ),
        _ => None,
    })
}
