//! Batched (vectorized) execution: the default hot path of the executor.
//!
//! Operators here process column-oriented [`Batch`]es of
//! ~[`pqp_storage::BATCH_SIZE`] rows instead of one boxed tuple at a time:
//! scans decode datum-encoded rows straight into column vectors
//! ([`BatchBuilder::push_encoded`]), filters evaluate selection vectors
//! over columns (`crate::vexpr`), and hash-join probes gather matched rows
//! column-wise — a memcpy per numeric column and a refcount bump per
//! string, never a per-row `Vec<Value>` allocation.
//!
//! ## Equivalence contract
//!
//! For every plan, [`run_root`] returns **byte-identical rows in identical
//! order** to the tuple-at-a-time `exec::run`, under any thread budget. The
//! mechanics:
//!
//! - batches preserve scan order, and every operator consumes/emits batch
//!   lists in order, so row order is the serial order by construction;
//! - operators that are not vectorized (aggregate, sort, distinct, cross
//!   join, index paths, union) materialize their input and delegate to the
//!   tuple helpers in `exec` — same code, same semantics;
//! - expression evaluation defers to `crate::vexpr`, whose kernels are
//!   provably exact or fall back to per-row `BoundExpr::eval`;
//! - parallel paths reuse the `par` module's morsel layout: contiguous
//!   page-range scan partitions and contiguous batch chunks, always merged
//!   in partition order.
//!
//! ## Governor contract
//!
//! The **batch boundary is the governor checkpoint**: scans charge rows per
//! flushed batch, joins charge each output batch's actual
//! [`Batch::mem_bytes`], and every per-batch loop checkpoints between
//! batches — at [`pqp_storage::BATCH_SIZE`] rows the granularity matches
//! the tuple path's `CHARGE_BATCH_ROWS`/`CHECKPOINT_STRIDE` cadence, so
//! budgets trip at the same operator with comparable partial-progress
//! counters. The `join.build`, `storage.scan` and `par.worker` failpoints
//! fire at the same sites as the tuple path.

use crate::bound::BoundExpr;
use crate::error::{failpoint, Result};
use crate::exec::{self, Env};
use crate::par;
use crate::plan::Plan;
use crate::vexpr;
use pqp_obs::governor::CHECKPOINT_STRIDE;
use pqp_obs::QueryCtx;
use pqp_storage::{Batch, BatchBuilder, ColumnData, Row, Table, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An operator's materialized output: batches while the plan stays on the
/// vectorized path, rows once an operator has delegated to the tuple
/// helpers (there is no re-batching — downstream operators then stay
/// row-oriented too, which is exactly the tuple path they delegate to).
pub(crate) enum Out {
    B(Vec<Batch>),
    R(Vec<Row>),
}

impl Out {
    fn len(&self) -> usize {
        match self {
            Out::B(bats) => bats.iter().map(Batch::len).sum(),
            Out::R(rows) => rows.len(),
        }
    }

    fn into_rows(self) -> Vec<Row> {
        match self {
            Out::B(bats) => {
                let mut out = Vec::new();
                for b in &bats {
                    b.append_rows(&mut out);
                }
                out
            }
            Out::R(rows) => rows,
        }
    }
}

/// Execute a plan on the batched path, materializing all rows. The batched
/// counterpart of `exec::run` — byte-identical output, same spans, same
/// governor checkpoints.
pub(crate) fn run_root(env: &Env, plan: &Plan) -> Result<Vec<Row>> {
    Ok(run_b(env, plan)?.into_rows())
}

/// The recursive workhorse: span + estimate bookkeeping around
/// [`execute_vop`], plus the per-operator governor checkpoint (mirrors
/// `exec::run` exactly so `EXPLAIN ANALYZE` output is path-independent).
pub(crate) fn run_b(env: &Env, plan: &Plan) -> Result<Out> {
    env.ctx.checkpoint()?;
    let _span = pqp_obs::span(exec::op_name(plan));
    if pqp_obs::trace_active() {
        let est = crate::cost::Estimator::new(env.catalog).rows(plan);
        pqp_obs::record("est_rows", est.round() as i64);
    }
    let out = execute_vop(env, plan)?;
    pqp_obs::record("rows_out", out.len());
    Ok(out)
}

fn execute_vop(env: &Env, plan: &Plan) -> Result<Out> {
    let ctx = env.ctx;
    match plan {
        Plan::Empty { .. } => Ok(Out::R(Vec::new())),
        Plan::Scan { table, filter, .. } => {
            pqp_obs::record("table", table.as_str());
            vscan(env, table, filter.as_ref())
        }
        Plan::IndexScan { table, column, key, residual, .. } => {
            pqp_obs::record("table", table.as_str());
            Ok(Out::R(exec::index_scan(env, table, column, key, residual.as_ref())?))
        }
        Plan::IndexJoin { probe, probe_key, table, column, filter, probe_is_left, .. } => {
            let probe_rows = run_b(env, probe)?.into_rows();
            Ok(Out::R(exec::index_join(
                env,
                probe_rows,
                *probe_key,
                table,
                column,
                filter.as_ref(),
                *probe_is_left,
            )?))
        }
        Plan::Filter { input, predicate } => {
            let input = run_b(env, input)?;
            pqp_obs::record("rows_in", input.len());
            match input {
                Out::B(bats) => Ok(Out::B(map_batches(env, bats, |b| filter_one(b, predicate))?)),
                Out::R(rows) => Ok(Out::R(exec::filter_rows(env, rows, predicate)?)),
            }
        }
        Plan::HashJoin { left, right, left_keys, right_keys, .. } => {
            // Same runtime access-path sniffing as the tuple path: an
            // index-nested-loop join is row-oriented by nature, so when it
            // applies the batched path simply takes it as-is.
            if right_keys.len() == 1 {
                if let Some(rows) =
                    exec::try_index_join(env, left, right, left_keys, right_keys, true)?
                {
                    return Ok(Out::R(rows));
                }
                if let Some(rows) =
                    exec::try_index_join(env, right, left, right_keys, left_keys, false)?
                {
                    return Ok(Out::R(rows));
                }
            }
            let l = run_b(env, left)?;
            let r = run_b(env, right)?;
            pqp_obs::record("left_rows", l.len());
            pqp_obs::record("right_rows", r.len());
            match (l, r) {
                (Out::B(lb), Out::B(rb)) => {
                    Ok(Out::B(join_batches(env, lb, rb, left_keys, right_keys)?))
                }
                (l, r) => Ok(Out::R(exec::join_rows(
                    env,
                    l.into_rows(),
                    r.into_rows(),
                    left_keys,
                    right_keys,
                )?)),
            }
        }
        Plan::CrossJoin { left, right, .. } => {
            let l = run_b(env, left)?.into_rows();
            let r = run_b(env, right)?.into_rows();
            pqp_obs::record("left_rows", l.len());
            pqp_obs::record("right_rows", r.len());
            Ok(Out::R(exec::cross_join_rows(ctx, l, r)?))
        }
        Plan::Project { input, exprs, .. } => match run_b(env, input)? {
            Out::B(bats) => {
                Ok(Out::B(map_batches(env, bats, |b| Ok(Some(vexpr::project_batch(exprs, &b)?)))?))
            }
            Out::R(rows) => Ok(Out::R(exec::project_rows(env, rows, exprs)?)),
        },
        Plan::Aggregate { input, group_by, aggs, .. } => {
            let rows = run_b(env, input)?.into_rows();
            pqp_obs::record("rows_in", rows.len());
            Ok(Out::R(exec::aggregate(rows, group_by, aggs, ctx)?))
        }
        Plan::Distinct { input } => {
            Ok(Out::R(exec::distinct_rows(ctx, run_b(env, input)?.into_rows())?))
        }
        Plan::Sort { input, keys } => {
            let mut rows = run_b(env, input)?.into_rows();
            exec::sort_rows(&mut rows, keys);
            Ok(Out::R(rows))
        }
        Plan::Limit { input, n } => match run_b(env, input)? {
            Out::B(bats) => Ok(Out::B(truncate_batches(bats, *n as usize))),
            Out::R(mut rows) => {
                rows.truncate(*n as usize);
                Ok(Out::R(rows))
            }
        },
        Plan::Union { inputs, all, .. } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(run_b(env, i)?.into_rows());
                ctx.checkpoint()?;
            }
            if !*all {
                let mut seen = HashSet::with_capacity(out.len());
                out.retain(|row| seen.insert(row.clone()));
            }
            Ok(Out::R(out))
        }
        Plan::TopK { base, probes, visible, matching, rank, limit, .. } => {
            // The operator consumes its base through `run_b` itself (batch
            // boundaries are its checkpoint cadence), so this arm only
            // adapts the output shape.
            Ok(Out::R(crate::topk::execute(env, base, probes, *visible, matching, *rank, *limit)?))
        }
    }
}

/// Keep only the first `n` rows of a batch list.
fn truncate_batches(bats: Vec<Batch>, n: usize) -> Vec<Batch> {
    let mut kept = Vec::new();
    let mut total = 0;
    for mut b in bats {
        if total >= n {
            break;
        }
        if total + b.len() > n {
            b.truncate(n - total);
        }
        total += b.len();
        kept.push(b);
    }
    kept
}

// ---------------------------------------------------------------- scan ----

/// Batched base-table scan: the index shortcut and the parallel/serial
/// split mirror `exec::scan`; the heap is read as raw datum-encoded bytes
/// and decoded straight into column vectors.
fn vscan(env: &Env, table: &str, filter: Option<&BoundExpr>) -> Result<Out> {
    let ctx = env.ctx;
    let t = env.catalog.table(table)?;
    let t = t.read();
    if let Some(f) = filter {
        if let Some(out) = exec::scan_index_shortcut(&t, f, ctx)? {
            return Ok(Out::R(out));
        }
    }
    let arity = t.schema().arity();
    if let Some(parts) = env.opts.partitions_for(t.len()) {
        // Morsel unit is a page: at most one partition per page.
        let parts = parts.min(t.page_count());
        if parts >= 2 {
            return Ok(Out::B(scan_partitioned_batched(&t, filter, arity, parts, ctx)?));
        }
    }
    let mut out = Vec::new();
    let mut b = BatchBuilder::new(arity);
    for enc in t.iter_raw() {
        b.push_encoded(enc?)?;
        if b.is_full() {
            flush(&mut b, filter, ctx, &mut out)?;
        }
    }
    flush(&mut b, filter, ctx, &mut out)?;
    Ok(Out::B(out))
}

/// Finish the builder's batch, charge its rows to the governor (the batch
/// boundary is the charge point), apply the pushed-down filter, and keep
/// the batch if any rows survive.
fn flush(
    b: &mut BatchBuilder,
    filter: Option<&BoundExpr>,
    ctx: &QueryCtx,
    out: &mut Vec<Batch>,
) -> Result<()> {
    if b.is_empty() {
        return Ok(());
    }
    let batch = b.finish();
    ctx.charge_rows(batch.len() as u64)?;
    let batch = match filter {
        Some(f) => {
            let sel = vexpr::select_true(f, &batch)?;
            if sel.is_empty() {
                return Ok(());
            }
            if sel.len() == batch.len() {
                batch
            } else {
                batch.gather(&sel)
            }
        }
        None => batch,
    };
    out.push(batch);
    Ok(())
}

/// Parallel partitioned batched scan: one worker per contiguous page range
/// (same morsel layout as `par::scan_partitioned`), partitions merged in
/// page order = serial scan order.
fn scan_partitioned_batched(
    t: &Table,
    filter: Option<&BoundExpr>,
    arity: usize,
    parts: usize,
    ctx: &QueryCtx,
) -> Result<Vec<Batch>> {
    par::count_workers(parts);
    pqp_obs::counter_add("exec.scan.partitions", parts as i64);
    let results: Vec<Result<Vec<Batch>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                s.spawn(move || -> Result<Vec<Batch>> {
                    par::worker_failpoint()?;
                    let mut out = Vec::new();
                    let mut b = BatchBuilder::new(arity);
                    for enc in t.iter_raw_partition(p, parts) {
                        b.push_encoded(enc?)?;
                        if b.is_full() {
                            flush(&mut b, filter, ctx, &mut out)?;
                        }
                    }
                    flush(&mut b, filter, ctx, &mut out)?;
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(par::join_worker).collect()
    });
    let per_part: Vec<Vec<Batch>> = results.into_iter().collect::<Result<_>>()?;
    let sizes: Vec<usize> = per_part.iter().map(|c| c.iter().map(Batch::len).sum()).collect();
    par::record_partitions(&sizes);
    Ok(per_part.into_iter().flatten().collect())
}

// ------------------------------------------------------- filter/project ----

fn filter_one(b: Batch, predicate: &BoundExpr) -> Result<Option<Batch>> {
    let sel = vexpr::select_true(predicate, &b)?;
    Ok(if sel.is_empty() {
        None
    } else if sel.len() == b.len() {
        Some(b)
    } else {
        Some(b.gather(&sel))
    })
}

/// Apply a per-batch transform over a batch list, in parallel contiguous
/// chunks when the thread budget and total row count allow (the same
/// threshold and ordered merge as the tuple path's `par` operators), with
/// a governor checkpoint per batch either way.
fn map_batches<F>(env: &Env, bats: Vec<Batch>, f: F) -> Result<Vec<Batch>>
where
    F: Fn(Batch) -> Result<Option<Batch>> + Sync,
{
    let ctx = env.ctx;
    let total: usize = bats.iter().map(Batch::len).sum();
    let Some(parts) = env.opts.partitions_for(total) else {
        let mut out = Vec::new();
        for b in bats {
            ctx.checkpoint()?;
            if let Some(nb) = f(b)? {
                out.push(nb);
            }
        }
        return Ok(out);
    };
    let chunks = chunk_batches(bats, parts);
    par::count_workers(chunks.len());
    let f = &f;
    let results: Vec<Result<Vec<Batch>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Batch>> {
                    par::worker_failpoint()?;
                    let mut out = Vec::new();
                    for b in chunk {
                        ctx.checkpoint()?;
                        if let Some(nb) = f(b)? {
                            out.push(nb);
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(par::join_worker).collect()
    });
    let per_chunk: Vec<Vec<Batch>> = results.into_iter().collect::<Result<_>>()?;
    let sizes: Vec<usize> = per_chunk.iter().map(|c| c.iter().map(Batch::len).sum()).collect();
    par::record_partitions(&sizes);
    Ok(per_chunk.into_iter().flatten().collect())
}

/// Split a batch list into at most `parts` contiguous chunks of roughly
/// equal row counts, preserving order across the concatenation.
fn chunk_batches(bats: Vec<Batch>, parts: usize) -> Vec<Vec<Batch>> {
    let total: usize = bats.iter().map(Batch::len).sum();
    let target = total.div_ceil(parts.max(1)).max(1);
    let mut chunks = Vec::with_capacity(parts);
    let mut cur = Vec::new();
    let mut cur_rows = 0;
    for b in bats {
        cur_rows += b.len();
        cur.push(b);
        if cur_rows >= target && chunks.len() + 1 < parts {
            chunks.push(std::mem::take(&mut cur));
            cur_rows = 0;
        }
    }
    if !cur.is_empty() || chunks.is_empty() {
        chunks.push(cur);
    }
    chunks
}

// ---------------------------------------------------------------- join ----

/// Multiplicative hasher for the typed join maps. std's SipHash buys
/// flood-resistance this engine doesn't need from its own heap pages, at
/// several times the cost per short fixed-size key; match order — and hence
/// output — is independent of the hash function, so this is invisible to
/// the equivalence contract.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut last = 0u64;
        for &b in chunks.remainder() {
            last = (last << 8) | b as u64;
        }
        self.add(last ^ bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K> = HashMap<K, Vec<u32>, std::hash::BuildHasherDefault<FxHasher>>;

/// The build side's hash table: build-row indices per key, match lists in
/// build-insertion order. Single-column `Int`/`Str` keys get dedicated maps
/// (no per-probe `Vec<Value>` allocation); everything else — multi-column
/// keys, `Val`-represented columns, and numeric columns of *different*
/// representations on the two sides (where `Int(5) = Float(5.0)` must
/// match, as `Value` equality says) — uses the same `Vec<Value>` keys as
/// the tuple join.
enum JoinMap {
    Int(FxMap<i64>),
    Str(FxMap<Arc<str>>),
    Val(HashMap<Vec<Value>, Vec<u32>>),
}

/// Batched hash join. Build side = the smaller side, concatenated into one
/// batch on the coordinator; probe side streams batch-by-batch (parallel in
/// contiguous chunks when the budget allows), gathering matched rows
/// column-wise. Emission order is probe order then build-insertion order —
/// the serial tuple join's order exactly.
fn join_batches(
    env: &Env,
    lbats: Vec<Batch>,
    rbats: Vec<Batch>,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Vec<Batch>> {
    failpoint("join.build")?;
    let ctx = env.ctx;
    let ltotal: usize = lbats.iter().map(Batch::len).sum();
    let rtotal: usize = rbats.iter().map(Batch::len).sum();
    // Build on the smaller side; output column order is always left ++ right.
    let build_left = ltotal <= rtotal;
    let (build_bats, probe_bats, build_keys, probe_keys) = if build_left {
        (lbats, rbats, left_keys, right_keys)
    } else {
        (rbats, lbats, right_keys, left_keys)
    };
    let build = Batch::concat(build_bats);
    if build.is_empty() {
        return Ok(Vec::new());
    }
    let map = build_join_map(&build, build_keys, &probe_bats, probe_keys, ctx)?;

    let Some(parts) = env.opts.partitions_for(ltotal + rtotal) else {
        let mut out = Vec::new();
        for pb in probe_bats {
            ctx.checkpoint()?;
            let (psel, bsel) = probe_one(&pb, probe_keys, &map);
            if psel.is_empty() {
                continue;
            }
            let joined = splice(&build, &pb, &psel, &bsel, build_left);
            ctx.charge_mem(joined.mem_bytes())?;
            out.push(joined);
        }
        return Ok(out);
    };

    // Parallel probe: contiguous batch chunks merged in chunk order. All
    // observability happens on the coordinator (fields are thread-local).
    pqp_obs::record("strategy", "parallel_hash_join");
    pqp_obs::record("build_rows", build.len());
    let chunks = chunk_batches(probe_bats, parts);
    par::count_workers(chunks.len());
    let (map, build) = (&map, &build);
    let results: Vec<Result<Vec<Batch>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || -> Result<Vec<Batch>> {
                    par::worker_failpoint()?;
                    let mut out = Vec::new();
                    for pb in chunk {
                        ctx.checkpoint()?;
                        let (psel, bsel) = probe_one(&pb, probe_keys, map);
                        if psel.is_empty() {
                            continue;
                        }
                        let joined = splice(build, &pb, &psel, &bsel, build_left);
                        ctx.charge_mem(joined.mem_bytes())?;
                        out.push(joined);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(par::join_worker).collect()
    });
    let per_chunk: Vec<Vec<Batch>> = results.into_iter().collect::<Result<_>>()?;
    let sizes: Vec<usize> = per_chunk.iter().map(|c| c.iter().map(Batch::len).sum()).collect();
    par::record_partitions(&sizes);
    Ok(per_chunk.into_iter().flatten().collect())
}

/// Build the hash table over the (concatenated) build batch. The typed
/// `Int`/`Str` maps apply only when the single key column has that typed
/// representation on the build side **and on every probe batch** — a
/// `Float` (or demoted `Val`) probe column must go through `Value` keys so
/// cross-representation numeric equality matches the tuple join.
fn build_join_map(
    build: &Batch,
    build_keys: &[usize],
    probe_bats: &[Batch],
    probe_keys: &[usize],
    ctx: &QueryCtx,
) -> Result<JoinMap> {
    if build_keys.len() == 1 {
        let bcol = build.column(build_keys[0]);
        let probe_all = |want: fn(&ColumnData) -> bool| {
            probe_bats.iter().all(|b| want(b.column(probe_keys[0]).data()))
        };
        match bcol.data() {
            ColumnData::Int(v) if probe_all(|d| matches!(d, ColumnData::Int(_))) => {
                let mut m: FxMap<i64> =
                    FxMap::with_capacity_and_hasher(v.len(), Default::default());
                for (i, &x) in v.iter().enumerate() {
                    if i & (CHECKPOINT_STRIDE - 1) == 0 {
                        ctx.checkpoint()?;
                    }
                    if bcol.is_null(i) {
                        continue; // SQL equi-join semantics: NULL never matches.
                    }
                    m.entry(x).or_default().push(i as u32);
                }
                return Ok(JoinMap::Int(m));
            }
            ColumnData::Str(v) if probe_all(|d| matches!(d, ColumnData::Str(_))) => {
                let mut m: FxMap<Arc<str>> =
                    FxMap::with_capacity_and_hasher(v.len(), Default::default());
                for (i, x) in v.iter().enumerate() {
                    if i & (CHECKPOINT_STRIDE - 1) == 0 {
                        ctx.checkpoint()?;
                    }
                    if bcol.is_null(i) {
                        continue;
                    }
                    m.entry(x.clone()).or_default().push(i as u32);
                }
                return Ok(JoinMap::Str(m));
            }
            _ => {}
        }
    }
    let mut m: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(build.len());
    for i in 0..build.len() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        if let Some(k) = key_at(build, build_keys, i) {
            m.entry(k).or_default().push(i as u32);
        }
    }
    Ok(JoinMap::Val(m))
}

/// The join key of row `i`, or `None` if any key column is NULL.
fn key_at(b: &Batch, keys: &[usize], i: usize) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let c = b.column(k);
        if c.is_null(i) {
            return None;
        }
        out.push(c.value(i));
    }
    Some(out)
}

/// Probe one batch against the build map, producing parallel selection
/// vectors: `psel[j]` is the probe row and `bsel[j]` the matching build row
/// of output row `j`.
fn probe_one(pb: &Batch, probe_keys: &[usize], map: &JoinMap) -> (Vec<u32>, Vec<u32>) {
    let mut psel = Vec::new();
    let mut bsel = Vec::new();
    match map {
        JoinMap::Int(m) => {
            let c = pb.column(probe_keys[0]);
            if let ColumnData::Int(v) = c.data() {
                for (i, x) in v.iter().enumerate() {
                    if c.is_null(i) {
                        continue;
                    }
                    if let Some(matches) = m.get(x) {
                        psel.extend(std::iter::repeat_n(i as u32, matches.len()));
                        bsel.extend_from_slice(matches);
                    }
                }
            }
        }
        JoinMap::Str(m) => {
            let c = pb.column(probe_keys[0]);
            if let ColumnData::Str(v) = c.data() {
                for (i, x) in v.iter().enumerate() {
                    if c.is_null(i) {
                        continue;
                    }
                    if let Some(matches) = m.get(x) {
                        psel.extend(std::iter::repeat_n(i as u32, matches.len()));
                        bsel.extend_from_slice(matches);
                    }
                }
            }
        }
        JoinMap::Val(m) => {
            for i in 0..pb.len() {
                let Some(k) = key_at(pb, probe_keys, i) else {
                    continue;
                };
                if let Some(matches) = m.get(&k) {
                    psel.extend(std::iter::repeat_n(i as u32, matches.len()));
                    bsel.extend_from_slice(matches);
                }
            }
        }
    }
    (psel, bsel)
}

/// Assemble a join output batch: gather both sides by their selection
/// vectors and splice the columns in the engine's fixed `left ++ right`
/// order.
fn splice(build: &Batch, pb: &Batch, psel: &[u32], bsel: &[u32], build_left: bool) -> Batch {
    let bg = build.gather(bsel);
    let pg = pb.gather(psel);
    let (mut cols, tail) = if build_left {
        (bg.into_columns(), pg.into_columns())
    } else {
        (pg.into_columns(), bg.into_columns())
    };
    cols.extend(tail);
    Batch::from_columns(cols)
}
