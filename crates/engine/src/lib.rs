//! # pqp-engine
//!
//! The relational query engine of the `pqp` workspace: the substitute for
//! the Oracle 9i substrate the paper's prototype ran on.
//!
//! Pipeline: `parse → OR-expansion rewrite → plan (bind + push down + join
//! order) → execute`. See [`rewrite`] for why OR-expansion matters to the
//! reproduction, and [`naive`] for the differential-testing oracle.
//!
//! Execution is serial by default; pass an [`ExecOptions`] thread budget to
//! [`Database::run_plan_with`] for intra-query parallelism (partitioned
//! scans, filters, projections and hash joins — see the parallelism notes
//! in [`exec`]). Parallel execution preserves the serial row order exactly.
//!
//! ```
//! use pqp_engine::{Database, ExecOptions};
//! use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .create_table(
//!         TableSchema::new(
//!             "MOVIE",
//!             vec![
//!                 ColumnDef::new("mid", DataType::Int),
//!                 ColumnDef::new("title", DataType::Str),
//!             ],
//!         )
//!         .with_primary_key(&["mid"]),
//!     )
//!     .unwrap();
//! {
//!     let movie = catalog.table("MOVIE").unwrap();
//!     let mut movie = movie.write();
//!     movie.insert(vec![1.into(), "Alien".into()]).unwrap();
//!     movie.insert(vec![2.into(), "Brazil".into()]).unwrap();
//! }
//! let db = Database::new(catalog);
//!
//! // Parse → plan → execute; plans are reusable and thread-safe.
//! let query = pqp_sql::parse_query("select MV.title from MOVIE MV where MV.mid = 2").unwrap();
//! let plan = db.plan(&query).unwrap();
//! let serial = db.run_plan(&plan).unwrap();
//! assert_eq!(serial.rows, vec![vec!["Brazil".into()]]);
//!
//! // A thread budget never changes the answer: ordered partition merge.
//! let parallel = db.run_plan_with(&plan, &ExecOptions::with_threads(4)).unwrap();
//! assert_eq!(parallel.rows, serial.rows);
//! ```

pub mod aggregate;
pub mod bound;
pub mod cost;
pub mod ddl;
pub mod error;
pub mod exec;
pub mod naive;
mod par;
pub mod plan;
pub mod planner;
pub mod rewrite;
pub mod topk;
pub mod types;
mod vexec;
mod vexpr;

pub use cost::Estimator;
pub use error::{EngineError, Result};
pub use exec::{ExecOptions, DEFAULT_MIN_PARALLEL_ROWS};
pub use types::{OutputColumn, OutputSchema, ResultSet};

use pqp_obs::QueryCtx;
use pqp_sql::ast::Query;
use pqp_storage::Catalog;

/// A database: a catalog plus the query pipeline.
pub struct Database {
    catalog: Catalog,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Database");
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.table(&name) {
                d.field(&name, &t.read().len());
            }
        }
        d.finish()
    }
}

impl Database {
    /// Wrap a catalog.
    pub fn new(catalog: Catalog) -> Database {
        Database { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (loading data, creating tables).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parse, plan and execute a SQL string.
    pub fn run(&self, sql: &str) -> Result<ResultSet> {
        let q = pqp_sql::parse_query(sql)?;
        self.run_query(&q)
    }

    /// Parse and execute any statement: DDL, DML or a query.
    pub fn execute(&mut self, sql: &str) -> Result<ddl::StatementResult> {
        let stmt = pqp_sql::parse_statement(sql)?;
        match &stmt {
            pqp_sql::Statement::Query(q) => Ok(ddl::StatementResult::Rows(self.run_query(q)?)),
            other => ddl::execute_statement(other, &mut self.catalog),
        }
    }

    /// Plan and execute a parsed query.
    pub fn run_query(&self, q: &Query) -> Result<ResultSet> {
        let plan = self.plan(q)?;
        self.run_plan(&plan)
    }

    /// Execute an already-planned query serially.
    ///
    /// This is the plan-reuse entry point: a plan produced by
    /// [`Database::plan`] is immutable and can be executed any number of
    /// times (and from any thread) as long as the referenced tables still
    /// exist — the serving layer's personalized-plan cache relies on it.
    pub fn run_plan(&self, plan: &plan::Plan) -> Result<ResultSet> {
        self.run_plan_with(plan, &ExecOptions::default())
    }

    /// Execute an already-planned query under an [`ExecOptions`] thread
    /// budget. Parallel execution merges partitions in partition order, so
    /// the result is row-for-row identical to [`Database::run_plan`] for
    /// any budget (serial fast path when `threads <= 1` or inputs are
    /// small).
    pub fn run_plan_with(&self, plan: &plan::Plan, exec: &ExecOptions) -> Result<ResultSet> {
        self.run_plan_ctx(plan, exec, &QueryCtx::unlimited())
    }

    /// Execute an already-planned query under a thread budget **and** a
    /// query-governor context ([`pqp_obs::QueryCtx`]): operators check the
    /// context's deadline / rows-scanned / memory budget cooperatively at
    /// loop boundaries and abort with
    /// [`EngineError::Budget`] (partial-progress
    /// counters included) when it trips. Parallel workers share the same
    /// context, so one worker tripping stops the others at their next
    /// checkpoint — the scope joins every thread either way.
    pub fn run_plan_ctx(
        &self,
        plan: &plan::Plan,
        exec: &ExecOptions,
        ctx: &QueryCtx,
    ) -> Result<ResultSet> {
        let _span = pqp_obs::span("execute");
        let rows = exec::execute_ctx(plan, &self.catalog, exec, ctx)?;
        pqp_obs::record("result_rows", rows.len());
        let columns = plan.schema().columns.iter().map(|c| c.name.clone()).collect();
        Ok(ResultSet { columns, rows })
    }

    /// Plan and execute a parsed query under an [`ExecOptions`] thread
    /// budget.
    pub fn run_query_with(&self, q: &Query, exec: &ExecOptions) -> Result<ResultSet> {
        let plan = self.plan(q)?;
        self.run_plan_with(&plan, exec)
    }

    /// Produce the optimized plan for a query (OR-expansion + planning).
    pub fn plan(&self, q: &Query) -> Result<plan::Plan> {
        let _span = pqp_obs::span("plan");
        let rewritten = rewrite::or_expand(q, &self.catalog);
        planner::Planner::new(&self.catalog).plan_query(&rewritten)
    }

    /// Plan without the OR-expansion rewrite (used by tests and ablations).
    pub fn plan_unexpanded(&self, q: &Query) -> Result<plan::Plan> {
        planner::Planner::new(&self.catalog).plan_query(q)
    }

    /// Plan a native rank execution ([`topk::TopKSpec`]) into a
    /// [`plan::Plan::TopK`] node: the base query and every witness query
    /// are planned through the normal pipeline, then assembled under the
    /// rank operator. The resulting plan executes through the usual
    /// [`Database::run_plan_ctx`] entry points (and is cacheable like any
    /// other plan).
    pub fn plan_topk(&self, spec: &topk::TopKSpec) -> Result<plan::Plan> {
        let _span = pqp_obs::span("plan");
        if spec.probes.len() > topk::MAX_PROBES {
            return Err(EngineError::Bind(format!(
                "native rank supports at most {} preferences, got {}",
                topk::MAX_PROBES,
                spec.probes.len()
            )));
        }
        let base = self.plan(&spec.base)?;
        let arity = base.schema().arity();
        let expected = spec.columns.len() + spec.probes.len();
        if arity != expected {
            return Err(EngineError::Bind(format!(
                "native rank base projects {arity} columns, expected {expected} \
                 ({} visible + {} probes)",
                spec.columns.len(),
                spec.probes.len()
            )));
        }
        let mut probes = Vec::with_capacity(spec.probes.len());
        for p in &spec.probes {
            if !(0.0..=1.0).contains(&p.doi) {
                return Err(EngineError::Bind(format!(
                    "probe degree of interest {} not in [0, 1]",
                    p.doi
                )));
            }
            let source = match &p.source {
                topk::ProbeSource::Literal(v) => plan::TopKProbeSource::Literal(v.clone()),
                topk::ProbeSource::Witness(q) => {
                    let wp = self.plan(q)?;
                    if wp.schema().arity() != 1 {
                        return Err(EngineError::Bind(format!(
                            "native rank witness query must project exactly one column, got {}",
                            wp.schema().arity()
                        )));
                    }
                    plan::TopKProbeSource::Witness(Box::new(wp))
                }
            };
            probes.push(plan::TopKProbe { doi: p.doi, source });
        }
        let mut columns: Vec<OutputColumn> =
            spec.columns.iter().map(|c| OutputColumn::new(None, c)).collect();
        if spec.rank {
            columns.push(OutputColumn::new(None, topk::INTEREST_COLUMN));
        }
        Ok(plan::Plan::TopK {
            base: Box::new(base),
            probes,
            visible: spec.columns.len(),
            matching: spec.matching,
            rank: spec.rank,
            limit: spec.limit,
            schema: OutputSchema::new(columns),
        })
    }

    /// Execute with the naive reference interpreter (no optimization).
    pub fn run_naive(&self, q: &Query) -> Result<ResultSet> {
        naive::naive_execute(q, &self.catalog)
    }

    /// Naive reference execution under a query-governor context — even the
    /// oracle respects deadlines (its cross products are the costliest
    /// thing in the workspace).
    pub fn run_naive_ctx(&self, q: &Query, ctx: &QueryCtx) -> Result<ResultSet> {
        naive::naive_execute_ctx(q, &self.catalog, ctx)
    }

    /// EXPLAIN text for a SQL string, with per-node `est_rows` from the
    /// cost estimator.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = pqp_sql::parse_query(sql)?;
        let plan = self.plan(&q)?;
        Ok(Estimator::new(&self.catalog).explain(&plan))
    }
}
