//! # pqp-engine
//!
//! The relational query engine of the `pqp` workspace: the substitute for
//! the Oracle 9i substrate the paper's prototype ran on.
//!
//! Pipeline: `parse → OR-expansion rewrite → plan (bind + push down + join
//! order) → execute`. See [`rewrite`] for why OR-expansion matters to the
//! reproduction, and [`naive`] for the differential-testing oracle.

pub mod aggregate;
pub mod bound;
pub mod ddl;
pub mod error;
pub mod exec;
pub mod naive;
pub mod plan;
pub mod planner;
pub mod rewrite;
pub mod types;

pub use error::{EngineError, Result};
pub use types::{OutputColumn, OutputSchema, ResultSet};

use pqp_sql::ast::Query;
use pqp_storage::Catalog;

/// A database: a catalog plus the query pipeline.
pub struct Database {
    catalog: Catalog,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Database");
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.table(&name) {
                d.field(&name, &t.read().len());
            }
        }
        d.finish()
    }
}

impl Database {
    /// Wrap a catalog.
    pub fn new(catalog: Catalog) -> Database {
        Database { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (loading data, creating tables).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parse, plan and execute a SQL string.
    pub fn run(&self, sql: &str) -> Result<ResultSet> {
        let q = pqp_sql::parse_query(sql)?;
        self.run_query(&q)
    }

    /// Parse and execute any statement: DDL, DML or a query.
    pub fn execute(&mut self, sql: &str) -> Result<ddl::StatementResult> {
        let stmt = pqp_sql::parse_statement(sql)?;
        match &stmt {
            pqp_sql::Statement::Query(q) => Ok(ddl::StatementResult::Rows(self.run_query(q)?)),
            other => ddl::execute_statement(other, &mut self.catalog),
        }
    }

    /// Plan and execute a parsed query.
    pub fn run_query(&self, q: &Query) -> Result<ResultSet> {
        let plan = self.plan(q)?;
        self.run_plan(&plan)
    }

    /// Execute an already-planned query.
    ///
    /// This is the plan-reuse entry point: a plan produced by
    /// [`Database::plan`] is immutable and can be executed any number of
    /// times (and from any thread) as long as the referenced tables still
    /// exist — the serving layer's personalized-plan cache relies on it.
    pub fn run_plan(&self, plan: &plan::Plan) -> Result<ResultSet> {
        let _span = pqp_obs::span("execute");
        let rows = exec::execute(plan, &self.catalog)?;
        pqp_obs::record("result_rows", rows.len());
        let columns = plan.schema().columns.iter().map(|c| c.name.clone()).collect();
        Ok(ResultSet { columns, rows })
    }

    /// Produce the optimized plan for a query (OR-expansion + planning).
    pub fn plan(&self, q: &Query) -> Result<plan::Plan> {
        let _span = pqp_obs::span("plan");
        let rewritten = rewrite::or_expand(q, &self.catalog);
        planner::Planner::new(&self.catalog).plan_query(&rewritten)
    }

    /// Plan without the OR-expansion rewrite (used by tests and ablations).
    pub fn plan_unexpanded(&self, q: &Query) -> Result<plan::Plan> {
        planner::Planner::new(&self.catalog).plan_query(q)
    }

    /// Execute with the naive reference interpreter (no optimization).
    pub fn run_naive(&self, q: &Query) -> Result<ResultSet> {
        naive::naive_execute(q, &self.catalog)
    }

    /// EXPLAIN text for a SQL string.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = pqp_sql::parse_query(sql)?;
        Ok(self.plan(&q)?.explain())
    }
}
