//! OR-expansion: the query rewrite that makes the paper's SQ approach
//! executable at honest cost.
//!
//! An SQ-personalized query (paper §6) has the shape
//!
//! ```sql
//! SELECT DISTINCT p FROM f1, ..., fn
//! WHERE core-conjuncts AND (branch1 OR branch2 OR ...)
//! ```
//!
//! where each branch references only a subset of the FROM factors, and some
//! factors appear *only* inside branches. Planning that directly would cross
//! product those factors. Like commercial optimizers (Oracle's OR-expansion
//! transform), we rewrite into a `UNION` (duplicate-eliminating) of one
//! query per branch, dropping from each branch's FROM any base table it does
//! not reference.
//!
//! Soundness:
//! - the rewrite only fires on `SELECT DISTINCT` blocks without grouping, so
//!   duplicate multiplicity cannot matter;
//! - a dropped table multiplies rows without contributing columns, which is
//!   invisible under DISTINCT — *unless it is empty*, in which case the
//!   original result is empty; branches dropping an empty table are removed
//!   (and if all branches vanish, an `Empty`-producing select remains).

use pqp_sql::ast::*;
use pqp_storage::{Catalog, Value};

/// Recursively apply OR-expansion to every select block of the query.
pub fn or_expand(q: &Query, catalog: &Catalog) -> Query {
    Query { body: expand_set_expr(&q.body, catalog), order_by: q.order_by.clone(), limit: q.limit }
}

fn expand_set_expr(s: &SetExpr, catalog: &Catalog) -> SetExpr {
    match s {
        SetExpr::Union { left, right, all } => SetExpr::Union {
            left: Box::new(expand_set_expr(left, catalog)),
            right: Box::new(expand_set_expr(right, catalog)),
            all: *all,
        },
        SetExpr::Select(sel) => expand_select(sel, catalog),
    }
}

fn expand_select(sel: &Select, catalog: &Catalog) -> SetExpr {
    // First, recurse into derived tables.
    let mut sel = sel.clone();
    for f in &mut sel.from {
        if let TableFactor::Derived { query, .. } = f {
            **query = or_expand(query, catalog);
        }
    }

    if !sel.distinct || !sel.group_by.is_empty() || sel.having.is_some() {
        return SetExpr::Select(Box::new(sel));
    }

    // General unreferenced-table elimination under DISTINCT (independent of
    // any disjunction): a base table referenced nowhere only multiplies
    // rows, which DISTINCT erases — unless it is empty, which empties the
    // whole query.
    if !sel.projection.iter().any(|i| matches!(i, SelectItem::Wildcard))
        && !select_has_unqualified(&sel)
    {
        let mut needed: Vec<String> = Vec::new();
        for item in &sel.projection {
            if let SelectItem::Expr { expr, .. } = item {
                expr.referenced_qualifiers(&mut needed);
            }
        }
        if let Some(w) = &sel.selection {
            w.referenced_qualifiers(&mut needed);
        }
        let mut empty_dropped = false;
        sel.from.retain(|f| {
            if needed.iter().any(|q| q.eq_ignore_ascii_case(f.binding_name())) {
                return true;
            }
            match f {
                TableFactor::Table { name, .. } => match catalog.table(name) {
                    Ok(t) => {
                        if t.read().is_empty() {
                            empty_dropped = true;
                        }
                        false
                    }
                    Err(_) => true, // let the planner report the bind error
                },
                TableFactor::Derived { .. } => true,
            }
        });
        if empty_dropped {
            // A cross product with an empty table empties the whole result.
            sel.selection = Some(Expr::Literal(Value::Bool(false)));
            return SetExpr::Select(Box::new(sel));
        }
    }

    let Some(selection) = sel.selection.clone() else {
        return SetExpr::Select(Box::new(sel));
    };

    let conjuncts: Vec<Expr> = selection.conjuncts().into_iter().cloned().collect();

    // Find the first conjunct that is a disjunction worth expanding: either
    // expansion lets some branch drop a FROM factor, or the disjuncts hide
    // join predicates (column = column across factors) that the planner
    // could only see as a post-cross-product filter.
    let mut chosen: Option<usize> = None;
    for (i, c) in conjuncts.iter().enumerate() {
        let disjuncts = c.disjuncts();
        if disjuncts.len() < 2 {
            continue;
        }
        if expansion_enables_elimination(&sel, &conjuncts, i)
            || disjuncts.iter().any(|d| contains_join_predicate(d))
        {
            chosen = Some(i);
            break;
        }
    }
    let Some(idx) = chosen else {
        return SetExpr::Select(Box::new(sel));
    };

    let disjuncts: Vec<Expr> = conjuncts[idx].disjuncts().into_iter().cloned().collect();
    let core: Vec<Expr> =
        conjuncts.iter().enumerate().filter(|(i, _)| *i != idx).map(|(_, c)| c.clone()).collect();

    let mut branches: Vec<SetExpr> = Vec::new();
    for d in &disjuncts {
        // Factors needed by this branch: projection + core conjuncts + d.
        let mut needed: Vec<String> = Vec::new();
        for item in &sel.projection {
            if let SelectItem::Expr { expr, .. } = item {
                expr.referenced_qualifiers(&mut needed);
            }
        }
        for c in &core {
            c.referenced_qualifiers(&mut needed);
        }
        d.referenced_qualifiers(&mut needed);
        // Unqualified references or wildcards force keeping everything.
        let keep_all = sel.projection.iter().any(|i| matches!(i, SelectItem::Wildcard))
            || has_unqualified(&sel, &core, d);

        let mut from = Vec::new();
        let mut dropped_empty = false;
        for f in &sel.from {
            let name = f.binding_name();
            let needed_here = keep_all || needed.iter().any(|q| q.eq_ignore_ascii_case(name));
            if needed_here {
                from.push(f.clone());
                continue;
            }
            match f {
                TableFactor::Table { name: tname, .. } => {
                    match catalog.table(tname) {
                        Ok(t) => {
                            if t.read().is_empty() {
                                // Cross product with an empty table: the
                                // whole branch (indeed the whole query)
                                // yields nothing.
                                dropped_empty = true;
                            }
                        }
                        // Unknown table: keep it so the planner reports the
                        // bind error instead of silently changing semantics.
                        Err(_) => from.push(f.clone()),
                    }
                }
                // Derived tables are never dropped (emptiness unknown).
                TableFactor::Derived { .. } => from.push(f.clone()),
            }
        }
        if dropped_empty {
            continue;
        }
        let mut branch_conjs = core.clone();
        branch_conjs.push(d.clone());
        let branch = Select {
            distinct: true,
            projection: sel.projection.clone(),
            from,
            selection: pqp_sql::builder::and_all(branch_conjs),
            group_by: Vec::new(),
            having: None,
        };
        // A branch may itself still contain an expandable disjunction.
        branches.push(expand_select(&branch, catalog));
    }

    match branches.into_iter().reduce(|l, r| SetExpr::Union {
        left: Box::new(l),
        right: Box::new(r),
        all: false,
    }) {
        Some(b) => b,
        None => {
            // Every branch crossed an empty table: the query is empty.
            let mut empty = sel.clone();
            empty.selection = Some(Expr::Literal(Value::Bool(false)));
            SetExpr::Select(Box::new(empty))
        }
    }
}

/// Whether expanding conjunct `idx` lets at least one branch drop at least
/// one FROM factor.
fn expansion_enables_elimination(sel: &Select, conjuncts: &[Expr], idx: usize) -> bool {
    let mut outside: Vec<String> = Vec::new();
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            expr.referenced_qualifiers(&mut outside);
        }
    }
    for (i, c) in conjuncts.iter().enumerate() {
        if i != idx {
            c.referenced_qualifiers(&mut outside);
        }
    }
    for d in conjuncts[idx].disjuncts() {
        let mut branch_refs = outside.clone();
        d.referenced_qualifiers(&mut branch_refs);
        let droppable = sel
            .from
            .iter()
            .any(|f| !branch_refs.iter().any(|q| q.eq_ignore_ascii_case(f.binding_name())));
        if droppable {
            return true;
        }
    }
    false
}

/// Whether an expression contains an equality between columns of two
/// different qualifiers — a join predicate the planner can only exploit when
/// it sits at the top level of a conjunction.
fn contains_join_predicate(e: &Expr) -> bool {
    match e {
        Expr::Binary { left, op: BinaryOp::Eq, right } => {
            if let (
                Expr::Column { qualifier: Some(a), .. },
                Expr::Column { qualifier: Some(b), .. },
            ) = (&**left, &**right)
            {
                return !a.eq_ignore_ascii_case(b);
            }
            false
        }
        Expr::Binary { left, right, .. } => {
            contains_join_predicate(left) || contains_join_predicate(right)
        }
        Expr::Not(i) => contains_join_predicate(i),
        _ => false,
    }
}

/// Whether any projection or selection expression uses an unqualified column
/// (which would make table elimination unsafe to reason about).
fn select_has_unqualified(sel: &Select) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match e {
            Expr::Column { qualifier: None, .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => expr_has(left) || expr_has(right),
            Expr::Not(i) => expr_has(i),
            Expr::IsNull { expr, .. } => expr_has(expr),
            Expr::InList { expr, list, .. } => expr_has(expr) || list.iter().any(expr_has),
            Expr::Function { args, .. } => args.iter().any(expr_has),
        }
    }
    sel.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_has(expr),
        SelectItem::Wildcard => false,
    }) || sel.selection.as_ref().is_some_and(expr_has)
}

fn has_unqualified(sel: &Select, core: &[Expr], branch: &Expr) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match e {
            Expr::Column { qualifier: None, .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => expr_has(left) || expr_has(right),
            Expr::Not(i) => expr_has(i),
            Expr::IsNull { expr, .. } => expr_has(expr),
            Expr::InList { expr, list, .. } => expr_has(expr) || list.iter().any(expr_has),
            Expr::Function { args, .. } => args.iter().any(expr_has),
        }
    }
    sel.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_has(expr),
        SelectItem::Wildcard => false,
    }) || core.iter().any(expr_has)
        || expr_has(branch)
}
