//! The executor: evaluates a [`Plan`] to a materialized row set.
//!
//! Execution is operator-at-a-time over materialized intermediates — the
//! right trade-off for an in-memory engine whose workloads (the paper's
//! experiments) are join-heavy but small-intermediate. Joins hash the
//! smaller side; grouping and duplicate elimination preserve first-seen
//! order so results are deterministic.
//!
//! By default ([`ExecOptions::batched`]) the hot path — scan, filter,
//! project, hash-join probe, limit — runs column-oriented over
//! [`pqp_storage::Batch`]es of ~[`pqp_storage::BATCH_SIZE`] rows in the
//! `vexec` module, which produces byte-identical rows to the
//! tuple-at-a-time functions in this module (the `PQP_BATCHED=0` escape
//! hatch and the differential tests hold it to that). This module remains
//! the reference semantics: `vexec` falls back to the row helpers here for
//! every operator it does not vectorize.
//!
//! ## Intra-query parallelism
//!
//! [`execute_with`] accepts an [`ExecOptions`] thread budget. When
//! `threads > 1` and an operator's input is at least
//! [`ExecOptions::min_parallel_rows`], table scans, filters, projections and
//! hash joins run partitioned across `std::thread::scope` workers (the
//! private `par` module). Partitions are always merged **in partition
//! order**, so
//! parallel execution preserves the engine's deterministic first-seen
//! ordering contract: for any plan, `execute_with(plan, catalog, opts)`
//! returns byte-identical rows to the serial [`execute`]. Small inputs and
//! `threads <= 1` take the serial fast path and never spawn.
//!
//! ## The query governor
//!
//! [`execute_ctx`] additionally threads a [`QueryCtx`] through every
//! operator. Execution is *cooperative*: each operator checkpoints at its
//! entry, base-table scans charge rows in batches of
//! [`pqp_obs::governor::CHARGE_BATCH_ROWS`], non-scan loops checkpoint
//! every [`pqp_obs::governor::CHECKPOINT_STRIDE`] iterations, and
//! row-materializing operators (joins, cross products, projections) charge
//! an estimated [`pqp_obs::approx_row_bytes`] per output row. A tripped
//! budget aborts the query with [`EngineError::Budget`](crate::EngineError::Budget) carrying
//! partial-progress counters; parallel workers observe the same shared
//! context, so a trip in one worker stops the others at their next
//! checkpoint and the scope joins everything — no leaked threads.

use crate::bound::BoundExpr;
use crate::error::{bind_err, failpoint, Result};
use crate::par;
use crate::plan::Plan;
use pqp_obs::governor::{CHARGE_BATCH_ROWS, CHECKPOINT_STRIDE};
use pqp_obs::{approx_row_bytes, QueryCtx};
use pqp_sql::BinaryOp;
use pqp_storage::{Catalog, Row, Table, Value};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Default serial-fallback threshold: operators with fewer input rows than
/// this stay serial regardless of the thread budget (fan-out overhead beats
/// the win on small inputs, and the paper's selective partial queries are
/// usually below it).
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 4096;

/// Execution options: the intra-query thread budget.
///
/// The default is strictly serial (`threads: 1`), which is also the fast
/// path: with `threads <= 1` no thread is ever spawned and the executor
/// behaves exactly as it did before parallelism existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker-thread budget per parallel operator. `<= 1` means serial.
    pub threads: usize,
    /// Inputs below this row count stay serial even when `threads > 1`.
    pub min_parallel_rows: usize,
    /// Process rows in column-oriented batches (`crate::vexec`) instead of
    /// one boxed tuple at a time. On by default; both paths return
    /// byte-identical rows, so this is a performance escape hatch, not a
    /// semantic switch.
    pub batched: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions { threads: 1, min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS, batched: true }
    }
}

impl ExecOptions {
    /// Strictly serial execution (the default).
    pub fn serial() -> ExecOptions {
        ExecOptions::default()
    }

    /// A budget of `threads` workers with the default serial-fallback
    /// threshold.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions { threads: threads.max(1), ..ExecOptions::default() }
    }

    /// Override the serial-fallback threshold (builder-style).
    pub fn min_parallel_rows(mut self, rows: usize) -> ExecOptions {
        self.min_parallel_rows = rows;
        self
    }

    /// Disable or re-enable batched execution (builder-style).
    pub fn batched(mut self, on: bool) -> ExecOptions {
        self.batched = on;
        self
    }

    /// Read the thread budget from the `PQP_THREADS` environment variable
    /// (serial when unset or unparsable) and the execution mode from
    /// `PQP_BATCHED` (`0`, `false` or `off` select the tuple-at-a-time
    /// path; anything else, including unset, keeps batching on).
    pub fn from_env() -> ExecOptions {
        let threads = std::env::var("PQP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(1);
        let batched = match std::env::var("PQP_BATCHED") {
            Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
            Err(_) => true,
        };
        ExecOptions::with_threads(threads).batched(batched)
    }

    /// Whether any operator may go parallel under this budget.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// The partition count for an operator over `rows` input rows, or
    /// `None` to take the serial fast path.
    pub(crate) fn partitions_for(&self, rows: usize) -> Option<usize> {
        (self.threads > 1 && rows >= self.min_parallel_rows.max(1)).then_some(self.threads)
    }
}

/// Everything an operator needs from its surroundings: the catalog, the
/// thread budget, and the per-query governor context.
pub(crate) struct Env<'a> {
    pub catalog: &'a Catalog,
    pub opts: &'a ExecOptions,
    pub ctx: &'a QueryCtx,
}

/// Execute a plan against a catalog serially, materializing all rows.
///
/// Every operator runs under an observability span named `exec.<op>` with
/// its output cardinality recorded, so a traced run yields per-operator
/// rows and timings (`EXPLAIN ANALYZE`). Untraced runs pay only a
/// thread-local check per operator.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Vec<Row>> {
    execute_with(plan, catalog, &ExecOptions::default())
}

/// Execute a plan under an explicit [`ExecOptions`] thread budget.
///
/// Output is byte-identical to [`execute`] for every plan and budget:
/// parallel operators merge their partitions in partition order
/// (`crate::par`), preserving the deterministic ordering contract.
pub fn execute_with(plan: &Plan, catalog: &Catalog, opts: &ExecOptions) -> Result<Vec<Row>> {
    execute_ctx(plan, catalog, opts, &QueryCtx::unlimited())
}

/// Execute a plan under a thread budget **and** a query-governor context:
/// deadline / rows-scanned / memory limits are checked cooperatively at
/// operator loop boundaries, and an exceeded budget aborts with
/// [`EngineError::Budget`](crate::EngineError::Budget)(crate::EngineError::Budget).
pub fn execute_ctx(
    plan: &Plan,
    catalog: &Catalog,
    opts: &ExecOptions,
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    let env = Env { catalog, opts, ctx };
    if opts.batched {
        crate::vexec::run_root(&env, plan)
    } else {
        run(&env, plan)
    }
}

/// The recursive workhorse: span + estimate bookkeeping around
/// [`execute_op`], plus the per-operator governor checkpoint.
pub(crate) fn run(env: &Env, plan: &Plan) -> Result<Vec<Row>> {
    env.ctx.checkpoint()?;
    let _span = pqp_obs::span(op_name(plan));
    if pqp_obs::trace_active() {
        // Planner estimate alongside the actual rows_out: EXPLAIN ANALYZE
        // consumers compute per-operator Q-error from the pair. Only paid
        // when a trace is being collected.
        let est = crate::cost::Estimator::new(env.catalog).rows(plan);
        pqp_obs::record("est_rows", est.round() as i64);
    }
    let rows = execute_op(env, plan)?;
    pqp_obs::record("rows_out", rows.len());
    Ok(rows)
}

pub(crate) fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Empty { .. } => "exec.empty",
        Plan::Scan { .. } => "exec.scan",
        Plan::IndexScan { .. } => "exec.index_scan",
        Plan::Filter { .. } => "exec.filter",
        Plan::HashJoin { .. } => "exec.hash_join",
        Plan::IndexJoin { .. } => "exec.index_join",
        Plan::CrossJoin { .. } => "exec.cross_join",
        Plan::Project { .. } => "exec.project",
        Plan::Aggregate { .. } => "exec.aggregate",
        Plan::Distinct { .. } => "exec.distinct",
        Plan::Sort { .. } => "exec.sort",
        Plan::Limit { .. } => "exec.limit",
        Plan::Union { .. } => "exec.union",
        Plan::TopK { .. } => "exec.topk",
    }
}

fn execute_op(env: &Env, plan: &Plan) -> Result<Vec<Row>> {
    let ctx = env.ctx;
    match plan {
        Plan::Empty { .. } => Ok(Vec::new()),
        Plan::Scan { table, filter, .. } => {
            pqp_obs::record("table", table.as_str());
            scan(env, table, filter.as_ref())
        }
        Plan::IndexScan { table, column, key, residual, .. } => {
            pqp_obs::record("table", table.as_str());
            index_scan(env, table, column, key, residual.as_ref())
        }
        Plan::IndexJoin { probe, probe_key, table, column, filter, probe_is_left, .. } => {
            let probe_rows = run(env, probe)?;
            index_join(env, probe_rows, *probe_key, table, column, filter.as_ref(), *probe_is_left)
        }
        Plan::Filter { input, predicate } => {
            let rows = run(env, input)?;
            pqp_obs::record("rows_in", rows.len());
            filter_rows(env, rows, predicate)
        }
        Plan::HashJoin { left, right, left_keys, right_keys, .. } => {
            // Index-nested-loop when one side is a base-table scan with a
            // hash index on its (single) join column and the other side is
            // small relative to it — the access path that makes selective
            // personalized partials cheap (paper §7, Fig. 10).
            if right_keys.len() == 1 {
                if let Some(rows) = try_index_join(
                    env, left, right, left_keys, right_keys, /*probe_left=*/ true,
                )? {
                    return Ok(rows);
                }
                if let Some(rows) = try_index_join(
                    env, right, left, right_keys, left_keys, /*probe_left=*/ false,
                )? {
                    return Ok(rows);
                }
            }
            let lrows = run(env, left)?;
            let rrows = run(env, right)?;
            pqp_obs::record("left_rows", lrows.len());
            pqp_obs::record("right_rows", rrows.len());
            join_rows(env, lrows, rrows, left_keys, right_keys)
        }
        Plan::CrossJoin { left, right, .. } => {
            let lrows = run(env, left)?;
            let rrows = run(env, right)?;
            pqp_obs::record("left_rows", lrows.len());
            pqp_obs::record("right_rows", rrows.len());
            cross_join_rows(ctx, lrows, rrows)
        }
        Plan::Project { input, exprs, .. } => {
            let rows = run(env, input)?;
            project_rows(env, rows, exprs)
        }
        Plan::Aggregate { input, group_by, aggs, .. } => {
            let rows = run(env, input)?;
            pqp_obs::record("rows_in", rows.len());
            aggregate(rows, group_by, aggs, ctx)
        }
        Plan::Distinct { input } => {
            let rows = run(env, input)?;
            distinct_rows(ctx, rows)
        }
        Plan::Sort { input, keys } => {
            let mut rows = run(env, input)?;
            sort_rows(&mut rows, keys);
            Ok(rows)
        }
        Plan::Limit { input, n } => {
            let mut rows = run(env, input)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        Plan::Union { inputs, all, .. } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(run(env, i)?);
                ctx.checkpoint()?;
            }
            if !*all {
                let mut seen = HashSet::with_capacity(out.len());
                out.retain(|row| seen.insert(row.clone()));
            }
            Ok(out)
        }
        Plan::TopK { base, probes, visible, matching, rank, limit, .. } => {
            crate::topk::execute(env, base, probes, *visible, matching, *rank, *limit)
        }
    }
}

/// Execute a [`Plan::IndexScan`]: an index point lookup plus residual
/// filter, falling back to a full scan (with the reconstructed predicate)
/// when the index was dropped after planning.
pub(crate) fn index_scan(
    env: &Env,
    table: &str,
    column: &str,
    key: &Value,
    residual: Option<&BoundExpr>,
) -> Result<Vec<Row>> {
    let ctx = env.ctx;
    let t = env.catalog.table(table)?;
    let t = t.read();
    match t.index_lookup(column, key) {
        Some(hits) => {
            pqp_obs::record("strategy", "index_scan");
            let mut out = Vec::new();
            let mut pending = 0u64;
            for row in hits? {
                pending += 1;
                if pending == CHARGE_BATCH_ROWS {
                    ctx.charge_rows(pending)?;
                    pending = 0;
                }
                if let Some(f) = residual {
                    if !f.eval_predicate(&row)? {
                        continue;
                    }
                }
                out.push(row);
            }
            ctx.charge_rows(pending)?;
            Ok(out)
        }
        None => {
            // The index was dropped after planning: reconstruct the
            // full pushed-down predicate and fall back to a scan.
            let Some(col) = t.schema().column_index(column) else {
                return bind_err(format!("unknown column `{column}` in `{table}`"));
            };
            let eq = BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(col)),
                op: BinaryOp::Eq,
                right: Box::new(BoundExpr::Literal(key.clone())),
            };
            let pred = match residual {
                Some(r) => BoundExpr::Binary {
                    left: Box::new(eq),
                    op: BinaryOp::And,
                    right: Box::new(r.clone()),
                },
                None => eq,
            };
            drop(t);
            scan(env, table, Some(&pred))
        }
    }
}

/// Serve a filtered scan through a hash index when the pushed-down filter
/// has a `col = literal` conjunct over an indexed column. `Ok(None)` means
/// no such conjunct: the caller falls through to a full heap scan. Shared
/// by the tuple and batched scan paths.
pub(crate) fn scan_index_shortcut(
    t: &Table,
    f: &BoundExpr,
    ctx: &QueryCtx,
) -> Result<Option<Vec<Row>>> {
    for conjunct in split_and(f) {
        let Some((col, value)) = as_eq_literal(conjunct) else {
            continue;
        };
        if value.is_null() {
            continue; // `= NULL` can never be TRUE; fall through to scan
        }
        let name = &t.schema().columns[col].name;
        if let Some(hits) = t.index_lookup(name, value) {
            let mut out = Vec::new();
            let mut pending = 0u64;
            for row in hits? {
                pending += 1;
                if pending == CHARGE_BATCH_ROWS {
                    ctx.charge_rows(pending)?;
                    pending = 0;
                }
                if f.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            ctx.charge_rows(pending)?;
            return Ok(Some(out));
        }
    }
    Ok(None)
}

/// Scan a base table, using a hash index for an equality conjunct of the
/// pushed-down filter when one exists; otherwise a full (possibly
/// partitioned-parallel) heap scan.
pub(crate) fn scan(env: &Env, table: &str, filter: Option<&BoundExpr>) -> Result<Vec<Row>> {
    let ctx = env.ctx;
    let t = env.catalog.table(table)?;
    let t = t.read();
    if let Some(f) = filter {
        if let Some(out) = scan_index_shortcut(&t, f, ctx)? {
            return Ok(out);
        }
    }
    if let Some(parts) = env.opts.partitions_for(t.len()) {
        // Morsel unit is a page: at most one partition per page.
        let parts = parts.min(t.page_count());
        if parts >= 2 {
            return par::scan_partitioned(&t, filter, parts, ctx);
        }
    }
    let mut out = Vec::with_capacity(t.len());
    let mut pending = 0u64;
    for (_, row) in t.iter() {
        let row = row?;
        pending += 1;
        if pending == CHARGE_BATCH_ROWS {
            ctx.charge_rows(pending)?;
            pending = 0;
        }
        match filter {
            Some(f) => {
                if f.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            None => out.push(row),
        }
    }
    ctx.charge_rows(pending)?;
    Ok(out)
}

/// Top-level conjuncts of a bound expression.
pub(crate) fn split_and(e: &BoundExpr) -> Vec<&BoundExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a BoundExpr, out: &mut Vec<&'a BoundExpr>) {
        match e {
            BoundExpr::Binary { left, op: BinaryOp::And, right } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    walk(e, &mut out);
    out
}

/// `col = literal` (either orientation), as (column position, literal).
pub(crate) fn as_eq_literal(e: &BoundExpr) -> Option<(usize, &Value)> {
    let BoundExpr::Binary { left, op: BinaryOp::Eq, right } = e else {
        return None;
    };
    match (&**left, &**right) {
        (BoundExpr::Column(c), BoundExpr::Literal(v)) => Some((*c, v)),
        (BoundExpr::Literal(v), BoundExpr::Column(c)) => Some((*c, v)),
        _ => None,
    }
}

/// Tuple-at-a-time filter over materialized rows, parallel when the budget
/// allows.
pub(crate) fn filter_rows(env: &Env, rows: Vec<Row>, predicate: &BoundExpr) -> Result<Vec<Row>> {
    let ctx = env.ctx;
    if let Some(parts) = env.opts.partitions_for(rows.len()) {
        return par::filter_partitioned(rows, predicate, parts, ctx);
    }
    let mut out = Vec::with_capacity(rows.len() / 2);
    for (i, row) in rows.into_iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        if predicate.eval_predicate(&row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Tuple-at-a-time projection over materialized rows, parallel when the
/// budget allows.
pub(crate) fn project_rows(env: &Env, rows: Vec<Row>, exprs: &[BoundExpr]) -> Result<Vec<Row>> {
    let ctx = env.ctx;
    if let Some(parts) = env.opts.partitions_for(rows.len()) {
        return par::project_partitioned(rows, exprs, parts, ctx);
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.into_iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        let mut projected = Vec::with_capacity(exprs.len());
        for e in exprs {
            projected.push(e.eval(&row)?);
        }
        out.push(projected);
    }
    Ok(out)
}

/// Cartesian product of two materialized sides.
pub(crate) fn cross_join_rows(
    ctx: &QueryCtx,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
) -> Result<Vec<Row>> {
    // Cap the pre-allocation: a huge product should grow lazily (and
    // fail late with partial progress) rather than request the whole
    // worst case up front.
    let cap = lrows.len().saturating_mul(rrows.len()).min(1 << 20);
    let mut out = Vec::with_capacity(cap);
    // The one operator that can explode quadratically: charge
    // memory per output batch so a runaway product trips the budget
    // instead of exhausting the machine.
    let mut pending_mem = 0u64;
    for l in &lrows {
        for r in &rrows {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            pending_mem += approx_row_bytes(row.len());
            out.push(row);
            if out.len() & (CHECKPOINT_STRIDE - 1) == 0 {
                ctx.charge_mem(pending_mem)?;
                pending_mem = 0;
            }
        }
    }
    ctx.charge_mem(pending_mem)?;
    Ok(out)
}

/// Duplicate elimination preserving first-seen order.
pub(crate) fn distinct_rows(ctx: &QueryCtx, rows: Vec<Row>) -> Result<Vec<Row>> {
    let mut seen = HashSet::with_capacity(rows.len());
    let mut out = Vec::new();
    for (i, row) in rows.into_iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    Ok(out)
}

/// In-place multi-key sort by output column positions.
pub(crate) fn sort_rows(rows: &mut [Row], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| {
        for (idx, desc) in keys {
            let ord = a[*idx].cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Index-nested-loop join: execute `probe`, and for each probe row fetch
/// matches from `scan_side` (which must be a base-table scan with an index
/// on its single join column). Returns `None` when the shape or the size
/// heuristic does not apply, or when the table has statistics — for
/// analyzed tables the planner owns the index-join decision
/// ([`Plan::IndexJoin`]); this runtime sniffing only covers un-analyzed
/// tables.
pub(crate) fn try_index_join(
    env: &Env,
    probe: &Plan,
    scan_side: &Plan,
    probe_keys: &[usize],
    scan_keys: &[usize],
    probe_is_left: bool,
) -> Result<Option<Vec<Row>>> {
    let Plan::Scan { table, filter, .. } = scan_side else {
        return Ok(None);
    };
    let t = env.catalog.table(table)?;
    // Resolve the indexed column name and check an index exists.
    let (col_name, table_len) = {
        let t = t.read();
        if t.stats().is_some() {
            return Ok(None);
        }
        let name = t.schema().columns[scan_keys[0]].name.clone();
        if t.index_on(&name).is_none() {
            return Ok(None);
        }
        (name, t.len())
    };
    let probe_rows = run(env, probe)?;
    // Heuristic: probing pays off only when the probe side is small
    // relative to the indexed table (otherwise hashing wins).
    if probe_rows.len() * 4 > table_len {
        // Fall back by handing the already-computed probe rows to a hash
        // join (avoid re-executing the probe subtree).
        let scan_rows = scan(env, table, filter.as_ref())?;
        let rows =
            hash_join_oriented(env, probe_rows, scan_rows, probe_keys, scan_keys, probe_is_left)?;
        return Ok(Some(rows));
    }
    let t = t.read();
    index_probe(env.ctx, &t, &col_name, &probe_rows, probe_keys[0], filter.as_ref(), probe_is_left)
}

/// Execute a planner-chosen [`Plan::IndexJoin`]'s scan side against
/// already-materialized probe rows. Keeps the executor's runtime guard:
/// when the probe side turns out large relative to the table, or the index
/// is missing at runtime, fall back to hashing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_join(
    env: &Env,
    probe_rows: Vec<Row>,
    probe_key: usize,
    table: &str,
    column: &str,
    filter: Option<&BoundExpr>,
    probe_is_left: bool,
) -> Result<Vec<Row>> {
    pqp_obs::record("table", table);
    let tref = env.catalog.table(table)?;
    let t = tref.read();
    let Some(scan_key) = t.schema().column_index(column) else {
        return bind_err(format!("unknown column `{column}` in `{table}`"));
    };
    if t.index_on(column).is_some() && probe_rows.len() * 4 <= t.len() {
        if let Some(rows) =
            index_probe(env.ctx, &t, column, &probe_rows, probe_key, filter, probe_is_left)?
        {
            return Ok(rows);
        }
    }
    drop(t);
    pqp_obs::record("strategy", "hash_fallback");
    let scan_rows = scan(env, table, filter)?;
    hash_join_oriented(env, probe_rows, scan_rows, &[probe_key], &[scan_key], probe_is_left)
}

/// Probe `t`'s hash index on `column` with each probe row's `probe_key`
/// value, assembling output rows in the engine's fixed `left ++ right`
/// column order. Returns `Ok(None)` if the index disappears mid-probe.
fn index_probe(
    ctx: &QueryCtx,
    t: &Table,
    column: &str,
    probe_rows: &[Row],
    probe_key: usize,
    filter: Option<&BoundExpr>,
    probe_is_left: bool,
) -> Result<Option<Vec<Row>>> {
    pqp_obs::record("strategy", "index_nested_loop");
    pqp_obs::record("probe_rows", probe_rows.len());
    let mut out = Vec::new();
    let mut pending = 0u64;
    for (i, prow) in probe_rows.iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        let key = &prow[probe_key];
        if key.is_null() {
            continue;
        }
        let Some(hits) = t.index_lookup(column, key) else {
            return Ok(None);
        };
        for hit in hits? {
            // Index probes read base-table rows: charge them like a scan.
            pending += 1;
            if pending == CHARGE_BATCH_ROWS {
                ctx.charge_rows(pending)?;
                pending = 0;
            }
            if let Some(f) = filter {
                if !f.eval_predicate(&hit)? {
                    continue;
                }
            }
            let mut row;
            if probe_is_left {
                row = prow.clone();
                row.extend(hit);
            } else {
                row = hit;
                row.extend(prow.iter().cloned());
            }
            out.push(row);
        }
    }
    ctx.charge_rows(pending)?;
    Ok(Some(out))
}

/// Hash-join a probe-side and a scan-side row set whose plan-tree
/// orientation is given by `probe_is_left`, producing rows in the engine's
/// fixed `left ++ right` column order either way. The single place that
/// knows how to un-swap a join whose sides were reordered by an access-path
/// decision — both `try_index_join` fallbacks and the parallel join route
/// through it.
fn hash_join_oriented(
    env: &Env,
    probe_rows: Vec<Row>,
    scan_rows: Vec<Row>,
    probe_keys: &[usize],
    scan_keys: &[usize],
    probe_is_left: bool,
) -> Result<Vec<Row>> {
    if probe_is_left {
        join_rows(env, probe_rows, scan_rows, probe_keys, scan_keys)
    } else {
        join_rows(env, scan_rows, probe_rows, scan_keys, probe_keys)
    }
}

/// Join two materialized sides, choosing the partitioned-parallel hash join
/// when the thread budget and input size allow, the serial one otherwise.
/// Both produce identical rows in identical order (probe order, and
/// build-insertion order within one key).
pub(crate) fn join_rows(
    env: &Env,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Vec<Row>> {
    failpoint("join.build")?;
    if let Some(parts) = env.opts.partitions_for(lrows.len() + rrows.len()) {
        return par::hash_join_partitioned(lrows, rrows, left_keys, right_keys, parts, env.ctx);
    }
    hash_join(lrows, rrows, left_keys, right_keys, env.ctx)
}

pub(crate) fn key_of(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let v = &row[k];
        // SQL equi-join semantics: NULL never matches.
        if v.is_null() {
            return None;
        }
        out.push(v.clone());
    }
    Some(out)
}

fn hash_join(
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    left_keys: &[usize],
    right_keys: &[usize],
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    // Build on the smaller side; output column order is always left ++ right.
    let build_left = lrows.len() <= rrows.len();
    let (build, probe, build_keys, probe_keys) = if build_left {
        (&lrows, &rrows, left_keys, right_keys)
    } else {
        (&rrows, &lrows, right_keys, left_keys)
    };
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        if let Some(k) = key_of(row, build_keys) {
            table.entry(k).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    let mut pending_mem = 0u64;
    for (i, prow) in probe.iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.charge_mem(pending_mem)?;
            pending_mem = 0;
        }
        let Some(k) = key_of(prow, probe_keys) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for &bi in matches {
                let brow = &build[bi];
                let (l, r) = if build_left { (brow, prow) } else { (prow, brow) };
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                pending_mem += approx_row_bytes(row.len());
                out.push(row);
            }
        }
    }
    ctx.charge_mem(pending_mem)?;
    Ok(out)
}

pub(crate) fn aggregate(
    rows: Vec<Row>,
    group_by: &[BoundExpr],
    aggs: &[crate::aggregate::AggCall],
    ctx: &QueryCtx,
) -> Result<Vec<Row>> {
    // Group keys in first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<crate::aggregate::AggState>> = HashMap::new();

    if group_by.is_empty() {
        // Global aggregate: exactly one group, present even on empty input.
        let states: Vec<_> = aggs.iter().map(|a| a.new_state()).collect();
        groups.insert(Vec::new(), states);
        order.push(Vec::new());
    }

    for (i, row) in rows.iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        let mut key = Vec::with_capacity(group_by.len());
        for g in group_by {
            key.push(g.eval(row)?);
        }
        let states = match groups.entry(key.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                order.push(key);
                e.insert(aggs.iter().map(|a| a.new_state()).collect())
            }
        };
        for (call, state) in aggs.iter().zip(states.iter_mut()) {
            match &call.arg {
                None => state.update(None)?,
                Some(e) => {
                    let v = e.eval(row)?;
                    state.update(Some(&v))?;
                }
            }
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let Some(states) = groups.remove(&key) else {
            continue; // every ordered key was inserted into `groups`
        };
        let mut row = key;
        for s in &states {
            row.push(s.finish());
        }
        out.push(row);
    }
    Ok(out)
}
