//! A deliberately naive reference executor used as a differential-testing
//! oracle for the planner + executor.
//!
//! It interprets the AST directly: cross product of the FROM clause, filter,
//! group, project — no pushdown, no join ordering, no OR-expansion. Its only
//! virtue is obvious correctness; tests assert that the optimized engine
//! produces the same multiset of rows.

use crate::aggregate::{AggCall, AggFunc};
use crate::bound::eval_binary_scalar;
use crate::error::{bind_err, exec_err, EngineError, Result};
use crate::planner::expr_eq_ci;
use crate::types::{OutputColumn, OutputSchema, ResultSet};
use pqp_obs::governor::CHECKPOINT_STRIDE;
use pqp_obs::{approx_row_bytes, QueryCtx};
use pqp_sql::ast::*;
use pqp_storage::{Catalog, Row, Value};
use std::collections::HashSet;

/// Execute a query with the naive interpreter.
pub fn naive_execute(q: &Query, catalog: &Catalog) -> Result<ResultSet> {
    naive_execute_ctx(q, catalog, &QueryCtx::unlimited())
}

/// Execute a query with the naive interpreter under a query-governor
/// context. The naive engine cooperates at the same loop boundaries as the
/// optimized one: base scans charge rows, the cross product charges memory,
/// and the WHERE/projection/grouping loops checkpoint on a stride — so even
/// the oracle can never hang past a deadline.
pub fn naive_execute_ctx(q: &Query, catalog: &Catalog, ctx: &QueryCtx) -> Result<ResultSet> {
    let (schema, mut rows) = exec_set_expr(&q.body, catalog, ctx)?;
    // ORDER BY: only output columns / aliases / projection expressions.
    if !q.order_by.is_empty() {
        let proj = first_projection(&q.body);
        let mut keys = Vec::new();
        for item in &q.order_by {
            let idx = resolve_order_key(&item.expr, &schema, &proj)?;
            keys.push((idx, item.desc));
        }
        rows.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a[*idx].cmp(&b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = q.limit {
        rows.truncate(n as usize);
    }
    Ok(ResultSet { columns: schema.columns.iter().map(|c| c.name.clone()).collect(), rows })
}

fn resolve_order_key(
    e: &Expr,
    schema: &OutputSchema,
    proj: &[(Option<String>, Expr)],
) -> Result<usize> {
    if let Expr::Column { qualifier, name } = e {
        if let Ok(i) = schema.resolve(qualifier.as_deref(), name) {
            return Ok(i);
        }
    }
    if let Some(i) = proj.iter().position(|(_, p)| expr_eq_ci(p, e)) {
        return Ok(i);
    }
    bind_err(format!("ORDER BY `{e}` does not match any output column"))
}

fn first_projection(s: &SetExpr) -> Vec<(Option<String>, Expr)> {
    match s {
        SetExpr::Select(sel) => sel
            .projection
            .iter()
            .filter_map(|it| match it {
                SelectItem::Expr { expr, alias } => Some((alias.clone(), expr.clone())),
                SelectItem::Wildcard => None,
            })
            .collect(),
        SetExpr::Union { left, .. } => first_projection(left),
    }
}

fn exec_set_expr(
    s: &SetExpr,
    catalog: &Catalog,
    ctx: &QueryCtx,
) -> Result<(OutputSchema, Vec<Row>)> {
    ctx.checkpoint()?;
    match s {
        SetExpr::Select(sel) => exec_select(sel, catalog, ctx),
        SetExpr::Union { left, right, all } => {
            let (ls, mut lrows) = exec_set_expr(left, catalog, ctx)?;
            let (rs, rrows) = exec_set_expr(right, catalog, ctx)?;
            if ls.arity() != rs.arity() {
                return bind_err("UNION arms have different arities");
            }
            lrows.extend(rrows);
            if !*all {
                let mut seen = HashSet::new();
                lrows.retain(|r| seen.insert(r.clone()));
            }
            Ok((ls, lrows))
        }
    }
}

fn exec_select(
    sel: &Select,
    catalog: &Catalog,
    ctx: &QueryCtx,
) -> Result<(OutputSchema, Vec<Row>)> {
    // 1. Cross product of the FROM clause.
    let mut schema = OutputSchema::default();
    let mut rows: Vec<Row> = vec![Vec::new()];
    for f in &sel.from {
        let (fs, frows) = match f {
            TableFactor::Table { name, alias } => {
                let t = catalog.table(name)?;
                let t = t.read();
                let binding = alias.as_deref().unwrap_or(name);
                let cols = t
                    .schema()
                    .columns
                    .iter()
                    .map(|c| OutputColumn::new(Some(binding), &c.name))
                    .collect();
                let frows = t.scan()?;
                ctx.charge_rows(frows.len() as u64)?;
                (OutputSchema::new(cols), frows)
            }
            TableFactor::Derived { query, alias } => {
                let rs = naive_execute_ctx(query, catalog, ctx)?;
                let cols = rs.columns.iter().map(|c| OutputColumn::new(Some(alias), c)).collect();
                (OutputSchema::new(cols), rs.rows)
            }
        };
        schema = schema.join(&fs);
        // The unoptimized cross product is exactly the blow-up the memory
        // budget exists for: charge every materialized row.
        let mut next = Vec::with_capacity(rows.len() * frows.len().max(1));
        let mut pending_mem = 0u64;
        for r in &rows {
            for fr in &frows {
                let mut row = r.clone();
                row.extend(fr.iter().cloned());
                pending_mem += approx_row_bytes(row.len());
                next.push(row);
                if next.len() & (CHECKPOINT_STRIDE - 1) == 0 {
                    ctx.charge_mem(pending_mem)?;
                    pending_mem = 0;
                }
            }
        }
        ctx.charge_mem(pending_mem)?;
        rows = next;
    }

    // 2. WHERE.
    if let Some(w) = &sel.selection {
        let mut kept = Vec::new();
        for (i, row) in rows.into_iter().enumerate() {
            if i & (CHECKPOINT_STRIDE - 1) == 0 {
                ctx.checkpoint()?;
            }
            if eval(w, &schema, &row)? == Value::Bool(true) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // 3. Aggregation or plain projection.
    let needs_agg = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projection.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        });

    let (out_schema, mut out_rows) = if needs_agg {
        exec_aggregate(sel, &schema, rows, ctx)?
    } else {
        let mut cols = Vec::new();
        let mut items: Vec<&Expr> = Vec::new();
        let mut wildcard_cols: Vec<usize> = Vec::new();
        for item in &sel.projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.columns.iter().enumerate() {
                        cols.push(c.clone());
                        wildcard_cols.push(i);
                        items.push(&Expr::Literal(Value::Null)); // placeholder
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    cols.push(match alias {
                        Some(a) => OutputColumn::new(None, a),
                        None => match expr {
                            Expr::Column { qualifier, name } => {
                                OutputColumn::new(qualifier.as_deref(), name)
                            }
                            other => OutputColumn::new(None, &other.to_string()),
                        },
                    });
                    items.push(expr);
                    wildcard_cols.push(usize::MAX);
                }
            }
        }
        let mut out = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if i & (CHECKPOINT_STRIDE - 1) == 0 {
                ctx.checkpoint()?;
            }
            let mut projected = Vec::with_capacity(items.len());
            for (k, e) in items.iter().enumerate() {
                if wildcard_cols[k] != usize::MAX {
                    projected.push(row[wildcard_cols[k]].clone());
                } else {
                    projected.push(eval(e, &schema, row)?);
                }
            }
            out.push(projected);
        }
        (OutputSchema::new(cols), out)
    };

    // 4. DISTINCT.
    if sel.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|r| seen.insert(r.clone()));
    }
    Ok((out_schema, out_rows))
}

fn exec_aggregate(
    sel: &Select,
    schema: &OutputSchema,
    rows: Vec<Row>,
    ctx: &QueryCtx,
) -> Result<(OutputSchema, Vec<Row>)> {
    // Group rows by the group-by expression values, in first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut buckets: Vec<Vec<Row>> = Vec::new();
    if sel.group_by.is_empty() {
        order.push(Vec::new());
        buckets.push(Vec::new());
    }
    for (i, row) in rows.into_iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            ctx.checkpoint()?;
        }
        let mut key = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            key.push(eval(g, schema, &row)?);
        }
        match order.iter().position(|k| k == &key) {
            Some(i) => buckets[i].push(row),
            None => {
                order.push(key);
                buckets.push(vec![row]);
            }
        }
    }
    if sel.group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        buckets.push(Vec::new());
    }

    let mut cols = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => return bind_err("`*` in aggregate query"),
            SelectItem::Expr { expr, alias } => cols.push(match alias {
                Some(a) => OutputColumn::new(None, a),
                None => match expr {
                    Expr::Column { qualifier, name } => {
                        OutputColumn::new(qualifier.as_deref(), name)
                    }
                    other => OutputColumn::new(None, &other.to_string()),
                },
            }),
        }
    }

    let mut out = Vec::new();
    for (key, bucket) in order.iter().zip(&buckets) {
        // HAVING.
        if let Some(h) = &sel.having {
            if eval_in_group(h, sel, schema, key, bucket)? != Value::Bool(true) {
                continue;
            }
        }
        let mut row = Vec::new();
        for item in &sel.projection {
            let SelectItem::Expr { expr, .. } = item else { unreachable!() };
            row.push(eval_in_group(expr, sel, schema, key, bucket)?);
        }
        out.push(row);
    }
    Ok((OutputSchema::new(cols), out))
}

/// Evaluate an expression in grouped context: group-by expressions resolve
/// to the key; aggregates run over the bucket.
fn eval_in_group(
    e: &Expr,
    sel: &Select,
    schema: &OutputSchema,
    key: &[Value],
    bucket: &[Row],
) -> Result<Value> {
    if let Some(i) = sel.group_by.iter().position(|g| expr_eq_ci(g, e)) {
        return Ok(key[i].clone());
    }
    match e {
        Expr::Function { name, args, wildcard } if pqp_sql::is_aggregate_name(name) => {
            let func = AggFunc::from_name(name)
                .ok_or_else(|| EngineError::Bind(format!("unknown aggregate `{name}`")))?;
            let call = AggCall::new(func, None).unwrap_or(AggCall { func, arg: None });
            let mut state = call.new_state();
            for row in bucket {
                if *wildcard {
                    state.update(None)?;
                } else {
                    if args.len() != 1 {
                        return bind_err(format!("aggregate `{name}` takes one argument"));
                    }
                    let v = eval(&args[0], schema, row)?;
                    state.update(Some(&v))?;
                }
            }
            Ok(state.finish())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { left, op, right } => {
            use pqp_sql::BinaryOp;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let l = eval_in_group(left, sel, schema, key, bucket)?;
                    let r = eval_in_group(right, sel, schema, key, bucket)?;
                    kleene(*op, l, r)
                }
                _ => {
                    let l = eval_in_group(left, sel, schema, key, bucket)?;
                    let r = eval_in_group(right, sel, schema, key, bucket)?;
                    eval_binary_scalar(&l, *op, &r)
                }
            }
        }
        Expr::Not(i) => match eval_in_group(i, sel, schema, key, bucket)? {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => exec_err(format!("NOT on non-boolean `{other}`")),
        },
        Expr::Column { .. } => {
            bind_err(format!("column `{e}` must appear in GROUP BY or inside an aggregate"))
        }
        other => bind_err(format!("unsupported expression in aggregate context: {other}")),
    }
}

/// Evaluate an expression against a row with name resolution at runtime.
fn eval(e: &Expr, schema: &OutputSchema, row: &Row) -> Result<Value> {
    use pqp_sql::BinaryOp;
    match e {
        Expr::Column { qualifier, name } => {
            let i = schema.resolve(qualifier.as_deref(), name).map_err(EngineError::Bind)?;
            Ok(row[i].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And | BinaryOp::Or => {
                let l = eval(left, schema, row)?;
                let r = eval(right, schema, row)?;
                kleene(*op, l, r)
            }
            _ => {
                let l = eval(left, schema, row)?;
                let r = eval(right, schema, row)?;
                eval_binary_scalar(&l, *op, &r)
            }
        },
        Expr::Not(inner) => match eval(inner, schema, row)? {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => exec_err(format!("NOT on non-boolean `{other}`")),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, schema, row)?;
                if w.is_null() {
                    saw_null = true;
                } else if w == v {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(*negated))
        }
        Expr::Function { name, .. } => {
            bind_err(format!("aggregate or unknown function `{name}` not allowed here"))
        }
    }
}

fn kleene(op: pqp_sql::BinaryOp, l: Value, r: Value) -> Result<Value> {
    use pqp_sql::BinaryOp;
    let to_opt = |v: &Value| -> Result<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => exec_err(format!("expected boolean, found `{other}`")),
        }
    };
    let (a, b) = (to_opt(&l)?, to_opt(&r)?);
    Ok(match op {
        BinaryOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinaryOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!(),
    })
}
