//! The native rank operator ([`Plan::TopK`]): preference pushdown with
//! threshold-style early termination.
//!
//! The SQ/MQ rewrites expand optional preferences into SQL — `C(K−M, L)`
//! disjuncts or `K−M` unioned partial queries — and materialize the full
//! personalized result before ranking. This operator keeps the rewrite
//! machinery for the *mandatory* preferences only (they are plain filters)
//! and evaluates the optional ones inside the executor:
//!
//! 1. **Group**: consume the base input (visible columns ++ one probe
//!    column per preference), folding rows into visible-prefix groups.
//!    Batched inputs are ingested batch-by-batch with a governor
//!    checkpoint at every batch boundary.
//! 2. **Probe passes**: one pass per optional preference, in decreasing
//!    degree order. A pass builds the preference's *witness set* (the
//!    single-column result of a small sub-plan — the preference's join
//!    path run on its own) and tests each live group's probe values
//!    against it, OR-ing a satisfaction bit per group. After every pass,
//!    groups that provably cannot reach the result are pruned:
//!    - they cannot satisfy `L` preferences with the passes that remain,
//!    - their best reachable degree cannot exceed a `MinDegree` threshold,
//!    - (ranked, `LIMIT n`) their best reachable degree is strictly below
//!      the n-th best *guaranteed* degree seen so far — the classic
//!      threshold-algorithm bound, applied to preference passes.
//!
//!    Once every group is dead the remaining passes (and their witness
//!    sub-plans) are skipped entirely.
//! 3. **Emit**: fold each surviving group's satisfaction bits into its
//!    degree of interest `1 − ∏(1 − dᵢ)` — in ascending preference order,
//!    the exact arithmetic of the `DEGREE_OF_CONJUNCTION` aggregate, so
//!    ranked output is bit-identical to the MQ rewrite — filter by the
//!    match requirement, sort by `(interest DESC, visible columns ASC)`
//!    and apply the limit.
//!
//! **Determinism contract**: same row set and same rank order as the
//! ranked MQ rewrite, with ties broken by the visible columns ascending
//! (MQ's tie order is its union order; the differential suite compares
//! against a canonically re-sorted MQ recompute).
//!
//! **Deviation from the classic threshold algorithm**: input consumption
//! is never cut short. A not-yet-seen base row can OR new satisfaction
//! bits into an *existing* group, so truncating the input would change
//! group degrees; early termination therefore operates on preference
//! passes and group pruning, where the bound is sound.

use crate::error::{EngineError, Result};
use crate::exec::{self, Env};
use crate::plan::{Plan, TopKMatching, TopKProbe, TopKProbeSource};
use pqp_obs::approx_row_bytes;
use pqp_obs::governor::CHECKPOINT_STRIDE;
use pqp_sql::ast::Query;
use pqp_storage::{Row, Value};
use std::collections::{HashMap, HashSet};

/// Maximum number of probes a [`Plan::TopK`] node may carry (satisfaction
/// bits are a `u64` mask). Personalization falls back to MQ above this.
pub const MAX_PROBES: usize = 64;

/// Name of the appended interest column in ranked output (matches the MQ
/// rewrite's column).
pub const INTEREST_COLUMN: &str = "interest";

/// Slack for threshold comparisons: upper bounds are computed in pass
/// order while final degrees fold in preference order, so the two can
/// differ by a few ulps.
const EPS: f64 = 1e-9;

/// A query-level specification of a native rank execution, produced by the
/// personalization layer and planned by `Database::plan_topk`.
///
/// `base` must project the visible columns first (one per entry of
/// `columns`, in order) followed by one probe column per entry of
/// `probes`, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSpec {
    /// The mandatory-integrated base query (visible ++ probe columns).
    pub base: Query,
    /// Display names of the visible output columns.
    pub columns: Vec<String>,
    /// One probe per optional preference, in preference order.
    pub probes: Vec<ProbeSpec>,
    /// The match requirement (at-least-L or minimum degree).
    pub matching: TopKMatching,
    /// Append the interest column and rank by it.
    pub rank: bool,
    /// Keep only the first n rows of the (ranked) output.
    pub limit: Option<u64>,
}

/// One optional preference of a [`TopKSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// The preference's degree of interest, in `[0, 1]`.
    pub doi: f64,
    pub source: ProbeSource,
}

/// How a [`ProbeSpec`]'s probe column is tested.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSource {
    /// Satisfied when the probe column equals the literal.
    Literal(Value),
    /// Satisfied when the probe column appears in the witness query's
    /// single-column output.
    Witness(Query),
}

/// One visible-prefix group under construction.
struct Group {
    visible: Row,
    /// The distinct probe-column tuples seen for this prefix.
    suffixes: Vec<Row>,
    /// Satisfaction bitmask (bit j = probe j satisfied).
    bits: u64,
    /// Satisfied-probe count (popcount of `bits`, kept incrementally).
    count: usize,
    /// `∏(1 − dⱼ)` over satisfied probes so far: `1 − lb_om` is a lower
    /// bound on the group's final degree of interest.
    lb_om: f64,
    /// Still a candidate for the result; pruned groups drop their
    /// suffixes and skip all remaining passes.
    alive: bool,
}

/// Execute a [`Plan::TopK`] node.
pub(crate) fn execute(
    env: &Env,
    base: &Plan,
    probes: &[TopKProbe],
    visible: usize,
    matching: &TopKMatching,
    rank: bool,
    limit: Option<u64>,
) -> Result<Vec<Row>> {
    let nprobes = probes.len();
    if nprobes > MAX_PROBES {
        return Err(EngineError::Internal(format!(
            "TopK carries {nprobes} probes (maximum {MAX_PROBES})"
        )));
    }

    // Phase 1: consume the base and group by the visible prefix,
    // first-seen order. Batched inputs checkpoint at batch boundaries.
    let mut groups: Vec<Group> = Vec::new();
    let mut index: HashMap<Row, usize> = HashMap::new();
    if env.opts.batched {
        match crate::vexec::run_b(env, base)? {
            crate::vexec::Out::B(bats) => {
                for b in &bats {
                    env.ctx.checkpoint()?;
                    let mut rows = Vec::with_capacity(b.len());
                    b.append_rows(&mut rows);
                    ingest(env, rows, visible, &mut groups, &mut index)?;
                }
            }
            crate::vexec::Out::R(rows) => ingest(env, rows, visible, &mut groups, &mut index)?,
        }
    } else {
        let rows = exec::run(env, base)?;
        ingest(env, rows, visible, &mut groups, &mut index)?;
    }
    drop(index);
    pqp_obs::record("groups", groups.len());

    // Phase 2: one pass per probe, in decreasing-degree order (ties by
    // probe index), with group pruning after every pass.
    let mut order: Vec<usize> = (0..nprobes).collect();
    order.sort_by(|&a, &b| probes[b].doi.total_cmp(&probes[a].doi).then(a.cmp(&b)));
    // remaining[t] = ∏ over passes t.. of (1 − d): the best multiplier the
    // not-yet-run passes could still contribute to a group's degree.
    let mut remaining = vec![1.0f64; nprobes + 1];
    for t in (0..nprobes).rev() {
        remaining[t] = remaining[t + 1] * (1.0 - probes[order[t]].doi);
    }
    let top_n = if rank { limit.map(|n| n as usize).filter(|&n| n > 0) } else { None };
    let mut lbs: Vec<f64> = Vec::new();
    let mut pruned = 0usize;
    let mut skipped = 0usize;

    for (t, &j) in order.iter().enumerate() {
        env.ctx.checkpoint()?;
        if !groups.iter().any(|g| g.alive) {
            // Early termination: nothing left to rank — the remaining
            // witness sub-plans are never built or executed.
            skipped = nprobes - t;
            break;
        }
        let witness: Option<HashSet<Value>> = match &probes[j].source {
            TopKProbeSource::Literal(_) => None,
            TopKProbeSource::Witness(wp) => Some(witness_set(env, wp)?),
        };
        let literal = match &probes[j].source {
            TopKProbeSource::Literal(v) => Some(v),
            TopKProbeSource::Witness(_) => None,
        };
        for (gi, g) in groups.iter_mut().enumerate() {
            if gi & (CHECKPOINT_STRIDE - 1) == 0 {
                env.ctx.checkpoint()?;
            }
            if !g.alive {
                continue;
            }
            // SQL equality: a NULL probe value never satisfies anything.
            let hit = g.suffixes.iter().any(|s| {
                let v = &s[j];
                if matches!(v, Value::Null) {
                    return false;
                }
                match (&literal, &witness) {
                    (Some(l), _) => v == *l,
                    (None, Some(set)) => set.contains(v),
                    (None, None) => false,
                }
            });
            if hit {
                g.bits |= 1 << j;
                g.count += 1;
                g.lb_om *= 1.0 - probes[j].doi;
            }
        }

        // Prune: drop groups that provably cannot reach the result.
        let passes_left = nprobes - t - 1;
        let best_left = remaining[t + 1];
        let nth_guaranteed = top_n.and_then(|n| {
            lbs.clear();
            for g in &groups {
                let guaranteed = g.alive
                    && match matching {
                        TopKMatching::AtLeast(l) => g.count >= *l,
                        TopKMatching::MinDegree(d) => g.count >= 1 && 1.0 - g.lb_om > *d,
                    };
                if guaranteed {
                    lbs.push(1.0 - g.lb_om);
                }
            }
            (lbs.len() >= n).then(|| {
                let (_, nth, _) = lbs.select_nth_unstable_by(n - 1, |a, b| b.total_cmp(a));
                *nth
            })
        });
        for g in groups.iter_mut() {
            if !g.alive {
                continue;
            }
            let upper = 1.0 - g.lb_om * best_left;
            let dead = match matching {
                TopKMatching::AtLeast(l) => g.count + passes_left < *l,
                TopKMatching::MinDegree(d) => upper <= *d - EPS,
            } || nth_guaranteed.is_some_and(|nth| upper < nth - EPS);
            if dead {
                g.alive = false;
                g.suffixes = Vec::new();
                pruned += 1;
            }
        }
    }
    pqp_obs::record("groups_pruned", pruned);
    pqp_obs::record("passes_skipped", skipped);
    pqp_obs::counter_add("topk.groups_pruned", pruned as i64);
    pqp_obs::counter_add("topk.passes_skipped", skipped as i64);

    // Phase 3: fold bits into degrees (ascending preference order — the
    // DEGREE_OF_CONJUNCTION arithmetic), filter, rank, limit.
    let mut out: Vec<Row> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        if gi & (CHECKPOINT_STRIDE - 1) == 0 {
            env.ctx.checkpoint()?;
        }
        if !g.alive {
            continue;
        }
        let interest = interest_of(g.bits, probes);
        let keep = match matching {
            TopKMatching::AtLeast(l) => g.count >= *l,
            TopKMatching::MinDegree(d) => {
                g.count >= 1 && matches!(interest, Value::Float(x) if x > *d)
            }
        };
        if !keep {
            continue;
        }
        let mut row = g.visible.clone();
        if rank {
            row.push(interest);
        }
        out.push(row);
    }
    if rank {
        // Interest descending (NULL degrees last), then every visible
        // column ascending: the determinism contract for tie order.
        let mut keys: Vec<(usize, bool)> = vec![(visible, true)];
        keys.extend((0..visible).map(|i| (i, false)));
        exec::sort_rows(&mut out, &keys);
    }
    if let Some(n) = limit {
        out.truncate(n as usize);
    }
    Ok(out)
}

/// Fold satisfaction bits into the degree of interest, in ascending probe
/// order — exactly the `DEGREE_OF_CONJUNCTION` aggregate's arithmetic over
/// the MQ union (whose partials arrive in preference order), so degrees
/// are bit-identical across the two strategies. No satisfied probe yields
/// NULL, like the aggregate over zero non-null inputs.
fn interest_of(bits: u64, probes: &[TopKProbe]) -> Value {
    if bits == 0 {
        return Value::Null;
    }
    let mut one_minus_prod = 1.0f64;
    for (j, p) in probes.iter().enumerate() {
        if bits >> j & 1 == 1 {
            one_minus_prod *= 1.0 - p.doi;
        }
    }
    Value::Float(1.0 - one_minus_prod)
}

/// Fold base rows into visible-prefix groups (first-seen order), charging
/// the governor for the retained bytes and checkpointing on stride.
fn ingest(
    env: &Env,
    rows: Vec<Row>,
    visible: usize,
    groups: &mut Vec<Group>,
    index: &mut HashMap<Row, usize>,
) -> Result<()> {
    let mut pending_mem: u64 = 0;
    for (i, mut row) in rows.into_iter().enumerate() {
        if i & (CHECKPOINT_STRIDE - 1) == 0 {
            env.ctx.charge_mem(std::mem::take(&mut pending_mem))?;
        }
        if row.len() < visible {
            return Err(EngineError::Internal(format!(
                "TopK base row has {} columns, expected at least {visible}",
                row.len()
            )));
        }
        let suffix = row.split_off(visible);
        pending_mem += approx_row_bytes(suffix.len());
        match index.get(&row) {
            Some(&gi) => groups[gi].suffixes.push(suffix),
            None => {
                pending_mem += approx_row_bytes(row.len());
                index.insert(row.clone(), groups.len());
                groups.push(Group {
                    visible: row,
                    suffixes: vec![suffix],
                    bits: 0,
                    count: 0,
                    lb_om: 1.0,
                    alive: true,
                });
            }
        }
    }
    env.ctx.charge_mem(pending_mem)?;
    Ok(())
}

/// Execute a witness sub-plan and collect its single output column into a
/// membership set. NULLs are excluded: SQL equality never matches them.
fn witness_set(env: &Env, plan: &Plan) -> Result<HashSet<Value>> {
    let rows =
        if env.opts.batched { crate::vexec::run_root(env, plan)? } else { exec::run(env, plan)? };
    let mut set = HashSet::with_capacity(rows.len());
    let mut bytes: u64 = 0;
    for row in rows {
        let Some(v) = row.into_iter().next() else {
            return Err(EngineError::Internal("TopK witness plan produced no columns".into()));
        };
        if !matches!(v, Value::Null) && set.insert(v) {
            bytes += approx_row_bytes(1);
        }
    }
    env.ctx.charge_mem(bytes)?;
    Ok(set)
}
