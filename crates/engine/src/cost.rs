//! Cardinality estimation over physical plans, driven by the statistics
//! collected by `ANALYZE` ([`pqp_storage::stats`]).
//!
//! The estimator answers one question — *how many rows will this plan node
//! produce?* — and the planner uses the answers to order joins and choose
//! index access paths. Estimation is strictly best-effort:
//!
//! - **With statistics** (table analyzed): equality selectivity comes from
//!   the column's histogram (skewed values pin whole equi-depth buckets) or
//!   the uniform `1/NDV` floor, ranges from histogram coverage with linear
//!   interpolation inside the split bucket, and join outputs from the
//!   textbook `|L|·|R| / max(ndv_L, ndv_R)` with NDVs clamped to the side
//!   estimates.
//! - **Without statistics**: the same fixed fallbacks the planner used
//!   before stats existed (`= literal` → [`EQ_FALLBACK`], anything else →
//!   [`DEFAULT_FALLBACK`]), so un-analyzed databases plan exactly as they
//!   always did.
//!
//! Conjunctions multiply selectivities (independence assumption),
//! disjunctions combine as `s1 + s2 − s1·s2`, `NOT` complements.
//!
//! Selectivities apply to *base-table columns*; the estimator maps a plan
//! node's output columns back to their originating `(table, column)` by
//! walking the tree ([`Estimator`] keeps this internal), which survives
//! scans, filters, joins and pass-through projections.

use crate::bound::BoundExpr;
use crate::plan::Plan;
use pqp_sql::BinaryOp;
use pqp_storage::{Catalog, TableStats, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Selectivity assumed for `col = literal` without statistics. Matches the
/// planner's historical hardcoded boost, keeping un-analyzed plans stable.
pub const EQ_FALLBACK: f64 = 0.05;
/// Selectivity assumed for any other predicate without statistics.
pub const DEFAULT_FALLBACK: f64 = 0.5;
/// Selectivity assumed for `IS NULL` without statistics.
pub const IS_NULL_FALLBACK: f64 = 0.1;
/// Row estimate for a table the estimator cannot resolve at all.
const UNKNOWN_TABLE_ROWS: f64 = 1000.0;

/// Where one output column of a plan node comes from: `(table name, column
/// position)` in a base table, when derivable by walking the plan.
pub(crate) type ColumnOrigin = Option<(String, usize)>;

/// Cached per-table planning facts: row count plus the statistics snapshot
/// (if the table was ever `ANALYZE`d).
type TableInfo = (f64, Option<Arc<TableStats>>);

/// A cardinality estimator over one catalog. Caches per-table row counts and
/// statistics snapshots for the duration of one planning pass.
pub struct Estimator<'a> {
    catalog: &'a Catalog,
    tables: RefCell<HashMap<String, TableInfo>>,
}

impl<'a> Estimator<'a> {
    pub fn new(catalog: &'a Catalog) -> Estimator<'a> {
        Estimator { catalog, tables: RefCell::new(HashMap::new()) }
    }

    /// Estimated number of rows this plan node produces.
    pub fn rows(&self, plan: &Plan) -> f64 {
        match plan {
            Plan::Empty { .. } => 0.0,
            Plan::Scan { table, filter, .. } => {
                let len = self.table_rows(table);
                match filter {
                    Some(f) => len * self.selectivity(f, &self.origins(plan)),
                    None => len,
                }
            }
            Plan::IndexScan { table, column, key, residual, .. } => {
                let len = self.table_rows(table);
                let origin = self.column_index(table, column).map(|c| (table.to_string(), c));
                let eq = self.stats_eq_value(&origin, key).unwrap_or(if key.is_null() {
                    0.0
                } else {
                    EQ_FALLBACK
                });
                let res = match residual {
                    Some(f) => self.selectivity(f, &self.origins(plan)),
                    None => 1.0,
                };
                len * eq * res
            }
            Plan::Filter { input, predicate } => {
                self.rows(input) * self.selectivity(predicate, &self.origins(input))
            }
            Plan::HashJoin { left, right, left_keys, right_keys, .. } => {
                let l = self.rows(left);
                let r = self.rows(right);
                let lo = self.origins(left);
                let ro = self.origins(right);
                let mut denom = 1.0;
                for (lk, rk) in left_keys.iter().zip(right_keys) {
                    let nl = self.ndv(lo.get(*lk).unwrap_or(&None), l);
                    let nr = self.ndv(ro.get(*rk).unwrap_or(&None), r);
                    denom *= nl.max(nr).max(1.0);
                }
                l * r / denom
            }
            Plan::IndexJoin { probe, probe_key, table, column, filter, .. } => {
                let p = self.rows(probe);
                let po = self.origins(probe);
                let len = self.table_rows(table);
                let scan_origins: Vec<ColumnOrigin> =
                    (0..self.table_arity(table)).map(|i| Some((table.to_string(), i))).collect();
                let fsel = match filter {
                    Some(f) => self.selectivity(f, &scan_origins),
                    None => 1.0,
                };
                let t = len * fsel;
                let np = self.ndv(po.get(*probe_key).unwrap_or(&None), p);
                let nt = self
                    .ndv(&self.column_index(table, column).map(|c| (table.to_string(), c)), len);
                p * t / np.max(nt).max(1.0)
            }
            Plan::CrossJoin { left, right, .. } => self.rows(left) * self.rows(right),
            Plan::Project { input, .. } | Plan::Sort { input, .. } => self.rows(input),
            Plan::Aggregate { input, group_by, .. } => {
                let in_rows = self.rows(input);
                if group_by.is_empty() {
                    return 1.0; // global aggregate: exactly one row
                }
                if in_rows <= 0.0 {
                    return 0.0;
                }
                let origins = self.origins(input);
                let mut groups = 1.0f64;
                for g in group_by {
                    groups *= match g {
                        BoundExpr::Column(i) => self.ndv(origins.get(*i).unwrap_or(&None), in_rows),
                        _ => in_rows,
                    };
                }
                groups.min(in_rows).max(1.0)
            }
            // Upper bound: DISTINCT can only shrink its input.
            Plan::Distinct { input } => self.rows(input),
            Plan::Limit { input, n } => self.rows(input).min(*n as f64),
            Plan::Union { inputs, .. } => inputs.iter().map(|i| self.rows(i)).sum(),
            Plan::TopK { base, visible, limit, .. } => {
                // Output cardinality ≈ distinct visible prefixes of the
                // base (the operator groups by them), capped by the limit.
                let in_rows = self.rows(base);
                if in_rows <= 0.0 {
                    return 0.0;
                }
                let origins = self.origins(base);
                let mut groups = 1.0f64;
                for i in 0..*visible {
                    groups *= self.ndv(origins.get(i).unwrap_or(&None), in_rows);
                }
                let groups = groups.min(in_rows).max(1.0);
                match limit {
                    Some(n) => groups.min(*n as f64),
                    None => groups,
                }
            }
        }
    }

    /// Estimated total work of a plan: unit cost per row produced at every
    /// node, plus the scan work at the leaves. This is the figure the
    /// personalization layer compares across rewrite strategies (SQ vs MQ
    /// vs native rank) — coarse, but monotone in the quantity that
    /// dominates all three: the rows their operator trees push around.
    pub fn cost(&self, plan: &Plan) -> f64 {
        match plan {
            Plan::Empty { .. } => 0.0,
            // Leaves pay for the rows they read, not just those they emit.
            Plan::Scan { table, .. } => self.table_rows(table).max(1.0),
            Plan::IndexScan { .. } => self.rows(plan).max(1.0),
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. } => self.rows(plan) + self.cost(input),
            Plan::HashJoin { left, right, .. } | Plan::CrossJoin { left, right, .. } => {
                self.rows(plan) + self.cost(left) + self.cost(right)
            }
            Plan::IndexJoin { probe, .. } => self.rows(plan) + self.cost(probe),
            Plan::Union { inputs, .. } => {
                self.rows(plan) + inputs.iter().map(|i| self.cost(i)).sum::<f64>()
            }
            Plan::TopK { base, probes, .. } => {
                // Base + every witness sub-plan, plus one probe pass over
                // the grouped rows per preference (the early-termination
                // upper bound: pruning only makes it cheaper).
                let witness_cost: f64 = probes
                    .iter()
                    .map(|p| match &p.source {
                        crate::plan::TopKProbeSource::Literal(_) => 0.0,
                        crate::plan::TopKProbeSource::Witness(w) => self.cost(w),
                    })
                    .sum();
                let base_rows = self.rows(base);
                self.cost(base) + witness_cost + base_rows * probes.len() as f64
            }
        }
    }

    /// EXPLAIN text with a per-node `est_rows` annotation.
    pub fn explain(&self, plan: &Plan) -> String {
        plan.explain_annotated(&mut |p| Some(format!("est_rows={:.0}", self.rows(p).round())))
    }

    /// Estimated selectivity (in `[0, 1]`) of a bound predicate over rows
    /// whose columns originate as described by `origins`.
    pub(crate) fn selectivity(&self, e: &BoundExpr, origins: &[ColumnOrigin]) -> f64 {
        let s = match e {
            BoundExpr::Literal(v) => match v {
                Value::Bool(true) => 1.0,
                _ => 0.0, // FALSE or NULL predicate keeps nothing
            },
            // A bare boolean column as a predicate.
            BoundExpr::Column(_) => DEFAULT_FALLBACK,
            BoundExpr::Not(inner) => 1.0 - self.selectivity(inner, origins),
            BoundExpr::IsNull { expr, negated } => {
                let s = match &**expr {
                    BoundExpr::Column(i) => self
                        .null_fraction(origins.get(*i).unwrap_or(&None))
                        .unwrap_or(IS_NULL_FALLBACK),
                    _ => IS_NULL_FALLBACK,
                };
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            BoundExpr::InList { expr, list, negated } => {
                let s: f64 = list
                    .iter()
                    .map(|item| self.stats_eq(expr, item, origins).unwrap_or(EQ_FALLBACK))
                    .sum();
                let s = s.min(1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And => self.selectivity(left, origins) * self.selectivity(right, origins),
                BinaryOp::Or => {
                    let a = self.selectivity(left, origins);
                    let b = self.selectivity(right, origins);
                    a + b - a * b
                }
                BinaryOp::Eq => self.stats_eq(left, right, origins).unwrap_or_else(|| {
                    if is_col_lit(left, right) {
                        EQ_FALLBACK
                    } else {
                        DEFAULT_FALLBACK
                    }
                }),
                BinaryOp::NotEq => {
                    // Stats give `1 − eq`; without them keep the historical
                    // flat guess rather than an optimistic complement.
                    self.stats_eq(left, right, origins).map(|s| 1.0 - s).unwrap_or(DEFAULT_FALLBACK)
                }
                BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                    self.stats_range(left, *op, right, origins).unwrap_or(DEFAULT_FALLBACK)
                }
                // Arithmetic in predicate position (shouldn't type-check as
                // a predicate, but stay defensive).
                _ => DEFAULT_FALLBACK,
            },
        };
        s.clamp(0.0, 1.0)
    }

    /// Map each output column of a plan node back to its base-table origin,
    /// when derivable.
    pub(crate) fn origins(&self, plan: &Plan) -> Vec<ColumnOrigin> {
        match plan {
            Plan::Empty { schema } | Plan::Union { schema, .. } => vec![None; schema.arity()],
            Plan::Scan { table, schema, .. } | Plan::IndexScan { table, schema, .. } => {
                (0..schema.arity()).map(|i| Some((table.clone(), i))).collect()
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => self.origins(input),
            Plan::HashJoin { left, right, .. } | Plan::CrossJoin { left, right, .. } => {
                let mut out = self.origins(left);
                out.extend(self.origins(right));
                out
            }
            Plan::IndexJoin { probe, table, probe_is_left, schema, .. } => {
                let p = self.origins(probe);
                let table_arity = schema.arity().saturating_sub(p.len());
                let t: Vec<ColumnOrigin> =
                    (0..table_arity).map(|i| Some((table.clone(), i))).collect();
                if *probe_is_left {
                    let mut out = p;
                    out.extend(t);
                    out
                } else {
                    let mut out = t;
                    out.extend(p);
                    out
                }
            }
            Plan::Project { input, exprs, .. } => {
                let inner = self.origins(input);
                exprs
                    .iter()
                    .map(|e| match e {
                        BoundExpr::Column(i) => inner.get(*i).cloned().flatten(),
                        _ => None,
                    })
                    .collect()
            }
            Plan::Aggregate { input, group_by, aggs, .. } => {
                let inner = self.origins(input);
                let mut out: Vec<ColumnOrigin> = group_by
                    .iter()
                    .map(|g| match g {
                        BoundExpr::Column(i) => inner.get(*i).cloned().flatten(),
                        _ => None,
                    })
                    .collect();
                out.extend((0..aggs.len()).map(|_| None));
                out
            }
            Plan::TopK { base, visible, rank, .. } => {
                let inner = self.origins(base);
                let mut out: Vec<ColumnOrigin> = inner.into_iter().take(*visible).collect();
                out.resize(*visible, None);
                if *rank {
                    // The synthesized interest column has no base origin.
                    out.push(None);
                }
                out
            }
        }
    }

    /// Estimated distinct values of a column within a side producing
    /// `side_rows` rows: statistics NDV when available, the hash index's
    /// distinct-key count as a fallback, the side estimate itself otherwise
    /// (the key/foreign-key assumption); always clamped to `[1, side_rows]`.
    pub(crate) fn ndv(&self, origin: &ColumnOrigin, side_rows: f64) -> f64 {
        let cap = side_rows.max(1.0);
        if let Some((table, col)) = origin {
            if let Some(stats) = self.table_stats(table) {
                if let Some(c) = stats.column(*col) {
                    return (c.distinct as f64).clamp(1.0, cap);
                }
            }
            if let Ok(t) = self.catalog.table(table) {
                let t = t.read();
                if let Some(c) = t.schema().columns.get(*col) {
                    let name = c.name.clone();
                    if let Some(idx) = t.index_on(&name) {
                        return (idx.distinct_keys() as f64).clamp(1.0, cap);
                    }
                }
            }
        }
        cap
    }

    /// Statistics-backed equality selectivity, `None` when stats can't help.
    fn stats_eq(&self, a: &BoundExpr, b: &BoundExpr, origins: &[ColumnOrigin]) -> Option<f64> {
        match (a, b) {
            (BoundExpr::Column(i), BoundExpr::Literal(v))
            | (BoundExpr::Literal(v), BoundExpr::Column(i)) => {
                self.stats_eq_value(origins.get(*i)?, v)
            }
            // col = col within one row set: 1/max NDV, only when both sides
            // have real statistics.
            (BoundExpr::Column(i), BoundExpr::Column(j)) => {
                let ni = self.stats_ndv(origins.get(*i)?)?;
                let nj = self.stats_ndv(origins.get(*j)?)?;
                Some(1.0 / ni.max(nj).max(1.0))
            }
            _ => None,
        }
    }

    /// Equality selectivity of `origin = v` from statistics alone.
    fn stats_eq_value(&self, origin: &ColumnOrigin, v: &Value) -> Option<f64> {
        let (table, col) = origin.as_ref()?;
        let stats = self.table_stats(table)?;
        Some(stats.column(*col)?.eq_selectivity(v))
    }

    /// Statistics-backed range selectivity, `None` when stats can't help.
    fn stats_range(
        &self,
        a: &BoundExpr,
        op: BinaryOp,
        b: &BoundExpr,
        origins: &[ColumnOrigin],
    ) -> Option<f64> {
        // Normalize to column-on-the-left; flipping sides flips the operator.
        let (i, v, op) = match (a, b) {
            (BoundExpr::Column(i), BoundExpr::Literal(v)) => (i, v, op),
            (BoundExpr::Literal(v), BoundExpr::Column(i)) => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                };
                (i, v, flipped)
            }
            _ => return None,
        };
        let (table, col) = origins.get(*i)?.as_ref()?;
        let stats = self.table_stats(table)?;
        let c = stats.column(*col)?;
        Some(match op {
            BinaryOp::Lt => c.lt_selectivity(v, false),
            BinaryOp::LtEq => c.lt_selectivity(v, true),
            BinaryOp::Gt => c.gt_selectivity(v, false),
            BinaryOp::GtEq => c.gt_selectivity(v, true),
            _ => return None,
        })
    }

    fn stats_ndv(&self, origin: &ColumnOrigin) -> Option<f64> {
        let (table, col) = origin.as_ref()?;
        let stats = self.table_stats(table)?;
        Some(stats.column(*col)?.distinct.max(1) as f64)
    }

    fn null_fraction(&self, origin: &ColumnOrigin) -> Option<f64> {
        let (table, col) = origin.as_ref()?;
        let stats = self.table_stats(table)?;
        Some(stats.column(*col)?.null_fraction())
    }

    /// Estimated base-table row count: the stats snapshot when analyzed (the
    /// numbers the rest of estimation is consistent with), live length
    /// otherwise.
    pub(crate) fn table_rows(&self, table: &str) -> f64 {
        self.table_info(table).0
    }

    fn table_stats(&self, table: &str) -> Option<Arc<TableStats>> {
        self.table_info(table).1
    }

    fn table_info(&self, table: &str) -> TableInfo {
        let key = table.to_ascii_uppercase();
        if let Some(info) = self.tables.borrow().get(&key) {
            return info.clone();
        }
        let info = match self.catalog.table(table) {
            Ok(t) => {
                let t = t.read();
                let stats = t.stats();
                let rows = stats.as_ref().map(|s| s.rows as f64).unwrap_or_else(|| t.len() as f64);
                (rows, stats)
            }
            Err(_) => (UNKNOWN_TABLE_ROWS, None),
        };
        self.tables.borrow_mut().insert(key, info.clone());
        info
    }

    fn table_arity(&self, table: &str) -> usize {
        self.catalog.table(table).map(|t| t.read().schema().arity()).unwrap_or(0)
    }

    fn column_index(&self, table: &str, column: &str) -> Option<usize> {
        self.catalog.table(table).ok()?.read().schema().column_index(column)
    }
}

fn is_col_lit(a: &BoundExpr, b: &BoundExpr) -> bool {
    matches!(
        (a, b),
        (BoundExpr::Column(_), BoundExpr::Literal(_))
            | (BoundExpr::Literal(_), BoundExpr::Column(_))
    )
}
