//! End-to-end SQL execution tests on a small movies fixture (the paper's
//! schema), checking the optimized engine against hand-computed results and
//! against the naive reference interpreter.

use pqp_engine::Database;
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// Build the paper's movies schema with a tiny hand-checked instance.
fn movies_db() -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "THEATRE",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("phone", DataType::Str),
                ColumnDef::new("region", DataType::Str),
            ],
        )
        .with_primary_key(&["tid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "PLAY",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("date", DataType::Str),
            ],
        )
        .with_foreign_key(&["tid"], "THEATRE", &["tid"])
        .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        )
        .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "ACTOR",
            vec![ColumnDef::new("aid", DataType::Int), ColumnDef::new("name", DataType::Str)],
        )
        .with_primary_key(&["aid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "CAST",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::nullable("award", DataType::Str),
                ColumnDef::nullable("role", DataType::Str),
            ],
        )
        .with_foreign_key(&["mid"], "MOVIE", &["mid"])
        .with_foreign_key(&["aid"], "ACTOR", &["aid"]),
    )
    .unwrap();

    let ins = |c: &Catalog, t: &str, rows: Vec<Vec<Value>>| {
        let t = c.table(t).unwrap();
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    };
    ins(
        &c,
        "THEATRE",
        vec![
            vec![1.into(), "Odeon".into(), "210".into(), "downtown".into()],
            vec![2.into(), "Rex".into(), "211".into(), "uptown".into()],
        ],
    );
    ins(
        &c,
        "MOVIE",
        vec![
            vec![10.into(), "Alpha".into(), 2001.into()],
            vec![11.into(), "Beta".into(), 2002.into()],
            vec![12.into(), "Gamma".into(), 2003.into()],
        ],
    );
    ins(
        &c,
        "PLAY",
        vec![
            vec![1.into(), 10.into(), "d1".into()],
            vec![1.into(), 11.into(), "d1".into()],
            vec![2.into(), 12.into(), "d1".into()],
            vec![2.into(), 10.into(), "d2".into()],
        ],
    );
    ins(
        &c,
        "GENRE",
        vec![
            vec![10.into(), "comedy".into()],
            vec![10.into(), "thriller".into()],
            vec![11.into(), "comedy".into()],
            vec![12.into(), "sci-fi".into()],
        ],
    );
    ins(
        &c,
        "ACTOR",
        vec![vec![100.into(), "N. Kidman".into()], vec![101.into(), "A. Hopkins".into()]],
    );
    ins(
        &c,
        "CAST",
        vec![
            vec![10.into(), 100.into(), Value::Null, "lead".into()],
            vec![11.into(), 101.into(), "oscar".into(), Value::Null],
            vec![12.into(), 100.into(), Value::Null, Value::Null],
        ],
    );
    Database::new(c)
}

fn titles(db: &Database, sql: &str) -> Vec<String> {
    let rs = db.run(sql).unwrap();
    let mut out: Vec<String> = rs.rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
    out.sort();
    out
}

/// Assert that the optimized engine and the naive interpreter agree on a
/// query, comparing sorted row multisets.
fn check_against_naive(db: &Database, sql: &str) {
    let q = parse_query(sql).unwrap();
    let mut fast = db.run_query(&q).unwrap().rows;
    let mut slow = db.run_naive(&q).unwrap().rows;
    fast.sort();
    slow.sort();
    assert_eq!(fast, slow, "engines disagree on `{sql}`");
}

#[test]
fn point_selection() {
    let db = movies_db();
    assert_eq!(titles(&db, "select title from MOVIE where mid = 11"), vec!["Beta"]);
}

#[test]
fn join_two_tables() {
    let db = movies_db();
    assert_eq!(
        titles(
            &db,
            "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'd1'"
        ),
        vec!["Alpha", "Beta", "Gamma"]
    );
}

#[test]
fn three_way_join_with_selection() {
    let db = movies_db();
    assert_eq!(
        titles(
            &db,
            "select distinct MV.title from MOVIE MV, PLAY PL, GENRE GN \
             where MV.mid = PL.mid and PL.date = 'd1' and MV.mid = GN.mid \
             and GN.genre = 'comedy'"
        ),
        vec!["Alpha", "Beta"]
    );
}

#[test]
fn disjunctive_qualification() {
    let db = movies_db();
    assert_eq!(
        titles(
            &db,
            "select distinct MV.title from MOVIE MV, GENRE GN \
             where MV.mid = GN.mid and (GN.genre = 'comedy' or GN.genre = 'sci-fi')"
        ),
        vec!["Alpha", "Beta", "Gamma"]
    );
}

#[test]
fn or_expansion_drops_unreferenced_tables() {
    // GN and CA/AC appear only inside OR branches; the rewrite must expand
    // instead of cross-producting them.
    let db = movies_db();
    let sql = "select distinct MV.title from MOVIE MV, PLAY PL, GENRE GN, CAST CA, ACTOR AC \
               where MV.mid = PL.mid and PL.date = 'd1' and (\
                 (MV.mid = GN.mid and GN.genre = 'sci-fi') or \
                 (MV.mid = CA.mid and CA.aid = AC.aid and AC.name = 'N. Kidman'))";
    assert_eq!(titles(&db, sql), vec!["Alpha", "Gamma"]);
    let explain = db.explain(sql).unwrap();
    assert!(explain.contains("Union"), "expected OR-expansion, got:\n{explain}");
    check_against_naive(&db, sql);
}

#[test]
fn union_all_group_having_the_mq_shape() {
    // The paper's MQ rewrite: union of partial queries, group, having.
    let db = movies_db();
    let sql = "select title from (\
                 (select distinct MV.title as title from MOVIE MV, GENRE GN \
                  where MV.mid = GN.mid and GN.genre = 'comedy') \
                 union all \
                 (select distinct MV.title as title from MOVIE MV, GENRE GN \
                  where MV.mid = GN.mid and GN.genre = 'thriller')\
               ) TEMP group by title having count(*) >= 2";
    // Alpha is both comedy and thriller; Beta only comedy.
    assert_eq!(titles(&db, sql), vec!["Alpha"]);
    check_against_naive(&db, sql);
}

#[test]
fn degree_of_conjunction_ranking() {
    let db = movies_db();
    let sql = "select title, degree_of_conjunction(doi) as interest from (\
                 (select distinct MV.title as title, 0.9 as doi from MOVIE MV, GENRE GN \
                  where MV.mid = GN.mid and GN.genre = 'comedy') \
                 union all \
                 (select distinct MV.title as title, 0.7 as doi from MOVIE MV, GENRE GN \
                  where MV.mid = GN.mid and GN.genre = 'thriller')\
               ) TEMP group by title having count(*) >= 1 \
               order by interest desc";
    let rs = db.run(sql).unwrap();
    // Alpha satisfies both: 1-(1-0.9)(1-0.7)=0.97; Beta only comedy: 0.9.
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], Value::str("Alpha"));
    let Value::Float(f) = rs.rows[0][1] else { panic!() };
    assert!((f - 0.97).abs() < 1e-9);
    assert_eq!(rs.rows[1][0], Value::str("Beta"));
    assert_eq!(rs.rows[1][1], Value::Float(0.9));
}

#[test]
fn aggregates_global() {
    let db = movies_db();
    let rs = db.run("select count(*) from MOVIE").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    let rs = db.run("select count(*) from MOVIE where year > 2005").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(0)]], "global aggregate over empty input");
    let rs = db.run("select min(year), max(year), avg(year) from MOVIE").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2001));
    assert_eq!(rs.rows[0][1], Value::Int(2003));
    assert_eq!(rs.rows[0][2], Value::Float(2002.0));
}

#[test]
fn count_skips_nulls_but_star_does_not() {
    let db = movies_db();
    let rs = db.run("select count(*), count(award) from CAST").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(3), Value::Int(1)]]);
}

#[test]
fn group_by_with_order() {
    let db = movies_db();
    let rs = db
        .run("select GN.genre, count(*) as n from GENRE GN group by GN.genre order by n desc, GN.genre")
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::str("comedy"), Value::Int(2)],
            vec![Value::str("sci-fi"), Value::Int(1)],
            vec![Value::str("thriller"), Value::Int(1)],
        ]
    );
}

#[test]
fn is_null_predicates() {
    let db = movies_db();
    let rs = db.run("select CA.aid from CAST CA where CA.award is null").unwrap();
    assert_eq!(rs.len(), 2);
    let rs = db.run("select CA.aid from CAST CA where CA.award is not null").unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn in_list_predicate() {
    let db = movies_db();
    assert_eq!(
        titles(
            &db,
            "select distinct MV.title from MOVIE MV, GENRE GN \
             where MV.mid = GN.mid and GN.genre in ('comedy', 'sci-fi')"
        ),
        vec!["Alpha", "Beta", "Gamma"]
    );
}

#[test]
fn where_false_yields_empty() {
    let db = movies_db();
    let rs = db.run("select title from MOVIE where 1 = 2").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn cross_join_when_no_predicate() {
    let db = movies_db();
    let rs = db.run("select MV.title, TH.name from MOVIE MV, THEATRE TH").unwrap();
    assert_eq!(rs.len(), 6);
    check_against_naive(&db, "select MV.title, TH.name from MOVIE MV, THEATRE TH");
}

#[test]
fn self_join_with_two_tuple_variables() {
    let db = movies_db();
    // Pairs of distinct genres of the same movie.
    let sql = "select G1.mid from GENRE G1, GENRE G2 \
               where G1.mid = G2.mid and G1.genre = 'comedy' and G2.genre = 'thriller'";
    let rs = db.run(sql).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(10)]]);
    check_against_naive(&db, sql);
}

#[test]
fn duplicate_tuple_variable_rejected() {
    let db = movies_db();
    assert!(db.run("select MV.title from MOVIE MV, PLAY MV").is_err());
}

#[test]
fn unknown_names_rejected() {
    let db = movies_db();
    assert!(db.run("select title from NOPE").is_err());
    assert!(db.run("select nope from MOVIE").is_err());
    assert!(db.run("select XX.title from MOVIE MV").is_err());
    assert!(db.run("select mid from MOVIE MV, PLAY PL").is_err(), "ambiguous column");
}

#[test]
fn order_by_alias_and_column() {
    let db = movies_db();
    let rs = db.run("select title as t, year from MOVIE order by year desc").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("Gamma"));
    let rs = db.run("select title as t from MOVIE order by t").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("Alpha"));
}

#[test]
fn limit_applies_after_sort() {
    let db = movies_db();
    let rs = db.run("select title from MOVIE order by year desc limit 1").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::str("Gamma")]]);
}

#[test]
fn union_distinct_vs_all() {
    let db = movies_db();
    let all = db
        .run("(select mid from GENRE where genre='comedy') union all (select mid from GENRE)")
        .unwrap();
    assert_eq!(all.len(), 6);
    let dedup = db
        .run("(select mid from GENRE where genre='comedy') union (select mid from GENRE)")
        .unwrap();
    assert_eq!(dedup.len(), 3);
}

#[test]
fn derived_table_with_alias_resolution() {
    let db = movies_db();
    let rs = db
        .run("select T.g from (select GN.genre as g from GENRE GN) T where T.g = 'comedy'")
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn paper_sq_example_runs() {
    let db = movies_db();
    let sql = "select distinct MV.title \
        from MOVIE MV, PLAY PL, GENRE GN, CAST CA, ACTOR AC \
        where MV.mid=PL.mid and PL.date='d1' and (\
          (MV.mid=GN.mid and GN.genre='comedy' and MV.mid=CA.mid and CA.aid=AC.aid and AC.name='N. Kidman') or \
          (MV.mid=GN.mid and GN.genre='sci-fi'))";
    assert_eq!(titles(&db, sql), vec!["Alpha", "Gamma"]);
    check_against_naive(&db, sql);
}

#[test]
fn naive_agreement_suite() {
    let db = movies_db();
    for sql in [
        "select MV.title from MOVIE MV",
        "select distinct GN.genre from GENRE GN",
        "select MV.title, GN.genre from MOVIE MV, GENRE GN where MV.mid = GN.mid",
        "select MV.title from MOVIE MV, PLAY PL, THEATRE TH \
         where MV.mid = PL.mid and PL.tid = TH.tid and TH.region = 'downtown'",
        "select GN.genre, count(*) from GENRE GN group by GN.genre",
        "select count(*) from MOVIE MV, GENRE GN where MV.mid = GN.mid",
        "select MV.year from MOVIE MV where MV.year >= 2002 order by MV.year",
        "select MV.title from MOVIE MV where not MV.year = 2001",
        "select MV.title from MOVIE MV where MV.year = 2001 or MV.year = 2003",
        "(select mid from GENRE where genre = 'comedy') union (select mid from GENRE where genre = 'thriller')",
        "select CA.role from CAST CA where CA.role is null",
    ] {
        check_against_naive(&db, sql);
    }
}

#[test]
fn explain_shows_hash_joins() {
    let db = movies_db();
    let explain = db
        .explain(
            "select MV.title from MOVIE MV, PLAY PL, THEATRE TH \
             where MV.mid = PL.mid and PL.tid = TH.tid and TH.region = 'downtown'",
        )
        .unwrap();
    assert_eq!(explain.matches("HashJoin").count(), 2, "plan:\n{explain}");
    assert!(!explain.contains("CrossJoin"), "plan:\n{explain}");
}
