//! DDL/DML end-to-end: create a schema with plain SQL, load it, query it,
//! mutate it.

use pqp_engine::{Database, EngineError};
use pqp_storage::{Catalog, Value};

fn fresh() -> Database {
    Database::new(Catalog::new())
}

#[test]
fn create_insert_select_roundtrip() {
    let mut db = fresh();
    db.execute("create table MOVIE (mid int primary key, title text not null, year int)").unwrap();
    let n = db.execute("insert into MOVIE values (1, 'Alpha', 2001), (2, 'Beta', 2002)").unwrap();
    assert_eq!(n.affected(), Some(2));
    let rs = db.execute("select title from MOVIE order by year desc").unwrap().rows().unwrap();
    assert_eq!(rs.rows, vec![vec![Value::str("Beta")], vec![Value::str("Alpha")]]);
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let mut db = fresh();
    db.execute("create table T (a int, b text, c float)").unwrap();
    db.execute("insert into T (c, a) values (1.5, 7)").unwrap();
    let rs = db.run("select a, b, c from T").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(7), Value::Null, Value::Float(1.5)]]);
}

#[test]
fn constraints_enforced_through_sql() {
    let mut db = fresh();
    db.execute("create table T (id int primary key, name text unique)").unwrap();
    db.execute("insert into T values (1, 'a')").unwrap();
    // Duplicate primary key.
    assert!(matches!(db.execute("insert into T values (1, 'b')"), Err(EngineError::Storage(_))));
    // Duplicate unique.
    assert!(db.execute("insert into T values (2, 'a')").is_err());
    // NOT NULL via primary key.
    assert!(db.execute("insert into T values (NULL, 'c')").is_err());
}

#[test]
fn table_level_constraints() {
    let mut db = fresh();
    db.execute(
        "create table PLAY (tid int, mid int, date text, \
         primary key (tid, mid), \
         foreign key (mid) references MOVIE (mid))",
    )
    .unwrap();
    db.execute("insert into PLAY values (1, 1, 'd')").unwrap();
    assert!(db.execute("insert into PLAY values (1, 1, 'e')").is_err(), "composite pk");
    db.execute("insert into PLAY values (1, 2, 'd')").unwrap();
    // The declared FK is recorded in the schema graph.
    db.execute("create table MOVIE (mid int primary key, title text)").unwrap();
    assert!(db.catalog().validate_foreign_keys().is_ok());
    let joins = db.catalog().schema_joins();
    assert!(joins.iter().any(|j| j.from_table == "PLAY" && j.to_table == "MOVIE"));
}

#[test]
fn delete_with_predicate() {
    let mut db = fresh();
    db.execute("create table T (a int, b text)").unwrap();
    db.execute("insert into T values (1, 'x'), (2, 'y'), (3, 'x'), (4, NULL)").unwrap();
    let n = db.execute("delete from T where b = 'x'").unwrap();
    assert_eq!(n.affected(), Some(2));
    assert_eq!(db.run("select count(*) from T").unwrap().rows, vec![vec![Value::Int(2)]]);
    // NULL predicate rows are kept (predicate not TRUE).
    let n = db.execute("delete from T where b <> 'zzz'").unwrap();
    assert_eq!(n.affected(), Some(1), "only the 'y' row matches; NULL is unknown");
    let n = db.execute("delete from T").unwrap();
    assert_eq!(n.affected(), Some(1));
}

#[test]
fn delete_predicate_can_qualify_by_table_name() {
    let mut db = fresh();
    db.execute("create table T (a int)").unwrap();
    db.execute("insert into T values (1), (2)").unwrap();
    let n = db.execute("delete from T where T.a = 1").unwrap();
    assert_eq!(n.affected(), Some(1));
}

#[test]
fn create_index_accelerates_and_stays_consistent() {
    let mut db = fresh();
    db.execute("create table T (a int, b text)").unwrap();
    for i in 0..50 {
        db.execute(&format!("insert into T values ({i}, 'tag{}')", i % 5)).unwrap();
    }
    db.execute("create index on T (b)").unwrap();
    let rs = db.run("select a from T where b = 'tag3'").unwrap();
    assert_eq!(rs.len(), 10);
    // Index maintained through subsequent DML.
    db.execute("insert into T values (100, 'tag3')").unwrap();
    db.execute("delete from T where a = 3").unwrap();
    let rs = db.run("select a from T where b = 'tag3'").unwrap();
    assert_eq!(rs.len(), 10);
}

#[test]
fn drop_table() {
    let mut db = fresh();
    db.execute("create table T (a int)").unwrap();
    db.execute("drop table T").unwrap();
    assert!(db.run("select a from T").is_err());
    assert!(db.execute("drop table T").is_err());
}

#[test]
fn insert_constant_expressions() {
    let mut db = fresh();
    db.execute("create table T (a int, b float)").unwrap();
    db.execute("insert into T values (1 + 2 * 3, 1.0 / 4)").unwrap();
    assert_eq!(
        db.run("select a, b from T").unwrap().rows,
        vec![vec![Value::Int(7), Value::Float(0.25)]]
    );
    // Column references are rejected in VALUES.
    assert!(db.execute("insert into T values (a, 1.0)").is_err());
}

#[test]
fn errors_surface_cleanly() {
    let mut db = fresh();
    assert!(db.execute("create table T (a blob)").is_err());
    db.execute("create table T (a int)").unwrap();
    assert!(db.execute("create table T (a int)").is_err(), "duplicate table");
    assert!(db.execute("insert into NOPE values (1)").is_err());
    assert!(db.execute("insert into T (nope) values (1)").is_err());
    assert!(db.execute("insert into T values (1, 2)").is_err(), "arity");
    assert!(db.execute("create index on T (nope)").is_err());
    assert!(db.execute("delete from T where nope = 1").is_err());
}
