//! Engine-level query-governor tests: budgets trip cooperatively at
//! operator loop boundaries with typed errors and partial-progress
//! counters, parallel worker panics are isolated to the failing query, and
//! the engine failpoint sites inject cleanly.
//!
//! The failpoint registry is process-global, so every test that arms one
//! serializes on a shared mutex and clears the registry before returning.

use pqp_engine::{Database, EngineError, ExecOptions};
use pqp_obs::rng::{Rng, SmallRng};
use pqp_obs::{failpoint, Budget, BudgetReason, QueryCtx};
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use std::sync::Mutex;

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints<R>(f: impl FnOnce() -> R) -> R {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    let r = f();
    failpoint::clear();
    r
}

/// A two-table database big enough for multi-page heaps and real joins.
fn fixture(rows: usize) -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "A",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("x", DataType::Int),
                ColumnDef::new("pad", DataType::Str),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "B",
        vec![ColumnDef::new("a_id", DataType::Int), ColumnDef::new("y", DataType::Int)],
    ))
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(0xB1D9);
    {
        let a = c.table("A").unwrap();
        let mut a = a.write();
        for i in 0..rows {
            a.insert(vec![
                Value::Int(i as i64),
                Value::Int((rng.next_u32() % 100) as i64),
                Value::str("p".repeat(40)),
            ])
            .unwrap();
        }
    }
    {
        let b = c.table("B").unwrap();
        let mut b = b.write();
        for i in 0..rows * 2 {
            b.insert(vec![
                Value::Int((rng.next_u32() as usize % rows) as i64),
                Value::Int(i as i64),
            ])
            .unwrap();
        }
    }
    Database::new(c)
}

const JOIN_SQL: &str = "select A.id, B.y from A, B where A.id = B.a_id";

fn budget_err(r: Result<pqp_engine::ResultSet, EngineError>) -> pqp_obs::BudgetExceeded {
    match r {
        Err(EngineError::Budget(b)) => b,
        other => panic!("expected EngineError::Budget, got {other:?}"),
    }
}

#[test]
fn zero_deadline_trips_with_typed_error() {
    let db = fixture(500);
    let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
    let ctx = QueryCtx::new(Budget::unlimited().deadline_ms(0));
    let err = budget_err(db.run_plan_ctx(&plan, &ExecOptions::default(), &ctx));
    assert_eq!(err.reason, BudgetReason::Deadline);
}

#[test]
fn row_cap_trips_mid_scan_with_partial_progress() {
    let db = fixture(2000);
    let plan = db.plan(&parse_query("select A.id from A").unwrap()).unwrap();
    let ctx = QueryCtx::new(Budget::unlimited().max_rows(700));
    let err = budget_err(db.run_plan_ctx(&plan, &ExecOptions::default(), &ctx));
    assert_eq!(err.reason, BudgetReason::RowsScanned);
    assert!(err.rows_scanned > 700, "counter shows partial progress: {err:?}");
    assert!(err.rows_scanned < 2000, "must trip before the full scan: {err:?}");
}

#[test]
fn memory_cap_trips_join_materialization() {
    let db = fixture(800);
    let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
    let ctx = QueryCtx::new(Budget::unlimited().max_memory_bytes(4 * 1024));
    let err = budget_err(db.run_plan_ctx(&plan, &ExecOptions::default(), &ctx));
    assert_eq!(err.reason, BudgetReason::Memory);
    assert!(err.mem_bytes > 4 * 1024);
}

#[test]
fn row_cap_trips_inside_planner_chosen_index_join() {
    let db = fixture(2000);
    // Statistics let the planner promote the A side (pk index on id) to a
    // Plan::IndexJoin probed by the small filtered B side.
    db.catalog().analyze_all().unwrap();
    let q = parse_query("select A.id, B.y from A, B where A.id = B.a_id and B.y < 10").unwrap();
    let plan = db.plan(&q).unwrap();
    assert!(
        format!("{plan:?}").contains("IndexJoin"),
        "fixture must exercise the index-join path: {plan:?}"
    );
    // B's scan charges 4000 rows; the cap admits the scan and trips on the
    // index probes that follow — inside the IndexJoin operator.
    let ctx = QueryCtx::new(Budget::unlimited().max_rows(4005));
    let err = budget_err(db.run_plan_ctx(&plan, &ExecOptions::default(), &ctx));
    assert_eq!(err.reason, BudgetReason::RowsScanned);
    assert!(err.rows_scanned > 4005, "probe-side charges reported: {err:?}");
    // The same plan under an unlimited context returns the full answer.
    let ok = db.run_plan_ctx(&plan, &ExecOptions::default(), &QueryCtx::unlimited()).unwrap();
    assert_eq!(ok.rows.len(), 10);
}

#[test]
fn cancellation_stops_execution() {
    let db = fixture(300);
    let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
    let ctx = QueryCtx::unlimited();
    ctx.cancel();
    let err = budget_err(db.run_plan_ctx(&plan, &ExecOptions::default(), &ctx));
    assert_eq!(err.reason, BudgetReason::Cancelled);
}

#[test]
fn unlimited_ctx_answers_match_plain_execution() {
    let db = fixture(600);
    for sql in [JOIN_SQL, "select A.id from A where A.x < 30", "select distinct B.y from B"] {
        let plan = db.plan(&parse_query(sql).unwrap()).unwrap();
        let plain = db.run_plan(&plan).unwrap();
        let governed = db
            .run_plan_ctx(
                &plan,
                &ExecOptions::default(),
                &QueryCtx::new(Budget::unlimited().deadline_ms(60_000).max_rows(10_000_000)),
            )
            .unwrap();
        assert_eq!(plain.rows, governed.rows, "budgeted run diverged for `{sql}`");
    }
}

#[test]
fn deadline_trips_inside_parallel_join_without_leaking_workers() {
    with_failpoints(|| {
        let db = fixture(900);
        let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
        let opts = ExecOptions::with_threads(3).min_parallel_rows(2);
        // Slow every parallel worker down past the deadline: the trip
        // happens *inside* the operator, not at its entry checkpoint.
        failpoint::configure("par.worker", "delay(30)").unwrap();
        let before = pqp_obs::metrics::global_snapshot().counter("exec.parallel.workers");
        let ctx = QueryCtx::new(Budget::unlimited().deadline_ms(15));
        let err = budget_err(db.run_plan_ctx(&plan, &opts, &ctx));
        assert_eq!(err.reason, BudgetReason::Deadline);
        let after = pqp_obs::metrics::global_snapshot().counter("exec.parallel.workers");
        assert!(after > before, "parallel workers must actually have spawned");
        failpoint::clear();
        // The scope joined everything: the same database serves the next
        // query normally.
        let ok = db.run_plan_with(&plan, &opts).unwrap();
        assert_eq!(ok.rows, db.run_plan(&plan).unwrap().rows);
    });
}

#[test]
fn worker_panic_becomes_internal_error_for_that_query_only() {
    with_failpoints(|| {
        let db = fixture(900);
        let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
        let opts = ExecOptions::with_threads(3).min_parallel_rows(2);
        failpoint::configure("par.worker", "1*panic(chaos worker)").unwrap();
        let err = db.run_plan_with(&plan, &opts).unwrap_err();
        match err {
            EngineError::Internal(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        failpoint::clear();
        let ok = db.run_plan_with(&plan, &opts).unwrap();
        assert_eq!(ok.rows, db.run_plan(&plan).unwrap().rows);
    });
}

#[test]
fn storage_scan_failpoint_surfaces_as_storage_error() {
    with_failpoints(|| {
        let db = fixture(200);
        let plan = db.plan(&parse_query("select A.id from A").unwrap()).unwrap();
        failpoint::configure("storage.scan", "1*error(disk gremlin)").unwrap();
        let err = db.run_plan(&plan).unwrap_err();
        match err {
            EngineError::Storage(s) => assert!(s.to_string().contains("disk gremlin"), "{s}"),
            other => panic!("expected Storage, got {other:?}"),
        }
        // Self-healing: the count-limited failpoint is spent.
        assert!(db.run_plan(&plan).is_ok());
    });
}

#[test]
fn join_build_failpoint_fails_the_join() {
    with_failpoints(|| {
        let db = fixture(300);
        let plan = db.plan(&parse_query(JOIN_SQL).unwrap()).unwrap();
        failpoint::configure("join.build", "1*error(no memory for build)").unwrap();
        let err = db.run_plan(&plan).unwrap_err();
        match err {
            EngineError::Internal(msg) => assert!(msg.contains("join.build"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        assert!(db.run_plan(&plan).is_ok());
    });
}

#[test]
fn naive_executor_respects_deadline() {
    let db = fixture(400);
    // The naive cross product of A x B is 400 * 800 rows — plenty of loop
    // iterations for the cooperative checks.
    let q = parse_query(JOIN_SQL).unwrap();
    let ctx = QueryCtx::new(Budget::unlimited().deadline_ms(0));
    match db.run_naive_ctx(&q, &ctx) {
        Err(EngineError::Budget(b)) => assert_eq!(b.reason, BudgetReason::Deadline),
        other => panic!("expected Budget, got {other:?}"),
    }
    // And the memory budget bounds the cross product itself.
    let ctx = QueryCtx::new(Budget::unlimited().max_memory_bytes(64 * 1024));
    match db.run_naive_ctx(&q, &ctx) {
        Err(EngineError::Budget(b)) => assert_eq!(b.reason, BudgetReason::Memory),
        other => panic!("expected Budget, got {other:?}"),
    }
}
