//! Index-path correctness: with secondary indexes present, the executor may
//! choose index scans and index-nested-loop joins; results must be identical
//! to the naive interpreter (and to the un-indexed engine).

use pqp_engine::Database;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// Two databases with identical contents; one fully indexed, one bare.
fn twin_dbs(rows: usize, seed: u64) -> (Database, Database) {
    let build = |indexed: bool| -> Database {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "A",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::nullable("tag", DataType::Str),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "B",
            vec![ColumnDef::nullable("a_id", DataType::Int), ColumnDef::new("y", DataType::Int)],
        ))
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        {
            let a = c.table("A").unwrap();
            let mut a = a.write();
            for id in 0..rows as i64 {
                let tag = if rng.gen_bool(0.2) {
                    Value::Null
                } else {
                    Value::str(["red", "green", "blue"][rng.gen_range(0..3usize)])
                };
                a.insert(vec![Value::Int(id), Value::Int(rng.gen_range(0..5i64)), tag]).unwrap();
            }
        }
        {
            let b = c.table("B").unwrap();
            let mut b = b.write();
            for _ in 0..rows * 3 {
                let a_id = if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..rows as i64 + 5)) // some dangling
                };
                b.insert(vec![a_id, Value::Int(rng.gen_range(0..100i64))]).unwrap();
            }
        }
        if indexed {
            c.table("A").unwrap().write().create_index("tag").unwrap();
            c.table("A").unwrap().write().create_index("x").unwrap();
            c.table("B").unwrap().write().create_index("a_id").unwrap();
        }
        Database::new(c)
    };
    (build(true), build(false))
}

fn check(sql: &str) {
    // Small enough that the naive oracle's cross products stay cheap.
    let (indexed, bare) = twin_dbs(60, 7);
    let q = parse_query(sql).unwrap();
    let mut with_idx = indexed.run_query(&q).unwrap().rows;
    let mut without = bare.run_query(&q).unwrap().rows;
    let mut naive = indexed.run_naive(&q).unwrap().rows;
    with_idx.sort();
    without.sort();
    naive.sort();
    assert_eq!(with_idx, without, "index paths changed results of `{sql}`");
    assert_eq!(with_idx, naive, "engine disagrees with naive on `{sql}`");
}

#[test]
fn index_scan_point_lookup() {
    check("select A.id from A where A.tag = 'red'");
}

#[test]
fn index_scan_with_residual_filter() {
    check("select A.id from A where A.tag = 'red' and A.x > 2");
}

#[test]
fn eq_null_never_uses_index_wrongly() {
    // `tag = NULL` is never TRUE; an index lookup keyed on NULL would
    // wrongly return the NULL-tagged rows.
    check("select A.id from A where A.tag = NULL");
    let (indexed, _) = twin_dbs(50, 3);
    let rs = indexed.run("select A.id from A where A.tag = NULL").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn index_nested_loop_join_small_probe() {
    // The filtered A side is small → the engine may index-probe B.a_id.
    check(
        "select A.id, B.y from A, B \
         where A.id = B.a_id and A.tag = 'blue' and A.x = 1",
    );
}

#[test]
fn join_with_nulls_on_join_column() {
    // NULL a_id rows must never match.
    check("select A.id, B.y from A, B where A.id = B.a_id");
    check("select B.y from B, A where B.a_id = A.id and A.x = 0");
}

#[test]
fn three_way_with_self_join() {
    check(
        "select A1.id from A A1, B B1, A A2 \
         where A1.id = B1.a_id and B1.y = A2.x and A1.tag = 'green'",
    );
}

#[test]
fn cross_type_numeric_probe() {
    // Float key probing an Int index column must match numerically.
    check("select A.id from A where A.x = 2.0");
}
