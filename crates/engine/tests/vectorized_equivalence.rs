//! Differential testing of the batched (vectorized) executor against the
//! tuple-at-a-time reference: for random databases and random queries —
//! including NULL-heavy columns, mixed-type comparisons and
//! division-by-zero-prone arithmetic — `ExecOptions::batched(true)` must
//! return **byte-identical rows in identical order** to
//! `ExecOptions::batched(false)`, serially and under a thread budget. When
//! the tuple path errors, the batched path must error too.

use pqp_engine::{Database, ExecOptions};
use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::ast::*;
use pqp_sql::builder as b;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

const TABLES: &[(&str, &[(&str, DataType)])] = &[
    ("T0", &[("a", DataType::Int), ("b", DataType::Float), ("c", DataType::Str)]),
    ("T1", &[("d", DataType::Int), ("e", DataType::Str)]),
    ("T2", &[("f", DataType::Int), ("g", DataType::Bool)]),
];

const STRINGS: &[&str] = &["x", "y", "z", ""];

fn arb_value(rng: &mut SmallRng, ty: DataType) -> Value {
    // 1-in-4 NULLs so three-valued logic and null masks get exercised.
    if rng.gen_bool(0.25) {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.gen_range(0..4i64)),
        DataType::Float => Value::Float(rng.gen_range(0..8i64) as f64 / 2.0),
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Str => Value::from(STRINGS[rng.gen_index(STRINGS.len())]),
    }
}

fn arb_db(rng: &mut SmallRng, max_rows: usize) -> Database {
    let mut c = Catalog::new();
    for (name, cols) in TABLES {
        let schema = TableSchema::new(
            *name,
            cols.iter().map(|(n, ty)| ColumnDef::nullable(*n, *ty)).collect(),
        );
        let t = c.create_table(schema).unwrap();
        let mut t = t.write();
        let n = rng.gen_range(0..max_rows);
        for _ in 0..n {
            let row: Vec<Value> = cols.iter().map(|(_, ty)| arb_value(rng, *ty)).collect();
            t.insert(row).unwrap();
        }
    }
    Database::new(c)
}

fn columns_of(table_idx: usize) -> &'static [(&'static str, DataType)] {
    TABLES[table_idx].1
}

fn arb_column(rng: &mut SmallRng, factors: &[usize]) -> (Expr, DataType) {
    let fi = rng.gen_index(factors.len());
    let cols = columns_of(factors[fi]);
    let (name, ty) = cols[rng.gen_index(cols.len())];
    (b::col(format!("q{fi}"), name), ty)
}

fn arb_literal(rng: &mut SmallRng, ty: DataType) -> Value {
    match ty {
        DataType::Int => Value::Int(rng.gen_range(0..4i64)),
        DataType::Float => Value::Float(rng.gen_range(0..8i64) as f64 / 2.0),
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Str => Value::from(STRINGS[rng.gen_index(STRINGS.len())]),
    }
}

/// Random predicates biased toward the batched path's hazards: typed
/// comparison kernels (column vs literal, both orientations), cross-type
/// comparisons (type errors for ordered ops), arithmetic under comparison
/// (division by zero must error on exactly the rows the tuple path reaches)
/// and Kleene AND/OR whose right side must stay unevaluated where the left
/// decides.
fn arb_predicate(rng: &mut SmallRng, factors: &[usize], depth: usize) -> Expr {
    if depth > 0 && rng.gen_bool(0.4) {
        return match rng.gen_range(0..3u32) {
            0 => b::and(
                arb_predicate(rng, factors, depth - 1),
                arb_predicate(rng, factors, depth - 1),
            ),
            1 => b::or(
                arb_predicate(rng, factors, depth - 1),
                arb_predicate(rng, factors, depth - 1),
            ),
            _ => b::not(arb_predicate(rng, factors, depth - 1)),
        };
    }
    match rng.gen_range(0..6u32) {
        0 => {
            // column <op> literal, matching type: the kernel fast path.
            let (col, ty) = arb_column(rng, factors);
            let ops = [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::GtEq];
            let op = ops[rng.gen_index(ops.len())];
            let lit = Expr::Literal(arb_literal(rng, ty));
            if rng.gen_bool(0.5) {
                b::binary(col, op, lit)
            } else {
                b::binary(lit, op, col)
            }
        }
        1 => {
            // column <op> literal, random type: cross-class Eq/NotEq are
            // constant-foldable, ordered ops are per-row type errors.
            let (col, _) = arb_column(rng, factors);
            let ty =
                [DataType::Int, DataType::Float, DataType::Bool, DataType::Str][rng.gen_index(4)];
            let ops = [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::Gt];
            b::binary(col, ops[rng.gen_index(ops.len())], Expr::Literal(arb_literal(rng, ty)))
        }
        2 => {
            // column = column: not kernelable, exercises the row fallback.
            let (c1, _) = arb_column(rng, factors);
            let (c2, _) = arb_column(rng, factors);
            b::eq(c1, c2)
        }
        3 => {
            let (c, _) = arb_column(rng, factors);
            Expr::IsNull { expr: Box::new(c), negated: rng.gen_bool(0.5) }
        }
        4 => {
            let (c, ty) = arb_column(rng, factors);
            let n = rng.gen_range(1..3usize);
            let list = (0..n).map(|_| Expr::Literal(arb_literal(rng, ty))).collect();
            Expr::InList { expr: Box::new(c), list, negated: rng.gen_bool(0.5) }
        }
        _ => {
            // Arithmetic under a comparison; Div by a small-int column hits
            // division-by-zero on some rows.
            let (c1, _) = arb_column(rng, factors);
            let (c2, _) = arb_column(rng, factors);
            let ops = [BinaryOp::Plus, BinaryOp::Minus, BinaryOp::Mul, BinaryOp::Div];
            let arith = b::binary(c1, ops[rng.gen_index(ops.len())], c2);
            b::binary(arith, BinaryOp::Gt, Expr::Literal(Value::Int(1)))
        }
    }
}

fn arb_query(rng: &mut SmallRng) -> Query {
    let k = rng.gen_range(1..3usize);
    let factors: Vec<usize> = (0..k).map(|_| rng.gen_index(TABLES.len())).collect();
    let from: Vec<TableFactor> =
        factors.iter().enumerate().map(|(i, &t)| b::table(TABLES[t].0, format!("q{i}"))).collect();
    let n_proj = rng.gen_range(1..3usize);
    let proj: Vec<Expr> = (0..n_proj).map(|_| arb_column(rng, &factors).0).collect();
    let selection = if rng.gen_bool(0.8) { Some(arb_predicate(rng, &factors, 3)) } else { None };
    Query::from_select(Select {
        distinct: rng.gen_bool(0.3),
        projection: proj.into_iter().map(b::item).collect(),
        from,
        selection,
        group_by: Vec::new(),
        having: None,
    })
}

/// Run one query both ways under `opts` and demand identical outcomes:
/// identical rows in identical order, or both in error.
fn assert_equivalent(db: &Database, query: &Query, opts: &ExecOptions) {
    let plan = match db.plan(query) {
        Ok(p) => p,
        Err(_) => return, // unplannable draws are not this test's concern
    };
    let tuple = db.run_plan_with(&plan, &opts.batched(false));
    let batched = db.run_plan_with(&plan, &opts.batched(true));
    match (tuple, batched) {
        (Ok(t), Ok(v)) => {
            assert_eq!(t.rows, v.rows, "batched diverged on `{query}`:\n{}", plan.explain())
        }
        (Err(_), Err(_)) => {} // both error: equivalent (messages may differ)
        (Ok(_), Err(e)) => {
            panic!("batched failed where tuple succeeded on `{query}`: {e}");
        }
        (Err(e), Ok(_)) => {
            panic!("tuple failed where batched succeeded on `{query}`: {e}");
        }
    }
}

#[test]
fn batched_matches_tuple_on_random_queries() {
    let mut rng = SmallRng::seed_from_u64(0xBA7C);
    for _ in 0..384 {
        let db = arb_db(&mut rng, 12);
        let query = arb_query(&mut rng);
        assert_equivalent(&db, &query, &ExecOptions::serial());
    }
}

/// Single-table random query: scans span several batches without risking a
/// cross product (the small-db random test above covers multi-table shapes;
/// the fixed equi-join list below covers big joins).
fn arb_single_table_query(rng: &mut SmallRng) -> Query {
    let factors = vec![rng.gen_index(TABLES.len())];
    let from = vec![b::table(TABLES[factors[0]].0, "q0")];
    let n_proj = rng.gen_range(1..3usize);
    let proj: Vec<Expr> = (0..n_proj).map(|_| arb_column(rng, &factors).0).collect();
    let selection = Some(arb_predicate(rng, &factors, 3));
    Query::from_select(Select {
        distinct: rng.gen_bool(0.3),
        projection: proj.into_iter().map(b::item).collect(),
        from,
        selection,
        group_by: Vec::new(),
        having: None,
    })
}

/// Equi-join queries over the big fixture: multi-batch join inputs and
/// outputs, null join keys, post-join filters and projections.
const JOIN_QUERIES: &[&str] = &[
    "select q0.a, q1.d from T0 q0, T1 q1 where q0.a = q1.d",
    "select q0.c, q1.e from T0 q0, T1 q1 where q0.c = q1.e and q0.a >= 1",
    "select q0.b, q1.f from T0 q0, T2 q1 where q0.a = q1.f and q1.g = true",
    "select distinct q0.c from T0 q0, T1 q1 where q0.c = q1.e",
    "select q0.a + q1.d, q0.b from T0 q0, T1 q1 where q0.a = q1.d and q0.b > 0.5",
];

#[test]
fn batched_matches_tuple_across_batch_boundaries() {
    // Tables big enough that scans span multiple batches and joins emit
    // multi-batch output; also run under a thread budget low enough that
    // every operator actually fans out.
    let mut rng = SmallRng::seed_from_u64(0x0B47);
    let db = arb_db(&mut rng, 5_000);
    let par = ExecOptions::with_threads(4).min_parallel_rows(64);
    for _ in 0..24 {
        let query = arb_single_table_query(&mut rng);
        assert_equivalent(&db, &query, &ExecOptions::serial());
        assert_equivalent(&db, &query, &par);
    }
    for sql in JOIN_QUERIES {
        let query = pqp_sql::parse_query(sql).unwrap();
        assert_equivalent(&db, &query, &ExecOptions::serial());
        assert_equivalent(&db, &query, &par);
    }
}

#[test]
fn batched_parallel_matches_tuple_serial_exactly() {
    // The strongest form of the contract: batched + 4 threads must equal
    // tuple + serial row-for-row (ordered partition merge on both paths).
    let mut rng = SmallRng::seed_from_u64(0x4E0);
    let db = arb_db(&mut rng, 3_000);
    let serial_tuple = ExecOptions::serial().batched(false);
    let par_batched = ExecOptions::with_threads(4).min_parallel_rows(64).batched(true);
    let mut queries: Vec<Query> = (0..16).map(|_| arb_single_table_query(&mut rng)).collect();
    queries.extend(JOIN_QUERIES.iter().map(|sql| pqp_sql::parse_query(sql).unwrap()));
    for query in &queries {
        let Ok(plan) = db.plan(query) else { continue };
        let reference = db.run_plan_with(&plan, &serial_tuple);
        let candidate = db.run_plan_with(&plan, &par_batched);
        match (reference, candidate) {
            (Ok(t), Ok(v)) => assert_eq!(t.rows, v.rows, "diverged on `{query}`"),
            (Err(_), Err(_)) => {}
            (t, v) => panic!(
                "outcome mismatch on `{query}`: tuple-serial ok={} batched-parallel ok={}",
                t.is_ok(),
                v.is_ok()
            ),
        }
    }
}

#[test]
fn pqp_batched_env_escape_hatch_is_honored() {
    assert!(ExecOptions::default().batched, "batched execution is the default");
    assert!(ExecOptions::serial().batched);
    std::env::set_var("PQP_BATCHED", "0");
    assert!(!ExecOptions::from_env().batched);
    std::env::set_var("PQP_BATCHED", "off");
    assert!(!ExecOptions::from_env().batched);
    std::env::set_var("PQP_BATCHED", "1");
    assert!(ExecOptions::from_env().batched);
    std::env::remove_var("PQP_BATCHED");
    assert!(ExecOptions::from_env().batched);
}
