//! Differential testing: on random databases and random queries, the
//! optimized pipeline (rewrite → plan → execute) must produce exactly the
//! same multiset of rows as the naive AST interpreter. Driven by a seeded
//! PRNG so failures reproduce exactly.

use pqp_engine::Database;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::ast::*;
use pqp_sql::builder as b;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// Fixed table shapes; row contents are generated.
const TABLES: &[(&str, &[(&str, DataType)])] = &[
    ("T0", &[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Str)]),
    ("T1", &[("d", DataType::Int), ("e", DataType::Str)]),
    ("T2", &[("f", DataType::Int), ("g", DataType::Int)]),
];

const STRINGS: &[&str] = &["x", "y", "z"];

fn arb_value(rng: &mut SmallRng, ty: DataType) -> Value {
    // 1-in-4 NULLs so three-valued logic gets exercised.
    if rng.gen_bool(0.25) {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.gen_range(0..4i64)),
        DataType::Str => Value::from(STRINGS[rng.gen_index(STRINGS.len())]),
        _ => unreachable!(),
    }
}

fn arb_db(rng: &mut SmallRng) -> Database {
    let mut c = Catalog::new();
    for (name, cols) in TABLES {
        let schema = TableSchema::new(
            *name,
            cols.iter().map(|(n, ty)| ColumnDef::nullable(*n, *ty)).collect(),
        );
        let t = c.create_table(schema).unwrap();
        let mut t = t.write();
        let n = rng.gen_range(0..10usize);
        for _ in 0..n {
            let row: Vec<Value> = cols.iter().map(|(_, ty)| arb_value(rng, *ty)).collect();
            t.insert(row).unwrap();
        }
    }
    Database::new(c)
}

fn columns_of(table_idx: usize) -> &'static [(&'static str, DataType)] {
    TABLES[table_idx].1
}

/// A random qualified column over the query's factors (alias q0..q{k-1}).
fn arb_column(rng: &mut SmallRng, factors: &[usize]) -> (Expr, DataType) {
    let fi = rng.gen_index(factors.len());
    let cols = columns_of(factors[fi]);
    let (name, ty) = cols[rng.gen_index(cols.len())];
    (b::col(format!("q{fi}"), name), ty)
}

fn arb_literal(rng: &mut SmallRng, ty: DataType) -> Value {
    match ty {
        DataType::Int => Value::Int(rng.gen_range(0..4i64)),
        _ => Value::from(STRINGS[rng.gen_index(STRINGS.len())]),
    }
}

fn arb_predicate(rng: &mut SmallRng, factors: &[usize], depth: usize) -> Expr {
    if depth > 0 && rng.gen_bool(0.4) {
        return match rng.gen_range(0..3u32) {
            0 => b::and(
                arb_predicate(rng, factors, depth - 1),
                arb_predicate(rng, factors, depth - 1),
            ),
            1 => b::or(
                arb_predicate(rng, factors, depth - 1),
                arb_predicate(rng, factors, depth - 1),
            ),
            _ => b::not(arb_predicate(rng, factors, depth - 1)),
        };
    }
    match rng.gen_range(0..4u32) {
        0 => {
            // column <op> literal
            let (col, ty) = arb_column(rng, factors);
            let ops = [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::GtEq];
            let op = ops[rng.gen_index(ops.len())];
            b::binary(col, op, Expr::Literal(arb_literal(rng, ty)))
        }
        1 => {
            // column = column (same type only); falls back to a literal
            // comparison when the draw mismatches.
            let (c1, t1) = arb_column(rng, factors);
            let (c2, t2) = arb_column(rng, factors);
            if t1 == t2 {
                b::eq(c1, c2)
            } else {
                b::eq(c1, Expr::Literal(arb_literal(rng, t1)))
            }
        }
        2 => {
            let (c, _) = arb_column(rng, factors);
            Expr::IsNull { expr: Box::new(c), negated: rng.gen_bool(0.5) }
        }
        _ => {
            let (c, ty) = arb_column(rng, factors);
            let n = rng.gen_range(1..3usize);
            let list = (0..n).map(|_| Expr::Literal(arb_literal(rng, ty))).collect();
            Expr::InList { expr: Box::new(c), list, negated: false }
        }
    }
}

fn arb_query(rng: &mut SmallRng) -> Query {
    let k = rng.gen_range(1..3usize);
    let factors: Vec<usize> = (0..k).map(|_| rng.gen_index(TABLES.len())).collect();
    let from: Vec<TableFactor> =
        factors.iter().enumerate().map(|(i, &t)| b::table(TABLES[t].0, format!("q{i}"))).collect();
    let n_proj = rng.gen_range(1..3usize);
    let proj: Vec<(Expr, DataType)> = (0..n_proj).map(|_| arb_column(rng, &factors)).collect();
    let selection = if rng.gen_bool(0.5) { Some(arb_predicate(rng, &factors, 3)) } else { None };
    if rng.gen_bool(0.5) {
        // GROUP BY the first projected column with COUNT(*).
        let gcol = proj[0].0.clone();
        Query::from_select(Select {
            distinct: false,
            projection: vec![b::item(gcol.clone()), b::item(b::count_star())],
            from,
            selection,
            group_by: vec![gcol],
            having: None,
        })
    } else {
        Query::from_select(Select {
            distinct: rng.gen_bool(0.5),
            projection: proj.into_iter().map(|(e, _)| b::item(e)).collect(),
            from,
            selection,
            group_by: Vec::new(),
            having: None,
        })
    }
}

#[test]
fn optimized_engine_matches_naive() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for _ in 0..384 {
        let db = arb_db(&mut rng);
        let query = arb_query(&mut rng);
        let naive = db.run_naive(&query);
        let fast = db.run_query(&query);
        match (naive, fast) {
            (Ok(n), Ok(f)) => {
                let mut n = n.rows;
                let mut f = f.rows;
                n.sort();
                f.sort();
                assert_eq!(n, f, "query: {query}");
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                panic!("engine failed where naive succeeded on `{query}`: {e}");
            }
            (Err(e), Ok(_)) => {
                panic!("naive failed where engine succeeded on `{query}`: {e}");
            }
        }
    }
}

#[test]
fn sql_text_roundtrip_preserves_semantics() {
    let mut rng = SmallRng::seed_from_u64(0x7E47);
    for _ in 0..384 {
        let db = arb_db(&mut rng);
        let query = arb_query(&mut rng);
        // Executing the printed SQL must equal executing the AST.
        let direct = db.run_query(&query);
        let via_text = db.run(&query.to_string());
        match (direct, via_text) {
            (Ok(a), Ok(b2)) => {
                let mut a = a.rows;
                let mut b2 = b2.rows;
                a.sort();
                b2.sort();
                assert_eq!(a, b2, "query: {query}");
            }
            (Err(_), Err(_)) => {}
            (a, b2) => {
                panic!("disagreement on `{query}`: direct={:?} text={:?}", a.is_ok(), b2.is_ok());
            }
        }
    }
}
