//! Differential property testing: on random databases and random queries,
//! the optimized pipeline (rewrite → plan → execute) must produce exactly the
//! same multiset of rows as the naive AST interpreter.

use pqp_engine::Database;
use pqp_sql::ast::*;
use pqp_sql::builder as b;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use proptest::prelude::*;

/// Fixed table shapes; row contents are generated.
const TABLES: &[(&str, &[(&str, DataType)])] = &[
    ("T0", &[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Str)]),
    ("T1", &[("d", DataType::Int), ("e", DataType::Str)]),
    ("T2", &[("f", DataType::Int), ("g", DataType::Int)]),
];

fn arb_value(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Int => prop_oneof![3 => (0i64..4).prop_map(Value::Int), 1 => Just(Value::Null)].boxed(),
        DataType::Str => prop_oneof![
            3 => prop::sample::select(vec!["x", "y", "z"]).prop_map(Value::from),
            1 => Just(Value::Null)
        ]
        .boxed(),
        _ => unreachable!(),
    }
}

fn arb_table_rows(cols: &'static [(&'static str, DataType)]) -> BoxedStrategy<Vec<Vec<Value>>> {
    let row = cols.iter().map(|(_, ty)| arb_value(*ty)).collect::<Vec<_>>();
    prop::collection::vec(row, 0..10).boxed()
}

fn arb_db() -> impl Strategy<Value = Database> {
    (arb_table_rows(TABLES[0].1), arb_table_rows(TABLES[1].1), arb_table_rows(TABLES[2].1))
        .prop_map(|(r0, r1, r2)| {
            let mut c = Catalog::new();
            for ((name, cols), rows) in TABLES.iter().zip([r0, r1, r2]) {
                let schema = TableSchema::new(
                    *name,
                    cols.iter().map(|(n, ty)| ColumnDef::nullable(*n, *ty)).collect(),
                );
                let t = c.create_table(schema).unwrap();
                let mut t = t.write();
                for row in rows {
                    t.insert(row).unwrap();
                }
            }
            Database::new(c)
        })
}

/// A query over `k` factors (aliases q0..q{k-1} over random base tables).
#[derive(Debug, Clone)]
struct GenQuery {
    query: Query,
}

fn columns_of(table_idx: usize) -> &'static [(&'static str, DataType)] {
    TABLES[table_idx].1
}

fn arb_column(factors: Vec<usize>) -> impl Strategy<Value = (Expr, DataType)> {
    (0..factors.len(), any::<prop::sample::Index>()).prop_map(move |(fi, ci)| {
        let cols = columns_of(factors[fi]);
        let (name, ty) = cols[ci.index(cols.len())];
        (b::col(format!("q{fi}"), name), ty)
    })
}

fn arb_predicate(factors: Vec<usize>) -> impl Strategy<Value = Expr> {
    let leaf = {
        let factors = factors.clone();
        prop_oneof![
            // column <op> literal
            (arb_column(factors.clone()), any::<prop::sample::Index>(), any::<prop::sample::Index>())
                .prop_map(|((col, ty), op_i, lit_i)| {
                    let ops = [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::GtEq];
                    let op = ops[op_i.index(ops.len())];
                    let lit = match ty {
                        DataType::Int => Value::Int(lit_i.index(4) as i64),
                        _ => Value::from(["x", "y", "z"][lit_i.index(3)]),
                    };
                    b::binary(col, op, Expr::Literal(lit))
                }),
            // column = column (same type only: int with int)
            (arb_column(factors.clone()), arb_column(factors.clone())).prop_filter_map(
                "type mismatch",
                |((c1, t1), (c2, t2))| {
                    if t1 == t2 {
                        Some(b::eq(c1, c2))
                    } else {
                        None
                    }
                }
            ),
            // IS NULL
            (arb_column(factors.clone()), any::<bool>()).prop_map(|((c, _), n)| Expr::IsNull {
                expr: Box::new(c),
                negated: n
            }),
            // IN list
            (arb_column(factors), prop::collection::vec(any::<prop::sample::Index>(), 1..3))
                .prop_map(|((c, ty), idxs)| {
                    let list = idxs
                        .iter()
                        .map(|i| match ty {
                            DataType::Int => Expr::Literal(Value::Int(i.index(4) as i64)),
                            _ => Expr::Literal(Value::from(["x", "y", "z"][i.index(3)])),
                        })
                        .collect();
                    Expr::InList { expr: Box::new(c), list, negated: false }
                }),
        ]
    };
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| b::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| b::or(l, r)),
            inner.prop_map(b::not),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = GenQuery> {
    prop::collection::vec(0usize..TABLES.len(), 1..3)
        .prop_flat_map(|factors| {
            let from: Vec<TableFactor> = factors
                .iter()
                .enumerate()
                .map(|(i, &t)| b::table(TABLES[t].0, format!("q{i}")))
                .collect();
            let proj = prop::collection::vec(arb_column(factors.clone()), 1..3);
            let selection = proptest::option::of(arb_predicate(factors.clone()));
            (Just(from), proj, selection, any::<bool>(), any::<bool>())
        })
        .prop_map(|(from, proj, selection, distinct, group)| {
            let query = if group {
                // GROUP BY the first projected column with COUNT(*).
                let gcol = proj[0].0.clone();
                Query::from_select(Select {
                    distinct: false,
                    projection: vec![b::item(gcol.clone()), b::item(b::count_star())],
                    from,
                    selection,
                    group_by: vec![gcol],
                    having: None,
                })
            } else {
                Query::from_select(Select {
                    distinct,
                    projection: proj.into_iter().map(|(e, _)| b::item(e)).collect(),
                    from,
                    selection,
                    group_by: Vec::new(),
                    having: None,
                })
            };
            GenQuery { query }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn optimized_engine_matches_naive(db in arb_db(), gq in arb_query()) {
        let naive = db.run_naive(&gq.query);
        let fast = db.run_query(&gq.query);
        match (naive, fast) {
            (Ok(n), Ok(f)) => {
                let mut n = n.rows;
                let mut f = f.rows;
                n.sort();
                f.sort();
                prop_assert_eq!(n, f, "query: {}", gq.query);
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                return Err(TestCaseError::fail(format!(
                    "engine failed where naive succeeded on `{}`: {e}",
                    gq.query
                )));
            }
            (Err(e), Ok(_)) => {
                return Err(TestCaseError::fail(format!(
                    "naive failed where engine succeeded on `{}`: {e}",
                    gq.query
                )));
            }
        }
    }

    #[test]
    fn sql_text_roundtrip_preserves_semantics(db in arb_db(), gq in arb_query()) {
        // Executing the printed SQL must equal executing the AST.
        let direct = db.run_query(&gq.query);
        let via_text = db.run(&gq.query.to_string());
        match (direct, via_text) {
            (Ok(a), Ok(b2)) => {
                let mut a = a.rows;
                let mut b2 = b2.rows;
                a.sort();
                b2.sort();
                prop_assert_eq!(a, b2, "query: {}", gq.query);
            }
            (Err(_), Err(_)) => {}
            (a, b2) => {
                return Err(TestCaseError::fail(format!(
                    "disagreement on `{}`: direct={:?} text={:?}",
                    gq.query, a.is_ok(), b2.is_ok()
                )));
            }
        }
    }
}
