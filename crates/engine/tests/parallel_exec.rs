//! Engine-level parallel execution tests: partitioned scans, filters,
//! projections and the partitioned hash join must return exactly the rows
//! the serial executor returns, in the same order, for every thread budget.

use pqp_engine::{Database, ExecOptions};
use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// A two-table database big enough to span many heap pages.
fn fixture(rows: usize) -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "A",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("x", DataType::Int),
                ColumnDef::nullable("tag", DataType::Str),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "B",
        vec![ColumnDef::nullable("a_id", DataType::Int), ColumnDef::new("y", DataType::Int)],
    ))
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(0x9E1F);
    {
        let a = c.table("A").unwrap();
        let mut a = a.write();
        for i in 0..rows {
            let tag = if i % 7 == 0 { Value::Null } else { Value::str(format!("t{}", i % 5)) };
            a.insert(vec![Value::Int(i as i64), Value::Int((rng.next_u32() % 100) as i64), tag])
                .unwrap();
        }
    }
    {
        let b = c.table("B").unwrap();
        let mut b = b.write();
        for i in 0..rows * 2 {
            let a_id = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int((rng.next_u32() as usize % rows) as i64)
            };
            b.insert(vec![a_id, Value::Int(i as i64)]).unwrap();
        }
    }
    Database::new(c)
}

const QUERIES: &[&str] = &[
    "select A.id, A.x from A where A.x < 50",
    "select A.tag from A where A.x < 80 and A.id > 10",
    "select A.id, B.y from A, B where A.id = B.a_id",
    "select A.id, B.y from A, B where A.id = B.a_id and A.x < 30",
    "select distinct A.tag from A, B where A.id = B.a_id",
];

#[test]
fn every_thread_budget_matches_serial() {
    let db = fixture(600);
    for sql in QUERIES {
        let q = parse_query(sql).unwrap();
        let plan = db.plan(&q).unwrap();
        let serial = db.run_plan(&plan).unwrap();
        for threads in [2, 3, 4, 8] {
            let opts = ExecOptions::with_threads(threads).min_parallel_rows(2);
            let parallel = db.run_plan_with(&plan, &opts).unwrap();
            assert_eq!(
                serial.rows,
                parallel.rows,
                "`{sql}` diverged at {threads} threads:\n{}",
                plan.explain()
            );
        }
    }
}

#[test]
fn more_partitions_than_pages_is_fine() {
    // 40 rows fit in very few pages; a 16-thread budget must clamp its scan
    // fan-out to the page count and still answer correctly.
    let db = fixture(40);
    let opts = ExecOptions::with_threads(16).min_parallel_rows(1);
    for sql in QUERIES {
        let q = parse_query(sql).unwrap();
        let serial = db.run_query(&q).unwrap();
        let parallel = db.run_query_with(&q, &opts).unwrap();
        assert_eq!(serial.rows, parallel.rows, "`{sql}` diverged with excess partitions");
    }
}

#[test]
fn parallel_run_records_its_shape_in_the_trace() {
    let db = fixture(600);
    let q = parse_query("select A.id, B.y from A, B where A.id = B.a_id").unwrap();
    let opts = ExecOptions::with_threads(4).min_parallel_rows(2);

    pqp_obs::trace_begin("test");
    db.run_query_with(&q, &opts).unwrap();
    let trace = pqp_obs::trace_end().unwrap();

    let join = trace
        .root
        .find("exec.hash_join")
        .unwrap_or_else(|| panic!("no hash join span:\n{}", trace.render()));
    assert_eq!(
        join.field("strategy"),
        Some(&pqp_obs::Field::Str("parallel_hash_join".into())),
        "join did not take the parallel path:\n{}",
        trace.render()
    );
    assert!(join.field("partitions").is_some(), "join span missing partition fan-out");
    let scan =
        trace.root.find("exec.scan").unwrap_or_else(|| panic!("no scan span:\n{}", trace.render()));
    assert!(scan.field("partitions").is_some(), "scan span missing partition fan-out");
    assert!(trace.metrics.counter("exec.scan.partitions") > 0);
    assert!(trace.metrics.counter("exec.parallel.workers") > 0);
}

#[test]
fn exec_options_builder_clamps_and_parses() {
    assert_eq!(ExecOptions::default().threads, 1);
    assert!(!ExecOptions::default().is_parallel());
    assert_eq!(ExecOptions::with_threads(0).threads, 1, "zero clamps to serial");
    assert!(ExecOptions::with_threads(2).is_parallel());
    assert_eq!(ExecOptions::serial(), ExecOptions::default());

    std::env::set_var("PQP_THREADS", "3");
    assert_eq!(ExecOptions::from_env().threads, 3);
    std::env::set_var("PQP_THREADS", "not a number");
    assert_eq!(ExecOptions::from_env().threads, 1);
    std::env::remove_var("PQP_THREADS");
    assert_eq!(ExecOptions::from_env().threads, 1);
}
