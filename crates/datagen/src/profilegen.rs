//! Synthetic user-profile generation over the movies schema.
//!
//! Matches the paper's experimental setup: profiles of a given *size*
//! (number of atomic selections) produced by a profile generator, plus join
//! preferences over the schema graph so queries on one relation can pull in
//! preferences on others.

use crate::movies::ValuePools;
use pqp_core::Profile;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_storage::Value;

/// Configuration for profile generation.
#[derive(Debug, Clone)]
pub struct ProfileGenConfig {
    /// Number of atomic selection preferences (the paper's profile size).
    pub selections: usize,
    /// Probability that a schema join gets a preference (both directions
    /// always share the event; degrees differ).
    pub join_coverage: f64,
    pub seed: u64,
}

impl Default for ProfileGenConfig {
    fn default() -> ProfileGenConfig {
        ProfileGenConfig { selections: 30, join_coverage: 1.0, seed: 0xBEEF }
    }
}

/// The attributes on which selection preferences can be expressed, paired
/// with their value pool.
fn selection_targets(pools: &ValuePools) -> Vec<(&'static str, &'static str, Vec<Value>)> {
    vec![
        ("GENRE", "genre", pools.genres.iter().map(|g| Value::str(g.clone())).collect()),
        ("ACTOR", "name", pools.actor_names.iter().map(|n| Value::str(n.clone())).collect()),
        ("DIRECTOR", "name", pools.director_names.iter().map(|n| Value::str(n.clone())).collect()),
        ("THEATRE", "region", pools.regions.iter().map(|r| Value::str(r.clone())).collect()),
        ("MOVIE", "year", pools.years.iter().map(|y| Value::Int(*y)).collect()),
    ]
}

/// Generate a profile of the requested size for `user`.
///
/// Selections are drawn without replacement across (attribute, value) pairs;
/// if the pools cannot supply the requested size, the profile is as large as
/// possible (callers can check [`Profile::size`]).
pub fn generate_profile(user: &str, pools: &ValuePools, config: &ProfileGenConfig) -> Profile {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut p = Profile::new(user);

    // Join preferences over the schema graph, both directions, independent
    // degrees in [0.5, 1] (low-degree joins would starve transitive
    // preferences, which matches the paper's example profile where joins
    // carry high degrees).
    let schema_joins: &[(&str, &str, &str, &str)] = &[
        ("THEATRE", "tid", "PLAY", "tid"),
        ("PLAY", "tid", "THEATRE", "tid"),
        ("PLAY", "mid", "MOVIE", "mid"),
        ("MOVIE", "mid", "PLAY", "mid"),
        ("MOVIE", "mid", "GENRE", "mid"),
        ("GENRE", "mid", "MOVIE", "mid"),
        ("MOVIE", "mid", "CAST", "mid"),
        ("CAST", "mid", "MOVIE", "mid"),
        ("CAST", "aid", "ACTOR", "aid"),
        ("ACTOR", "aid", "CAST", "aid"),
        ("MOVIE", "mid", "DIRECTED", "mid"),
        ("DIRECTED", "mid", "MOVIE", "mid"),
        ("DIRECTED", "did", "DIRECTOR", "did"),
        ("DIRECTOR", "did", "DIRECTED", "did"),
    ];
    for (ft, fc, tt, tc) in schema_joins {
        if rng.gen_bool(config.join_coverage.clamp(0.0, 1.0)) {
            let doi = 0.5 + rng.gen_f64() * 0.5;
            p.add_join(ft, fc, tt, tc, doi).expect("valid degree");
        }
    }

    // Selection preferences, skewed toward interesting degrees.
    let targets = selection_targets(pools);
    let mut attempts = 0;
    while p.size() < config.selections && attempts < config.selections * 20 {
        attempts += 1;
        let (table, column, values) = &targets[rng.gen_range(0..targets.len())];
        if values.is_empty() {
            continue;
        }
        let value = values[rng.gen_range(0..values.len())].clone();
        // Degrees in (0, 1]: mostly moderate, occasionally must-have.
        let doi = if rng.gen_bool(0.1) { 1.0 } else { 0.1 + rng.gen_f64() * 0.85 };
        let before = p.size();
        p.add_selection(table, column, value, doi).expect("valid degree");
        if p.size() == before {
            // Duplicate (attribute, value): replaced the degree instead of
            // growing; try again.
            continue;
        }
    }
    p
}

/// Generate `count` profiles of a given size with derived seeds.
pub fn generate_profiles(
    prefix: &str,
    count: usize,
    pools: &ValuePools,
    base: &ProfileGenConfig,
) -> Vec<Profile> {
    (0..count)
        .map(|i| {
            let cfg =
                ProfileGenConfig { seed: base.seed.wrapping_add(i as u64 * 7919), ..base.clone() };
            generate_profile(&format!("{prefix}{i}"), pools, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{generate, MovieDbConfig};

    fn pools() -> ValuePools {
        generate(MovieDbConfig::tiny()).pools
    }

    #[test]
    fn profile_reaches_requested_size() {
        let p = generate_profile(
            "u",
            &pools(),
            &ProfileGenConfig { selections: 25, ..Default::default() },
        );
        assert_eq!(p.size(), 25);
        assert!(p.joins().count() > 0);
    }

    #[test]
    fn profiles_validate_against_schema() {
        let m = generate(MovieDbConfig::tiny());
        let p = generate_profile("u", &m.pools, &ProfileGenConfig::default());
        assert!(p.validate(m.db.catalog()).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let pools = pools();
        let cfg = ProfileGenConfig { selections: 10, seed: 5, ..Default::default() };
        let a = generate_profile("u", &pools, &cfg);
        let b = generate_profile("u", &pools, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_generation_varies_seeds() {
        let pools = pools();
        let ps = generate_profiles("user", 3, &pools, &ProfileGenConfig::default());
        assert_eq!(ps.len(), 3);
        assert_ne!(ps[0].preferences(), ps[1].preferences());
        assert_eq!(ps[0].user, "user0");
    }

    #[test]
    fn degrees_are_valid() {
        let p = generate_profile(
            "u",
            &pools(),
            &ProfileGenConfig { selections: 40, ..Default::default() },
        );
        for pref in p.preferences() {
            let d = pref.doi().value();
            assert!((0.0..=1.0).contains(&d));
            assert!(d > 0.0, "zero-degree preferences are never stored");
        }
    }
}
