//! Zipf-distributed sampling, hand-rolled (no `rand_distr` dependency).
//!
//! Real catalog data — genre popularity, cast sizes, which movies theatres
//! choose to play — is heavily skewed; Zipf skew is what makes the
//! experiments' selectivity spread realistic. Sampling uses a precomputed
//! CDF with binary search: O(n) setup, O(log n) per draw.

use pqp_obs::rng::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be positive; `s = 0` degenerates to
    /// uniform, `s ≈ 1` is classic Zipf.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a positive support size");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against FP drift: the last entry must be exactly 1.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_obs::rng::SmallRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(10, 1.0);
        for k in 1..10 {
            assert!(z.pmf(k) < z.pmf(k - 1), "pmf must decrease with rank");
        }
    }

    #[test]
    fn samples_cover_support_and_respect_skew() {
        let z = Zipf::new(5, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(counts[0] > counts[4] * 3, "rank 0 must dominate: {counts:?}");
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_support_panics() {
        Zipf::new(0, 1.0);
    }
}
