//! The paper's movies schema and a synthetic IMDb-like database generator.
//!
//! Schema (primary keys underlined in the paper):
//!
//! ```text
//! THEATRE(tid, name, phone, region)
//! PLAY(tid, mid, date)      MOVIE(mid, title, year)
//! CAST(mid, aid, award, role)   ACTOR(aid, name)
//! DIRECTED(mid, did)        DIRECTOR(did, name)
//! GENRE(mid, genre)
//! ```
//!
//! Popularity (which movies play, which actors are cast, which genres occur)
//! is Zipf-skewed, standing in for the IMDb snapshot the paper used.

use crate::names;
use crate::zipf::Zipf;
use pqp_engine::Database;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// Genres used by the generator (superset of the paper's examples).
pub const GENRES: &[&str] = &[
    "comedy",
    "thriller",
    "sci-fi",
    "adventure",
    "drama",
    "horror",
    "romance",
    "documentary",
    "animation",
    "noir",
    "western",
    "musical",
    "fantasy",
    "crime",
    "war",
    "mystery",
    "biography",
    "family",
    "sport",
    "history",
];

/// Theatre regions.
pub const REGIONS: &[&str] = &["downtown", "uptown", "suburbs", "waterfront", "old-town"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MovieDbConfig {
    pub movies: usize,
    pub theatres: usize,
    /// Distinct play dates (the paper's queries filter on a date).
    pub days: usize,
    /// Movies scheduled per theatre per day.
    pub plays_per_day: usize,
    /// Zipf exponent for popularity skew.
    pub skew: f64,
    pub seed: u64,
}

impl Default for MovieDbConfig {
    fn default() -> MovieDbConfig {
        MovieDbConfig {
            movies: 2_000,
            theatres: 40,
            days: 14,
            plays_per_day: 6,
            skew: 0.8,
            seed: 0xC0FFEE,
        }
    }
}

impl MovieDbConfig {
    /// A small instance for unit tests.
    pub fn tiny() -> MovieDbConfig {
        MovieDbConfig { movies: 60, theatres: 5, days: 4, plays_per_day: 3, ..Default::default() }
    }
}

/// Value pools: the literals actually present in a generated database, used
/// by the profile and query generators so preferences/selections hit data.
#[derive(Debug, Clone, Default)]
pub struct ValuePools {
    pub genres: Vec<String>,
    pub regions: Vec<String>,
    pub actor_names: Vec<String>,
    pub director_names: Vec<String>,
    pub dates: Vec<String>,
    pub years: Vec<i64>,
    pub titles: Vec<String>,
}

/// A generated movies database plus its value pools.
pub struct MovieDb {
    pub db: Database,
    pub pools: ValuePools,
    pub config: MovieDbConfig,
}

/// Create the (empty) movies catalog with keys and foreign keys.
pub fn movies_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "THEATRE",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("phone", DataType::Str),
                ColumnDef::new("region", DataType::Str),
            ],
        )
        .with_primary_key(&["tid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "PLAY",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("date", DataType::Str),
            ],
        )
        .with_foreign_key(&["tid"], "THEATRE", &["tid"])
        .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "ACTOR",
            vec![ColumnDef::new("aid", DataType::Int), ColumnDef::new("name", DataType::Str)],
        )
        .with_primary_key(&["aid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "CAST",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("aid", DataType::Int),
                ColumnDef::nullable("award", DataType::Str),
                ColumnDef::nullable("role", DataType::Str),
            ],
        )
        .with_foreign_key(&["mid"], "MOVIE", &["mid"])
        .with_foreign_key(&["aid"], "ACTOR", &["aid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "DIRECTOR",
            vec![ColumnDef::new("did", DataType::Int), ColumnDef::new("name", DataType::Str)],
        )
        .with_primary_key(&["did"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "DIRECTED",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("did", DataType::Int)],
        )
        .with_foreign_key(&["mid"], "MOVIE", &["mid"])
        .with_foreign_key(&["did"], "DIRECTOR", &["did"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        )
        .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
    )
    .unwrap();
    c.validate_foreign_keys().unwrap();
    c
}

/// Generate a full database instance.
pub fn generate(config: MovieDbConfig) -> MovieDb {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let catalog = movies_catalog();
    let mut pools = ValuePools::default();

    let n_actors = (config.movies / 2).max(20);
    let n_directors = (config.movies / 8).max(5);

    // ACTOR.
    {
        let t = catalog.table("ACTOR").unwrap();
        let mut t = t.write();
        for aid in 0..n_actors {
            let name = names::person_name(&mut rng, aid);
            pools.actor_names.push(name.clone());
            t.insert(vec![Value::Int(aid as i64), Value::Str(name)]).unwrap();
        }
    }
    // DIRECTOR.
    {
        let t = catalog.table("DIRECTOR").unwrap();
        let mut t = t.write();
        for did in 0..n_directors {
            let name = names::person_name(&mut rng, did + 100_000);
            pools.director_names.push(name.clone());
            t.insert(vec![Value::Int(did as i64), Value::Str(name)]).unwrap();
        }
    }
    // MOVIE + GENRE + CAST + DIRECTED.
    let genre_zipf = Zipf::new(GENRES.len(), config.skew);
    let actor_zipf = Zipf::new(n_actors, config.skew);
    let director_zipf = Zipf::new(n_directors, config.skew);
    {
        let movies = catalog.table("MOVIE").unwrap();
        let genres = catalog.table("GENRE").unwrap();
        let casts = catalog.table("CAST").unwrap();
        let directed = catalog.table("DIRECTED").unwrap();
        let mut movies = movies.write();
        let mut genres = genres.write();
        let mut casts = casts.write();
        let mut directed = directed.write();
        for mid in 0..config.movies {
            let title = names::movie_title(&mut rng, mid);
            let year = 1950 + rng.gen_range(0..75i64);
            pools.titles.push(title.clone());
            if !pools.years.contains(&year) {
                pools.years.push(year);
            }
            movies
                .insert(vec![Value::Int(mid as i64), Value::Str(title), Value::Int(year)])
                .unwrap();
            // 1–3 distinct genres.
            let n_genres = 1 + rng.gen_range(0..3usize);
            let mut seen = Vec::new();
            for _ in 0..n_genres {
                let g = GENRES[genre_zipf.sample(&mut rng)];
                if !seen.contains(&g) {
                    seen.push(g);
                    genres.insert(vec![Value::Int(mid as i64), Value::str(g)]).unwrap();
                }
            }
            // 2–7 distinct cast members.
            let cast_size = 2 + rng.gen_range(0..6usize);
            let mut aids = Vec::new();
            for _ in 0..cast_size {
                let aid = actor_zipf.sample(&mut rng);
                if !aids.contains(&aid) {
                    aids.push(aid);
                    let award = if rng.gen_bool(0.05) { Value::str("oscar") } else { Value::Null };
                    let role = if rng.gen_bool(0.4) { Value::str("lead") } else { Value::Null };
                    casts
                        .insert(vec![Value::Int(mid as i64), Value::Int(aid as i64), award, role])
                        .unwrap();
                }
            }
            // Exactly one director.
            let did = director_zipf.sample(&mut rng);
            directed.insert(vec![Value::Int(mid as i64), Value::Int(did as i64)]).unwrap();
        }
    }
    pools.genres = GENRES.iter().map(|s| s.to_string()).collect();
    pools.regions = REGIONS.iter().map(|s| s.to_string()).collect();

    // THEATRE + PLAY.
    let movie_zipf = Zipf::new(config.movies, config.skew);
    {
        let theatres = catalog.table("THEATRE").unwrap();
        let plays = catalog.table("PLAY").unwrap();
        let mut theatres = theatres.write();
        let mut plays = plays.write();
        for tid in 0..config.theatres {
            let name = names::theatre_name(&mut rng, tid);
            let region = REGIONS[rng.gen_range(0..REGIONS.len())];
            let phone = format!("210-{:07}", rng.gen_range(0..10_000_000u32));
            theatres
                .insert(vec![
                    Value::Int(tid as i64),
                    Value::Str(name),
                    Value::Str(phone),
                    Value::str(region),
                ])
                .unwrap();
        }
        for day in 0..config.days {
            let date = format!("2003-07-{:02}", day + 1);
            pools.dates.push(date.clone());
            for tid in 0..config.theatres {
                for _ in 0..config.plays_per_day {
                    let mid = movie_zipf.sample(&mut rng);
                    plays
                        .insert(vec![
                            Value::Int(tid as i64),
                            Value::Int(mid as i64),
                            Value::str(&date),
                        ])
                        .unwrap();
                }
            }
        }
    }

    // Secondary indexes on every join column and selectable attribute —
    // the access paths a production deployment (and the paper's Oracle
    // setup) would have.
    for (table, columns) in [
        ("PLAY", &["tid", "mid", "date"][..]),
        ("GENRE", &["mid", "genre"][..]),
        ("CAST", &["mid", "aid"][..]),
        ("DIRECTED", &["mid", "did"][..]),
        ("ACTOR", &["name"][..]),
        ("DIRECTOR", &["name"][..]),
        ("THEATRE", &["region"][..]),
        ("MOVIE", &["year"][..]),
    ] {
        let t = catalog.table(table).unwrap();
        let mut t = t.write();
        for col in columns {
            t.create_index(col).unwrap();
        }
    }

    MovieDb { db: Database::new(catalog), pools, config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_expected_cardinalities() {
        let c = movies_catalog();
        let joins = c.schema_joins();
        // PLAY→MOVIE is to-one, MOVIE→PLAY is to-many.
        let j = joins
            .iter()
            .find(|j| j.from_table == "PLAY" && j.to_table == "MOVIE" && j.from_column == "mid")
            .unwrap();
        assert_eq!(j.cardinality, pqp_storage::Cardinality::ToOne);
        let j = joins.iter().find(|j| j.from_table == "MOVIE" && j.to_table == "GENRE").unwrap();
        assert_eq!(j.cardinality, pqp_storage::Cardinality::ToMany);
    }

    #[test]
    fn generated_db_is_consistent() {
        let m = generate(MovieDbConfig::tiny());
        let c = m.db.catalog();
        assert_eq!(c.table("MOVIE").unwrap().read().len(), 60);
        assert_eq!(c.table("THEATRE").unwrap().read().len(), 5);
        assert_eq!(c.table("PLAY").unwrap().read().len(), 5 * 4 * 3);
        assert!(c.table("GENRE").unwrap().read().len() >= 60);
        assert!(c.table("CAST").unwrap().read().len() >= 2 * 60 / 2);
        assert_eq!(c.table("DIRECTED").unwrap().read().len(), 60);

        // Referential integrity: every PLAY row points at a real movie.
        let rs = m.db.run("select count(*) from PLAY PL, MOVIE MV where PL.mid = MV.mid").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int((5 * 4 * 3) as i64));
    }

    #[test]
    fn pools_reflect_data() {
        let m = generate(MovieDbConfig::tiny());
        assert!(!m.pools.actor_names.is_empty());
        assert!(!m.pools.dates.is_empty());
        // A pooled date actually selects rows.
        let rs = m
            .db
            .run(&format!("select count(*) from PLAY PL where PL.date = '{}'", m.pools.dates[0]))
            .unwrap();
        assert!(rs.rows[0][0].as_i64().unwrap() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(MovieDbConfig::tiny());
        let b = generate(MovieDbConfig::tiny());
        assert_eq!(a.pools.titles, b.pools.titles);
        let qa = a.db.run("select count(*) from GENRE").unwrap();
        let qb = b.db.run("select count(*) from GENRE").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn genre_popularity_is_skewed() {
        let m = generate(MovieDbConfig::tiny());
        let rs = m
            .db
            .run("select GN.genre, count(*) as n from GENRE GN group by GN.genre order by n desc")
            .unwrap();
        let top = rs.rows[0][1].as_i64().unwrap();
        let bottom = rs.rows.last().unwrap()[1].as_i64().unwrap();
        assert!(top >= bottom * 2, "top {top} vs bottom {bottom}");
    }
}
