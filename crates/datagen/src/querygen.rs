//! Random conjunctive SPJ query generation over the movies schema (the
//! paper's "100 randomly created queries").
//!
//! A query is a random connected walk over the schema graph (1–3 relations),
//! one equality selection drawn from the value pools (so results are
//! non-trivial), and a plain-column projection (as MQ integration requires).

use crate::movies::ValuePools;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_sql::ast::Query;
use pqp_sql::builder as b;
use pqp_sql::Select;

/// Configuration for query generation.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Maximum number of relations in the FROM clause.
    pub max_tables: usize,
    /// Probability that the query carries an equality selection. 1.0 gives
    /// the selective queries of Figures 6–9; 0.0 gives *broad* queries whose
    /// execution cost is dominated by result size (the regime where
    /// personalization pays for itself — Figure 10).
    pub selection_probability: f64,
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> QueryGenConfig {
        QueryGenConfig { max_tables: 3, selection_probability: 1.0, seed: 0xDEAD }
    }
}

impl QueryGenConfig {
    /// Broad (selection-free) queries.
    pub fn broad() -> QueryGenConfig {
        QueryGenConfig { selection_probability: 0.0, ..Default::default() }
    }
}

/// Undirected schema-graph edges as (table, column, table, column).
const EDGES: &[(&str, &str, &str, &str)] = &[
    ("THEATRE", "tid", "PLAY", "tid"),
    ("PLAY", "mid", "MOVIE", "mid"),
    ("MOVIE", "mid", "GENRE", "mid"),
    ("MOVIE", "mid", "CAST", "mid"),
    ("CAST", "aid", "ACTOR", "aid"),
    ("MOVIE", "mid", "DIRECTED", "mid"),
    ("DIRECTED", "did", "DIRECTOR", "did"),
];

/// Default projection column per table (a human-meaningful attribute).
fn projection_of(table: &str) -> (&'static str, &'static str) {
    match table {
        "THEATRE" => ("THEATRE", "name"),
        "PLAY" => ("PLAY", "date"),
        "MOVIE" => ("MOVIE", "title"),
        "GENRE" => ("GENRE", "genre"),
        "CAST" => ("CAST", "mid"),
        "ACTOR" => ("ACTOR", "name"),
        "DIRECTED" => ("DIRECTED", "mid"),
        "DIRECTOR" => ("DIRECTOR", "name"),
        _ => unreachable!("unknown table {table}"),
    }
}

/// Selection candidates per table from the pools.
fn selection_of(
    table: &str,
    pools: &ValuePools,
    rng: &mut impl Rng,
) -> Option<(&'static str, pqp_storage::Value)> {
    use pqp_storage::Value;
    let pick = |v: &Vec<String>, rng: &mut dyn Rng| -> Option<String> {
        if v.is_empty() {
            None
        } else {
            Some(v[(rng.next_u32() as usize) % v.len()].clone())
        }
    };
    match table {
        "PLAY" => Some(("date", Value::Str(pick(&pools.dates, rng)?))),
        "GENRE" => Some(("genre", Value::Str(pick(&pools.genres, rng)?))),
        "THEATRE" => Some(("region", Value::Str(pick(&pools.regions, rng)?))),
        "ACTOR" => Some(("name", Value::Str(pick(&pools.actor_names, rng)?))),
        "DIRECTOR" => Some(("name", Value::Str(pick(&pools.director_names, rng)?))),
        "MOVIE" => {
            if pools.years.is_empty() {
                None
            } else {
                Some(("year", Value::Int(pools.years[rng.gen_range(0..pools.years.len())])))
            }
        }
        _ => None,
    }
}

/// Short alias for a table (MV, PL, GN, ...).
fn alias_of(table: &str, taken: &mut Vec<String>) -> String {
    let base: String = table.chars().filter(|c| c.is_ascii_alphabetic()).take(2).collect();
    let mut name = base.to_ascii_uppercase();
    let mut i = 1;
    while taken.iter().any(|t| t.eq_ignore_ascii_case(&name)) {
        i += 1;
        name = format!("{}{}", base.to_ascii_uppercase(), i);
    }
    taken.push(name.clone());
    name
}

/// Tables carrying a selectable attribute (pure link tables do not).
fn supports_selection(table: &str) -> bool {
    !matches!(table, "CAST" | "DIRECTED")
}

/// Generate one random conjunctive SPJ query.
pub fn generate_query(pools: &ValuePools, rng: &mut SmallRng, config: &QueryGenConfig) -> Query {
    // Random connected walk over the schema graph. Keep growing past the
    // target until at least one selection-capable table is present, so every
    // generated query carries an equality selection (as the experiments
    // assume).
    let start = EDGES[rng.gen_range(0..EDGES.len())].0;
    let mut tables: Vec<&str> = vec![start];
    let target = 1 + rng.gen_range(0..config.max_tables.max(1));
    loop {
        let done = tables.len() >= target && tables.iter().any(|t| supports_selection(t));
        if done {
            break;
        }
        let candidates: Vec<&(&str, &str, &str, &str)> = EDGES
            .iter()
            .filter(|(a, _, c, _)| {
                (tables.contains(a) && !tables.contains(c))
                    || (tables.contains(c) && !tables.contains(a))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let e = candidates[rng.gen_range(0..candidates.len())];
        if tables.contains(&e.0) {
            tables.push(e.2);
        } else {
            tables.push(e.0);
        }
    }

    // Aliases.
    let mut taken = Vec::new();
    let aliases: Vec<(String, &str)> =
        tables.iter().map(|t| (alias_of(t, &mut taken), *t)).collect();
    let alias_for = |table: &str| -> &str {
        &aliases.iter().find(|(_, t)| *t == table).expect("table present").0
    };

    // Join conjuncts for every schema edge fully inside the chosen set.
    let mut conjuncts = Vec::new();
    for (a, ac, c, cc) in EDGES {
        if tables.contains(a) && tables.contains(c) {
            conjuncts.push(b::eq(b::col(alias_for(a), *ac), b::col(alias_for(c), *cc)));
        }
    }

    // One equality selection on a random participating table (unless this
    // is a broad query).
    if rng.gen_bool(config.selection_probability.clamp(0.0, 1.0)) {
        let mut order: Vec<&str> = tables.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for t in order {
            if let Some((col, value)) = selection_of(t, pools, rng) {
                conjuncts.push(b::eq(b::col(alias_for(t), col), pqp_sql::Expr::Literal(value)));
                break;
            }
        }
    }

    // Projection: the start table's display column.
    let (pt, pc) = projection_of(start);
    let projection = vec![b::item(b::col(alias_for(pt), pc))];

    Query::from_select(Select {
        distinct: false,
        projection,
        from: aliases.iter().map(|(a, t)| b::table(*t, a.clone())).collect(),
        selection: b::and_all(conjuncts),
        group_by: Vec::new(),
        having: None,
    })
}

/// Generate `count` queries with a shared RNG stream.
pub fn generate_queries(count: usize, pools: &ValuePools, config: &QueryGenConfig) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..count).map(|_| generate_query(pools, &mut rng, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{generate, MovieDbConfig};
    use pqp_core::QueryGraph;

    #[test]
    fn queries_parse_print_and_run() {
        let m = generate(MovieDbConfig::tiny());
        let queries = generate_queries(50, &m.pools, &QueryGenConfig::default());
        assert_eq!(queries.len(), 50);
        for q in &queries {
            let text = q.to_string();
            pqp_sql::parse_query(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            m.db.run_query(q).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        }
    }

    #[test]
    fn queries_map_onto_the_personalization_graph() {
        let m = generate(MovieDbConfig::tiny());
        let queries = generate_queries(30, &m.pools, &QueryGenConfig::default());
        for q in &queries {
            let s = q.as_select().unwrap();
            let g = QueryGraph::from_select(s, m.db.catalog()).unwrap();
            assert!(g.is_connected(), "disconnected query: {q}");
            assert!(!g.selections.is_empty(), "query without selection: {q}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = generate(MovieDbConfig::tiny());
        let a = generate_queries(5, &m.pools, &QueryGenConfig::default());
        let c = generate_queries(5, &m.pools, &QueryGenConfig::default());
        assert_eq!(a, c);
    }

    #[test]
    fn respects_max_tables() {
        let m = generate(MovieDbConfig::tiny());
        let qs =
            generate_queries(30, &m.pools, &QueryGenConfig { max_tables: 2, ..Default::default() });
        for q in qs {
            assert!(q.as_select().unwrap().from.len() <= 2, "{q}");
        }
    }
}
