//! A second domain — the bookstore of the paper's introduction ("are there
//! any good new books?") — demonstrating that the personalization layer is
//! schema-agnostic.

use crate::names;
use crate::zipf::Zipf;
use pqp_engine::Database;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

/// Book categories.
pub const CATEGORIES: &[&str] = &[
    "fantasy",
    "art",
    "cooking",
    "history",
    "science",
    "mystery",
    "poetry",
    "travel",
    "biography",
    "children",
];

/// Create the (empty) bookstore catalog.
///
/// ```text
/// BOOK(bid, title, year)        AUTHOR(aid, name)
/// WROTE(bid, aid)               CATEGORY(bid, category)
/// STORE(sid, name, district)    STOCK(sid, bid, arrival)
/// ```
pub fn bookstore_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "BOOK",
            vec![
                ColumnDef::new("bid", DataType::Int),
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["bid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "AUTHOR",
            vec![ColumnDef::new("aid", DataType::Int), ColumnDef::new("name", DataType::Str)],
        )
        .with_primary_key(&["aid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "WROTE",
            vec![ColumnDef::new("bid", DataType::Int), ColumnDef::new("aid", DataType::Int)],
        )
        .with_foreign_key(&["bid"], "BOOK", &["bid"])
        .with_foreign_key(&["aid"], "AUTHOR", &["aid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "CATEGORY",
            vec![ColumnDef::new("bid", DataType::Int), ColumnDef::new("category", DataType::Str)],
        )
        .with_foreign_key(&["bid"], "BOOK", &["bid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "STORE",
            vec![
                ColumnDef::new("sid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("district", DataType::Str),
            ],
        )
        .with_primary_key(&["sid"]),
    )
    .unwrap();
    c.create_table(
        TableSchema::new(
            "STOCK",
            vec![
                ColumnDef::new("sid", DataType::Int),
                ColumnDef::new("bid", DataType::Int),
                ColumnDef::new("arrival", DataType::Str),
            ],
        )
        .with_foreign_key(&["sid"], "STORE", &["sid"])
        .with_foreign_key(&["bid"], "BOOK", &["bid"]),
    )
    .unwrap();
    c.validate_foreign_keys().unwrap();
    c
}

/// Generate a small bookstore database. Returns the database plus the author
/// names (for building profiles).
pub fn generate_bookstore(books: usize, seed: u64) -> (Database, Vec<String>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let catalog = bookstore_catalog();
    let n_authors = (books / 2).max(10);
    let mut author_names = Vec::with_capacity(n_authors);
    {
        let t = catalog.table("AUTHOR").unwrap();
        let mut t = t.write();
        for aid in 0..n_authors {
            let name = names::person_name(&mut rng, aid);
            author_names.push(name.clone());
            t.insert(vec![Value::Int(aid as i64), Value::Str(name)]).unwrap();
        }
    }
    let author_zipf = Zipf::new(n_authors, 0.9);
    let cat_zipf = Zipf::new(CATEGORIES.len(), 0.8);
    {
        let books_t = catalog.table("BOOK").unwrap();
        let wrote = catalog.table("WROTE").unwrap();
        let cats = catalog.table("CATEGORY").unwrap();
        let mut books_t = books_t.write();
        let mut wrote = wrote.write();
        let mut cats = cats.write();
        for bid in 0..books {
            let title = names::movie_title(&mut rng, bid);
            let year = 1990 + rng.gen_range(0..35i64);
            books_t
                .insert(vec![Value::Int(bid as i64), Value::Str(title), Value::Int(year)])
                .unwrap();
            let n_auth = 1 + usize::from(rng.gen_bool(0.2));
            let mut aids = Vec::new();
            for _ in 0..n_auth {
                let aid = author_zipf.sample(&mut rng);
                if !aids.contains(&aid) {
                    aids.push(aid);
                    wrote.insert(vec![Value::Int(bid as i64), Value::Int(aid as i64)]).unwrap();
                }
            }
            let n_cats = 1 + usize::from(rng.gen_bool(0.3));
            let mut seen = Vec::new();
            for _ in 0..n_cats {
                let cat = CATEGORIES[cat_zipf.sample(&mut rng)];
                if !seen.contains(&cat) {
                    seen.push(cat);
                    cats.insert(vec![Value::Int(bid as i64), Value::str(cat)]).unwrap();
                }
            }
        }
    }
    let book_zipf = Zipf::new(books, 0.8);
    {
        let stores = catalog.table("STORE").unwrap();
        let stock = catalog.table("STOCK").unwrap();
        let mut stores = stores.write();
        let mut stock = stock.write();
        for sid in 0..5 {
            stores
                .insert(vec![
                    Value::Int(sid as i64),
                    Value::Str(format!("{} Books {sid}", names::theatre_name(&mut rng, sid))),
                    Value::str(["center", "north", "south"][sid % 3]),
                ])
                .unwrap();
            for week in 0..4 {
                for _ in 0..books.min(12) {
                    let bid = book_zipf.sample(&mut rng);
                    stock
                        .insert(vec![
                            Value::Int(sid as i64),
                            Value::Int(bid as i64),
                            Value::Str(format!("2003-w{week}")),
                        ])
                        .unwrap();
                }
            }
        }
    }
    for (table, columns) in [
        ("WROTE", &["bid", "aid"][..]),
        ("CATEGORY", &["bid", "category"][..]),
        ("STOCK", &["sid", "bid", "arrival"][..]),
        ("AUTHOR", &["name"][..]),
    ] {
        let t = catalog.table(table).unwrap();
        let mut t = t.write();
        for col in columns {
            t.create_index(col).unwrap();
        }
    }
    (Database::new(catalog), author_names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bookstore_generates_and_queries() {
        let (db, authors) = generate_bookstore(50, 3);
        assert!(!authors.is_empty());
        let rs = db
            .run(
                "select B.title from BOOK B, CATEGORY C \
                 where B.bid = C.bid and C.category = 'fantasy'",
            )
            .unwrap();
        assert!(!rs.is_empty(), "zipf-skewed categories should populate fantasy");
        let rs = db
            .run(&format!(
                "select B.title from BOOK B, WROTE W, AUTHOR A \
                 where B.bid = W.bid and W.aid = A.aid and A.name = '{}'",
                authors[0].replace('\'', "''")
            ))
            .unwrap();
        assert!(!rs.is_empty(), "most popular author must have books");
    }

    #[test]
    fn cardinalities_support_personalization() {
        let c = bookstore_catalog();
        // WROTE→AUTHOR is to-one; AUTHOR→WROTE is to-many.
        assert_eq!(c.join_cardinality("AUTHOR", "aid").unwrap(), pqp_storage::Cardinality::ToOne);
        assert_eq!(c.join_cardinality("WROTE", "aid").unwrap(), pqp_storage::Cardinality::ToMany);
    }
}
