//! Synthetic (but human-looking) name generation for actors, directors,
//! theatres and titles.

use pqp_obs::rng::Rng;

const SYLLABLES: &[&str] = &[
    "ka", "ro", "mi", "ta", "lin", "ver", "son", "del", "mar", "que", "an", "bel", "cor", "dan",
    "el", "fin", "gor", "hal", "is", "jun", "kel", "lor", "men", "nor", "ol", "pra", "rin", "sal",
    "tor", "ul", "vi", "wen",
];

const TITLE_WORDS: &[&str] = &[
    "Last",
    "Dark",
    "Silent",
    "Golden",
    "Broken",
    "Hidden",
    "Lost",
    "Final",
    "Midnight",
    "Red",
    "Winter",
    "Summer",
    "Iron",
    "Glass",
    "Paper",
    "Stolen",
    "Burning",
    "Frozen",
    "Distant",
    "Forgotten",
    "Electric",
    "Crimson",
    "Silver",
    "Wild",
];

const TITLE_NOUNS: &[&str] = &[
    "Dictator",
    "Mohican",
    "Garden",
    "River",
    "Empire",
    "Letter",
    "Mirror",
    "Station",
    "Harbor",
    "Orchard",
    "Voyage",
    "Promise",
    "Shadow",
    "Citadel",
    "Horizon",
    "Sonata",
    "Labyrinth",
    "Meridian",
    "Paradox",
    "Reckoning",
];

fn syllable_word(rng: &mut impl Rng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => w,
    }
}

/// A person name like "K. Rovermi" (initial + surname), unique-ified by an
/// ordinal when collisions matter to the caller.
pub fn person_name(rng: &mut impl Rng, ordinal: usize) -> String {
    let initial = (b'A' + rng.gen_range(0..26u8)) as char;
    let syllables = 2 + rng.gen_range(0..2usize);
    format!("{initial}. {}{}", syllable_word(rng, syllables), ordinal)
}

/// A movie title like "The Burning Meridian".
pub fn movie_title(rng: &mut impl Rng, ordinal: usize) -> String {
    let adj = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
    let noun = TITLE_NOUNS[rng.gen_range(0..TITLE_NOUNS.len())];
    format!("The {adj} {noun} {ordinal}")
}

/// A theatre name like "Kareldel Cinema".
pub fn theatre_name(rng: &mut impl Rng, ordinal: usize) -> String {
    format!("{} Cinema {ordinal}", syllable_word(rng, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_obs::rng::SmallRng;

    #[test]
    fn names_are_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..5).map(|i| person_name(&mut rng, i)).collect()
        };
        let b: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..5).map(|i| person_name(&mut rng, i)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ordinals_make_names_unique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let names: Vec<String> = (0..100).map(|i| movie_title(&mut rng, i)).collect();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn shapes_look_right() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(person_name(&mut rng, 3).contains(". "));
        assert!(movie_title(&mut rng, 3).starts_with("The "));
        assert!(theatre_name(&mut rng, 3).contains("Cinema"));
    }
}
