//! # pqp-datagen
//!
//! Synthetic data for the reproduction: the paper's movies schema with an
//! IMDb-like Zipf-skewed instance generator, a bookstore domain (the
//! introduction's motivating example), plus the experimental apparatus — a
//! profile generator ("synthetic user profiles ... produced with the use of
//! a profile generator") and a random conjunctive-query generator ("a set of
//! 100 randomly created queries").

pub mod bookstore;
pub mod movies;
pub mod names;
pub mod profilegen;
pub mod querygen;
pub mod zipf;

pub use bookstore::{bookstore_catalog, generate_bookstore, CATEGORIES};
pub use movies::{generate, movies_catalog, MovieDb, MovieDbConfig, ValuePools, GENRES, REGIONS};
pub use profilegen::{generate_profile, generate_profiles, ProfileGenConfig};
pub use querygen::{generate_queries, generate_query, QueryGenConfig};
pub use zipf::Zipf;
