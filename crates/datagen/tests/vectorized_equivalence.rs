//! The ISSUE's corpus-level differential check: over a generated movies
//! database (Zipf-skewed, multi-page, multi-batch tables) and the standard
//! random SPJ query workload, batched execution must return byte-identical
//! rows to the tuple-at-a-time path — serially and under a 4-thread budget
//! (the `PQP_THREADS=4` shape, set here via [`ExecOptions`] rather than the
//! environment so parallel test binaries don't race on env vars).

use pqp_datagen::{generate, generate_queries, MovieDbConfig, QueryGenConfig};
use pqp_engine::ExecOptions;

#[test]
fn batched_matches_tuple_over_movie_corpus() {
    let m = generate(MovieDbConfig::default());
    let db = &m.db;
    let selective = generate_queries(60, &m.pools, &QueryGenConfig::default());
    let broad = generate_queries(20, &m.pools, &QueryGenConfig::broad());
    let budgets = [ExecOptions::serial(), ExecOptions::with_threads(4).min_parallel_rows(512)];
    for query in selective.iter().chain(&broad) {
        let plan = db.plan(query).unwrap();
        for opts in &budgets {
            let tuple = db.run_plan_with(&plan, &opts.batched(false)).unwrap();
            let batched = db.run_plan_with(&plan, &opts.batched(true)).unwrap();
            assert_eq!(
                tuple.rows,
                batched.rows,
                "batched diverged (threads={}) on `{query}`:\n{}",
                opts.threads,
                plan.explain()
            );
        }
    }
}
