//! Chaos suite: fault injection at every named failpoint site, driven
//! through the service front door.
//!
//! What this file proves:
//!
//! 1. with failpoints armed at six-plus sites (storage scan, hash-join
//!    build, parallel worker, profile shard lock, preference selection,
//!    plan cache, service entry), a 100-query mixed workload never aborts
//!    the process — every failure comes back as a typed
//!    [`pqp_service::Error`];
//! 2. sessions a failpoint did *not* touch return byte-identical rows to a
//!    no-failpoint run of the same workload;
//! 3. each injected fault is isolated: the query after the fault succeeds.
//!
//! The failpoint registry is process-global, so every test serializes on
//! one mutex and clears the registry on the way in and out.
//! `scripts/verify.sh` runs this file both under the default test
//! parallelism and with `RUST_TEST_THREADS=1`.

use pqp_core::{PersonalizeOptions, Profile, Rewrite};
use pqp_engine::{Database, EngineError, ExecOptions};
use pqp_obs::{failpoint, BudgetReason};
use pqp_service::{DegradeLevel, Error, Service, ServiceConfig, UserId};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};
use std::sync::Mutex;

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints<R>(f: impl FnOnce() -> R) -> R {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    failpoint::set_seed(0xC4A05);
    let r = f();
    failpoint::clear();
    r
}

/// Run `f` with panic output suppressed (the suite injects panics on
/// purpose; their backtraces are noise, not signal).
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

fn movie_db(movies: i64) -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    let genres = ["comedy", "drama", "thriller", "scifi"];
    for mid in 0..movies {
        c.table("MOVIE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), format!("Movie {mid}").as_str().into()])
            .unwrap();
        c.table("GENRE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), genres[(mid % 4) as usize].into()])
            .unwrap();
    }
    Database::new(c)
}

fn profile_for(user: &str, genre: &str) -> Profile {
    let mut p = Profile::new(user);
    p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    p.add_selection("GENRE", "genre", genre, 0.8).unwrap();
    p
}

const USERS: [(&str, &str); 4] =
    [("ana", "comedy"), ("bob", "drama"), ("cid", "thriller"), ("dee", "scifi")];

const SQLS: [&str; 3] = [
    "select MV.title from MOVIE MV",
    "select MV.title from MOVIE MV where MV.mid < 40",
    "select MV.title, G.genre from MOVIE MV, GENRE G where MV.mid = G.mid",
];

fn chaos_service() -> Service {
    let service = Service::with_config(
        movie_db(80),
        ServiceConfig {
            options: PersonalizeOptions::builder().k(2).l(1).build(),
            rewrite: Rewrite::Mq,
            exec: ExecOptions::with_threads(2).min_parallel_rows(8),
            ..ServiceConfig::default()
        },
    );
    for (u, g) in USERS {
        service.install_profile(profile_for(u, g)).unwrap();
    }
    service
}

/// The 100-query mixed workload. Profile mutations are confined to a
/// dedicated "churn" user so every other user's sessions are comparable
/// across runs; mutations run under `catch_unwind` because the shard-lock
/// failpoint escalates to a panic by design.
fn run_workload(service: &Service) -> Vec<Result<pqp_service::Answer, Error>> {
    let mut out = Vec::with_capacity(100);
    for i in 0..100usize {
        if i % 10 == 9 {
            let doi = 0.05 + (i as f64) / 250.0;
            let _ = quietly(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.add_selection("churn", "GENRE", "genre", "comedy", doi)
                }))
            });
        }
        let (user, _) = USERS[i % USERS.len()];
        let sql = SQLS[i % SQLS.len()];
        out.push(service.session(user).query(sql));
    }
    out
}

/// The headline chaos test: failpoints armed at seven sites, 100 queries,
/// zero process aborts, every failure typed, and every answer a failpoint
/// did not touch byte-identical to the baseline run.
#[test]
fn mixed_workload_under_chaos_never_aborts_and_stays_deterministic() {
    // Baseline first, outside the failpoint window.
    let baseline_service = chaos_service();
    let baseline: Vec<_> = run_workload(&baseline_service)
        .into_iter()
        .map(|r| r.expect("baseline workload has no faults").rows)
        .collect();

    with_failpoints(|| {
        // Build (and populate) the service first: the chaos window covers
        // the query workload, not fixture setup.
        let service = chaos_service();
        failpoint::configure_many(
            "storage.scan=3%error(chaos scan);\
             join.build=3%error(chaos build);\
             par.worker=2%error(chaos worker);\
             shard.lock=20%panic(chaos lock);\
             select.pref=3%error(chaos selection);\
             select.budget=3%error(chaos budget);\
             plan.cache=10%error(chaos cache)",
        )
        .unwrap();
        assert!(failpoint::active_sites().len() >= 6, "chaos must cover at least six sites");

        let results = run_workload(&service);

        let mut faults = 0usize;
        let mut degraded = 0usize;
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(answer) if answer.meta.degraded == DegradeLevel::None => {
                    // Untouched (or served through the cache-bypass path):
                    // must match the baseline byte for byte.
                    assert_eq!(
                        answer.rows, baseline[i],
                        "unaffected query {i} diverged from the no-failpoint run"
                    );
                }
                Ok(answer) => {
                    // Personalization degraded to fit an injected budget
                    // trip: still a successful, well-formed answer.
                    degraded += 1;
                    assert!(answer.meta.degraded > DegradeLevel::None);
                }
                Err(
                    Error::Internal(_)
                    | Error::Engine(_)
                    | Error::Storage(_)
                    | Error::BudgetExceeded(_),
                ) => faults += 1,
                Err(other) => panic!("query {i}: unexpected error class: {other:?}"),
            }
        }
        // The seed is fixed, so the workload reliably exercises faults; the
        // exact split between errors and degradations is scheduling-
        // dependent, the floor is not.
        assert!(faults + degraded > 0, "chaos run injected nothing — specs or seed broken");
        assert_eq!(service.in_flight(), 0, "no admission slot leaked");

        // The service survives the storm: with failpoints cleared, every
        // user gets exactly the baseline answer again.
        failpoint::clear();
        for (i, rows) in run_workload(&service).into_iter().enumerate() {
            let answer = rows.expect("post-chaos workload is fault-free");
            assert_eq!(answer.rows, baseline[i], "query {i} after the storm");
        }
    });
}

/// Each named site, fired deterministically once, yields its typed error
/// and leaves the service healthy. Together with the workload test this
/// pins every site the issue names.
#[test]
fn every_site_fails_one_query_with_a_typed_error_then_recovers() {
    with_failpoints(|| {
        let service = chaos_service();
        let join_sql = SQLS[2];

        // `join.build` runs as a profile-less user: ana's personalized
        // rewrite shrinks the GENRE side enough that the planner picks the
        // index-nested-loop path and the hash-join build site never fires;
        // the unrewritten 80x80 join is forced back onto the hash join.
        type ErrPred = fn(&Error) -> bool;
        let cases: [(&str, &str, &str, ErrPred); 4] = [
            ("storage.scan", "ana", "1*error(disk gremlin)", |e| {
                matches!(e, Error::Engine(EngineError::Storage(_)))
            }),
            (
                "join.build",
                "nobody",
                "1*error(no build memory)",
                |e| matches!(e, Error::Internal(m) if m.contains("join.build")),
            ),
            (
                "select.pref",
                "ana",
                "1*error(selection fault)",
                |e| matches!(e, Error::Internal(m) if m.contains("select.pref")),
            ),
            (
                "service.query",
                "ana",
                "1*error(front door fault)",
                |e| matches!(e, Error::Internal(m) if m.contains("service.query")),
            ),
        ];
        for (site, user, spec, matches_expected) in cases {
            // A warm plan cache would skip the personalization phase (and
            // with it some sites); every case starts cold.
            service.clear_caches();
            failpoint::configure(site, spec).unwrap();
            let err = match service.session(user).query(join_sql) {
                Err(e) => e,
                Ok(a) => panic!("site {site}: armed query unexpectedly succeeded: {a:?}"),
            };
            assert!(matches_expected(&err), "site {site}: got {err:?}");
            let ok = service.session(user).query(join_sql).unwrap();
            assert!(!ok.rows.rows.is_empty(), "site {site}: service did not recover");
            // A fault must never poison the caches with a wrong entry.
            assert_eq!(ok.rows, service.session(user).query(join_sql).unwrap().rows);
        }
    });
}

/// A parallel worker panic (not just an error) is contained to its query.
#[test]
fn parallel_worker_panic_fails_one_query_only() {
    with_failpoints(|| {
        let service = chaos_service();
        failpoint::configure("par.worker", "1*panic(chaos worker)").unwrap();
        let err = quietly(|| service.session("ana").query(SQLS[2])).unwrap_err();
        assert!(matches!(&err, Error::Internal(m) if m.contains("panicked")), "got {err:?}");
        assert!(service.session("ana").query(SQLS[2]).is_ok());
        assert_eq!(service.in_flight(), 0);
    });
}

/// A panic at the service entry point is caught by the session-level
/// `catch_unwind`, and a batch containing the poisoned request fails only
/// that slot.
#[test]
fn service_entry_panic_is_isolated_even_in_batches() {
    with_failpoints(|| {
        let service = chaos_service();
        failpoint::configure("service.query", "1*panic(front door chaos)").unwrap();
        let requests: Vec<(UserId, String)> = (0..4)
            .map(|i| {
                (
                    UserId::from(USERS[i % USERS.len()].0),
                    format!("select MV.title from MOVIE MV where MV.mid < {}", 10 + i),
                )
            })
            .collect();
        let batch = quietly(|| service.query_batch(&requests, 2));
        let failures: Vec<&Error> = batch.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1, "exactly the poisoned request fails: {batch:?}");
        assert!(matches!(failures[0], Error::Internal(m) if m.contains("panicked")));
        assert_eq!(service.in_flight(), 0, "panicked query released its admission slot");
    });
}

/// A panic while a profile shard lock is held (the `shard.lock` failpoint
/// escalates to panic by design) poisons nothing permanently: the store
/// recovers and keeps serving reads and writes.
#[test]
fn shard_lock_panic_leaves_profile_store_usable() {
    with_failpoints(|| {
        let service = chaos_service();
        failpoint::configure("shard.lock", "1*panic(chaos lock)").unwrap();
        let caught = quietly(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                service.add_selection("ana", "GENRE", "genre", "drama", 0.7)
            }))
        });
        assert!(caught.is_err(), "the armed shard.lock failpoint must panic");
        // Poison recovery: the same shard serves reads and writes again.
        assert!(service.profile("ana").is_some());
        service.add_selection("ana", "GENRE", "genre", "drama", 0.7).unwrap();
        let answer = service.session("ana").query(SQLS[0]).unwrap();
        assert_eq!(answer.meta.k, 2, "post-recovery mutation is in effect");
    });
}

/// The degradation ladder, stepped deterministically with `select.budget`:
/// one injected trip degrades to ReducedK, two to NativeReducedK, three to
/// MandatoryOnly, four to the unpersonalized floor. Degraded plans are
/// never cached.
#[test]
fn injected_budget_trips_walk_the_degradation_ladder() {
    with_failpoints(|| {
        let service = chaos_service();
        let expectations: [(&str, DegradeLevel, usize); 4] = [
            ("1*error", DegradeLevel::ReducedK, 1),
            ("2*error", DegradeLevel::NativeReducedK, 1),
            ("3*error", DegradeLevel::MandatoryOnly, 0),
            ("4*error", DegradeLevel::Unpersonalized, 0),
        ];
        for (spec, level, k) in expectations {
            failpoint::configure("select.budget", spec).unwrap();
            let answer = service.session("ana").query(SQLS[0]).unwrap();
            assert_eq!(answer.meta.degraded, level, "spec {spec}");
            assert_eq!(answer.meta.k, k, "spec {spec}");
            assert!(!answer.meta.cache.is_hit(), "degraded answers never come from the cache");
            failpoint::remove("select.budget");
            // The degraded plan was not cached: the next full-fidelity query
            // recomputes (miss), then caching resumes as normal.
            let full = service.session("ana").query(SQLS[0]).unwrap();
            assert_eq!(full.meta.degraded, DegradeLevel::None);
            assert_eq!(full.meta.k, 1);
            service.clear_caches();
        }
    });
}

/// With degradation disabled, an injected personalization budget trip
/// surfaces directly as `BudgetExceeded` with the `Injected` reason.
#[test]
fn degradation_disabled_surfaces_injected_budget_trip() {
    with_failpoints(|| {
        let service = Service::with_config(
            movie_db(20),
            ServiceConfig { degrade: false, ..ServiceConfig::default() },
        );
        service.install_profile(profile_for("ana", "comedy")).unwrap();
        failpoint::configure("select.budget", "1*error").unwrap();
        match service.session("ana").query(SQLS[0]) {
            Err(Error::BudgetExceeded(b)) => assert_eq!(b.reason, BudgetReason::Injected),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(service.session("ana").query(SQLS[0]).is_ok());
    });
}

/// An injected plan-cache fault degrades to a recompute: same rows, just
/// not served from the cache — a cache is never load-bearing.
#[test]
fn plan_cache_fault_degrades_to_recompute_with_identical_rows() {
    with_failpoints(|| {
        let service = chaos_service();
        let warm = service.session("ana").query(SQLS[0]).unwrap();
        assert!(service.session("ana").query(SQLS[0]).unwrap().meta.cache.is_hit());

        failpoint::configure("plan.cache", "1*error(cache gremlin)").unwrap();
        let bypassed = service.session("ana").query(SQLS[0]).unwrap();
        assert!(!bypassed.meta.cache.is_hit(), "injected cache fault is a miss");
        assert_eq!(bypassed.rows, warm.rows, "recompute returns identical rows");
        assert!(service.session("ana").query(SQLS[0]).unwrap().meta.cache.is_hit(), "cache heals");
    });
}
