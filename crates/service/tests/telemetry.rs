//! Telemetry guarantees under concurrency, through the public API only:
//!
//! 1. N threads hammering `Session::query` produce exactly one `QueryRecord`
//!    per call, with unique monotonic sequence numbers and a bounded ring;
//! 2. `SHOW METRICS` / `SHOW QUERIES` / `SHOW CACHES` return live data that
//!    agrees with `Service::telemetry()` while traffic is running;
//! 3. the slow-query ring retains outliers that fast traffic has already
//!    evicted from the recent ring.
//!
//! `scripts/verify.sh` runs this file both under the default test
//! parallelism and with `RUST_TEST_THREADS=1`.

use pqp_core::Profile;
use pqp_engine::Database;
use pqp_service::{Service, ServiceConfig, TelemetryConfig};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use std::collections::HashSet;

fn movie_db() -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    let genres = ["comedy", "drama", "thriller", "scifi"];
    for mid in 0..20i64 {
        c.table("MOVIE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), format!("Movie {mid}").as_str().into()])
            .unwrap();
        c.table("GENRE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), genres[(mid % 4) as usize].into()])
            .unwrap();
    }
    Database::new(c)
}

fn service_with_users(config: ServiceConfig, genres: &[&str]) -> Service {
    let service = Service::with_config(movie_db(), config);
    for (i, genre) in genres.iter().enumerate() {
        let mut p = Profile::new(format!("user{i}"));
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p.add_selection("GENRE", "genre", *genre, 0.8).unwrap();
        service.install_profile(p).unwrap();
    }
    service
}

const Q: &str = "select MV.title from MOVIE MV";

/// 8 threads x 50 queries each: every call leaves exactly one record, the
/// sequence numbers are a permutation of 1..=400 (no loss, no duplication
/// under contention), and the recent ring respects its capacity.
#[test]
fn parallel_sessions_log_every_query_exactly_once() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    let service = service_with_users(
        ServiceConfig {
            telemetry: TelemetryConfig {
                query_log_capacity: 64,
                slow_query_ms: 0, // disable slow classification for this test
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        &["comedy", "drama", "thriller", "scifi"],
    );
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            scope.spawn(move || {
                let session = service.session(format!("user{}", t % 4));
                for _ in 0..PER_THREAD {
                    session.query(Q).unwrap();
                }
            });
        }
    });

    let total = (THREADS * PER_THREAD) as u64;
    let log = service.telemetry().log();
    assert_eq!(log.total(), total, "one record per query, none lost");
    assert_eq!(log.len(), 64, "the ring stays at its capacity");

    let recent = log.recent(usize::MAX);
    let seqs: HashSet<u64> = recent.iter().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), recent.len(), "sequence numbers are unique");
    assert!(seqs.iter().all(|&s| s >= 1 && s <= total));
    let newest = recent.iter().map(|r| r.seq).max().unwrap();
    assert_eq!(newest, total, "the newest record carries the last sequence number");
    assert!(recent.iter().all(|r| r.ok && r.user.starts_with("user")));

    let snap = service.telemetry().snapshot();
    assert_eq!(snap.queries, total);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.latency_ms.lifetime.count() as u64, total);
}

/// SHOW answers agree with the programmatic telemetry accessor, while other
/// threads keep the counters moving (the introspection path takes the same
/// locks as recording and must not deadlock against it).
#[test]
fn show_answers_are_live_and_consistent_under_traffic() {
    let service = service_with_users(ServiceConfig::default(), &["comedy", "drama"]);
    std::thread::scope(|scope| {
        for t in 0..2 {
            let service = &service;
            scope.spawn(move || {
                let session = service.session(format!("user{t}"));
                for _ in 0..100 {
                    session.query(Q).unwrap();
                }
            });
        }
        let session = service.session("user0");
        for _ in 0..20 {
            let metrics = session.query("SHOW METRICS").unwrap();
            let total = metrics
                .rows
                .rows
                .iter()
                .find(|r| r[0] == Value::Str("queries_total".into()))
                .map(|r| r[1].clone())
                .unwrap();
            let Value::Int(total) = total else { panic!("queries_total must be an int") };
            assert!((0..=200).contains(&total));
            let queries = session.query("SHOW QUERIES LIMIT 5").unwrap();
            assert!(queries.rows.rows.len() <= 5);
        }
    });

    // Quiescent: SHOW and the accessor must agree exactly.
    let snap = service.telemetry().snapshot();
    assert_eq!(snap.queries, 200, "SHOW traffic itself is not logged");
    let metrics = service.session("user0").query("show metrics").unwrap();
    let shown = metrics
        .rows
        .rows
        .iter()
        .find(|r| r[0] == Value::Str("queries_total".into()))
        .map(|r| r[1].clone());
    assert_eq!(shown, Some(Value::Int(200)));

    let caches = service.session("user0").query("show caches").unwrap();
    let stats = service.cache_stats();
    let hits_col = caches.rows.columns.iter().position(|c| c == "hits").unwrap();
    assert_eq!(caches.rows.rows[0][hits_col], Value::Int(stats.prepared.hits as i64));
    assert_eq!(caches.rows.rows[1][hits_col], Value::Int(stats.plans.hits as i64));
}

/// With a 0 ms slow threshold every query is an outlier: the slow ring
/// keeps the oldest queries alive after the recent ring (capacity 4) has
/// dropped them, and `SHOW QUERIES` keeps serving the recent view.
#[test]
fn slow_ring_outlives_recent_ring_eviction() {
    let service = service_with_users(
        ServiceConfig {
            telemetry: TelemetryConfig {
                query_log_capacity: 4,
                slow_log_capacity: 100,
                slow_query_ms: 1, // generated queries on this tiny db run in µs..ms
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        &["comedy"],
    );
    let session = service.session("user0");
    // A personalization-heavy first query is the outlier candidate; then a
    // burst of trivially-fast distinct queries floods the recent ring.
    session.query(Q).unwrap();
    for mid in 0..8 {
        session.query(&format!("select MV.title from MOVIE MV where MV.mid = {mid}")).unwrap();
    }
    let log = service.telemetry().log();
    assert_eq!(log.total(), 9);
    assert_eq!(log.len(), 4);
    let slow = log.slow(usize::MAX);
    let recent = log.recent(usize::MAX);
    assert!(recent.iter().all(|r| r.seq > 5), "burst evicted the early records");
    // Whatever crossed the 1 ms threshold stayed retained in seq order;
    // every slow record is marked and the counter agrees.
    assert!(slow.iter().all(|r| r.slow));
    assert_eq!(service.telemetry().snapshot().slow, slow.len() as u64);
}
