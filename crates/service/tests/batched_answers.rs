//! The service-level face of the batched-execution contract: a service
//! running the default (batched) executor must hand back the same
//! personalized answers — rows, columns, rewrite, K/M, degradation — as one
//! pinned to the tuple-at-a-time path. Cached plans are
//! execution-strategy-agnostic, so the comparison holds across cold and
//! cached executions of the same query.

use pqp_core::Profile;
use pqp_engine::{Database, ExecOptions};
use pqp_service::{Service, ServiceConfig};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

fn movie_db() -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    let genres = ["comedy", "drama", "thriller", "scifi"];
    for mid in 0..200i64 {
        c.table("MOVIE")
            .unwrap()
            .write()
            .insert(vec![
                mid.into(),
                format!("Movie {mid}").as_str().into(),
                (1960 + mid % 60).into(),
            ])
            .unwrap();
        c.table("GENRE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), genres[(mid % 4) as usize].into()])
            .unwrap();
    }
    Database::new(c)
}

fn service_with(exec: ExecOptions) -> Service {
    let service =
        Service::with_config(movie_db(), ServiceConfig { exec, ..ServiceConfig::default() });
    let mut p = Profile::new("ana");
    p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    p.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
    p.add_selection("MOVIE", "year", 2000i64, 0.6).unwrap();
    service.install_profile(p).unwrap();
    service
}

const QUERIES: &[&str] = &[
    "select MV.title from MOVIE MV",
    "select MV.title, MV.year from MOVIE MV where MV.year > 1990",
    "select MV.title, GE.genre from MOVIE MV, GENRE GE where MV.mid = GE.mid",
];

#[test]
fn batched_service_answers_match_tuple_service() {
    assert!(ServiceConfig::default().exec.batched, "service default is the batched executor");
    let batched = service_with(ExecOptions::default());
    let tuple = service_with(ExecOptions::default().batched(false));
    for sql in QUERIES {
        // Twice per query: a cold plan-cache pass and a cached pass.
        for pass in 0..2 {
            let a = batched.session("ana").query(sql).unwrap();
            let b = tuple.session("ana").query(sql).unwrap();
            assert_eq!(a.rows.columns, b.rows.columns, "columns diverged on `{sql}`");
            assert_eq!(a.rows.rows, b.rows.rows, "rows diverged on `{sql}` (pass {pass})");
            assert_eq!(a.meta.rewrite, b.meta.rewrite);
            assert_eq!((a.meta.k, a.meta.m), (b.meta.k, b.meta.m), "K/M diverged on `{sql}`");
            assert_eq!(a.meta.degraded, b.meta.degraded);
        }
    }
}
