//! Concurrency guarantees of the serving layer:
//!
//! 1. two threads mutating the same user's profile while a third queries it
//!    never deadlock, and epoch-based plan-cache invalidation is observed;
//! 2. `query_batch` returns exactly what a sequential request loop would,
//!    for a mixed-user workload.
//!
//! `scripts/verify.sh` runs this file both under the default test
//! parallelism and with `RUST_TEST_THREADS=1`.

use pqp_core::{PersonalizeOptions, Profile, Rewrite};
use pqp_engine::Database;
use pqp_service::{Service, ServiceConfig, UserId};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

fn movie_db() -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    let genres = ["comedy", "drama", "thriller", "scifi"];
    for mid in 0..20i64 {
        c.table("MOVIE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), format!("Movie {mid}").as_str().into()])
            .unwrap();
        c.table("GENRE")
            .unwrap()
            .write()
            .insert(vec![mid.into(), genres[(mid % 4) as usize].into()])
            .unwrap();
    }
    Database::new(c)
}

fn profile_for(user: &str, genre: &str) -> Profile {
    let mut p = Profile::new(user);
    p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    p.add_selection("GENRE", "genre", genre, 0.8).unwrap();
    p
}

const Q: &str = "select MV.title from MOVIE MV";

/// Two mutator threads hammer the same user's profile while a query thread
/// runs the same SQL in a loop. The test must terminate (no deadlock), every
/// query must succeed, and the epoch must advance by exactly one per
/// mutation (none lost, none coalesced).
#[test]
fn concurrent_mutation_and_query_same_user() {
    let service = Service::new(movie_db());
    service.install_profile(profile_for("ana", "comedy")).unwrap();
    let epoch_at_install = service.epoch("ana");
    // Prime both caches so the threads below contend on warm state.
    service.session("ana").query(Q).unwrap();

    const MUTATIONS_PER_THREAD: usize = 50;
    const QUERIES: usize = 120;
    let genres = ["comedy", "drama", "thriller", "scifi"];

    std::thread::scope(|scope| {
        for t in 0..2usize {
            let service = &service;
            scope.spawn(move || {
                for i in 0..MUTATIONS_PER_THREAD {
                    let doi = 0.05
                        + 0.9 * ((t * MUTATIONS_PER_THREAD + i) as f64)
                            / (2.0 * MUTATIONS_PER_THREAD as f64);
                    service
                        .add_selection("ana", "GENRE", "genre", genres[i % 4], doi)
                        .expect("mutation under contention");
                }
            });
        }
        let service = &service;
        scope.spawn(move || {
            let session = service.session("ana");
            for _ in 0..QUERIES {
                let answer = session.query(Q).expect("query under contention");
                assert!(answer.rows.len() <= 20);
            }
        });
    });

    // Every mutation bumped the epoch exactly once, none were lost.
    assert_eq!(
        service.epoch("ana"),
        epoch_at_install + 2 * MUTATIONS_PER_THREAD as u64,
        "each of the {} mutations advanced the epoch",
        2 * MUTATIONS_PER_THREAD
    );
    // The profile converged to a valid state: all four genre selections
    // present (each thread upserts the same four keys).
    let ana = service.profile("ana").unwrap();
    assert_eq!(ana.preferences().len(), 5, "join + four genre selections");

    // Every lookup resolved to exactly one of hit/miss/stale, and no query
    // was ever served a plan from a superseded epoch: recomputes (miss or
    // stale) account for every epoch the query thread observed.
    let stats = service.cache_stats();
    assert_eq!(
        stats.plans.hits + stats.plans.misses + stats.plans.stale,
        1 + QUERIES as u64,
        "prime + {QUERIES} queries each resolved once: {stats:?}"
    );

    // Epoch invalidation is observed: one more mutation makes the cached
    // entry (whatever epoch it was rebuilt under) stale, and the next query
    // recomputes instead of serving it.
    let stale_before = stats.plans.stale;
    service.add_selection("ana", "GENRE", "genre", "comedy", 0.99).unwrap();
    let settled = service.session("ana");
    assert!(!settled.query(Q).unwrap().meta.cache.is_hit(), "post-mutation query recomputes");
    assert_eq!(service.cache_stats().plans.stale, stale_before + 1);
    assert!(settled.query(Q).unwrap().meta.cache.is_hit(), "cache serves hits once mutations stop");
}

/// Racing `update_profile` calls to one user commit optimistically: every
/// closure's effect lands (retried on conflict, never silently dropped),
/// the stored epoch advances once per committed mutation, and reads never
/// observe a torn or rolled-back profile.
#[test]
fn concurrent_updates_to_one_user_lose_nothing() {
    let service = Service::new(movie_db());
    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            scope.spawn(move || {
                // Each thread upserts a *distinct* selection key, so a lost
                // update is directly visible as a missing preference.
                service
                    .update_profile("ana", |p| {
                        p.add_selection("GENRE", "genre", format!("genre-{t}").as_str(), 0.5)
                            .map(|_| ())
                    })
                    .expect("update under contention")
                    .expect("valid preference");
            });
        }
    });
    let ana = service.profile("ana").expect("profile upserted");
    assert_eq!(ana.preferences().len(), THREADS, "no update was lost");
    assert_eq!(service.epoch("ana"), THREADS as u64, "one epoch per committed mutation");
}

/// Distinct users are independent: concurrent mutations to one user never
/// invalidate another user's cached plans.
#[test]
fn mutations_do_not_invalidate_other_users() {
    let service = Service::new(movie_db());
    service.install_profile(profile_for("ana", "comedy")).unwrap();
    service.install_profile(profile_for("bob", "drama")).unwrap();
    let bob = service.session("bob");
    bob.query(Q).unwrap();

    let service = &service;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..40 {
                service
                    .add_selection("ana", "GENRE", "genre", "scifi", 0.01 + 0.01 * i as f64)
                    .unwrap();
            }
        });
        scope.spawn(move || {
            let bob = service.session("bob");
            for _ in 0..40 {
                assert!(bob.query(Q).unwrap().meta.cache.is_hit(), "bob's plan stays valid");
            }
        });
    });
}

/// `query_batch` over a mixed-user workload returns, slot for slot, exactly
/// the rows a sequential `Session::query` loop produces.
#[test]
fn batch_matches_sequential_for_mixed_users() {
    let users = ["ana", "bob", "cid", "dee", "eve"];
    let genres = ["comedy", "drama", "thriller", "scifi", "comedy"];
    let sqls = [
        Q,
        "select MV.title from MOVIE MV where MV.mid < 10",
        "select MV.mid, MV.title from MOVIE MV",
    ];

    let build = || {
        let service = Service::with_config(
            movie_db(),
            ServiceConfig {
                options: PersonalizeOptions::builder().k(2).l(1).build(),
                rewrite: Rewrite::Mq,
                ..ServiceConfig::default()
            },
        );
        for (u, g) in users.iter().zip(genres) {
            service.install_profile(profile_for(u, g)).unwrap();
        }
        service
    };

    // 50-request mixed-user workload with plenty of duplicates.
    let requests: Vec<(UserId, String)> = (0..50)
        .map(|i| (UserId::from(users[i % users.len()]), sqls[i % sqls.len()].to_string()))
        .collect();

    let sequential_service = build();
    let sequential: Vec<_> = requests
        .iter()
        .map(|(u, sql)| sequential_service.session(u.clone()).query(sql).unwrap().rows)
        .collect();

    for workers in [1, 4, 8] {
        let service = build();
        let batch = service.query_batch(&requests, workers);
        assert_eq!(batch.len(), requests.len());
        for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
            let got = got.as_ref().expect("batch request succeeds");
            assert_eq!(&got.rows, want, "request {i} differs with {workers} workers");
        }
    }
}

/// Batches keep running when individual requests fail: errors come back in
/// the right slots, successes are unaffected.
#[test]
fn batch_reports_per_request_errors_in_order() {
    let service = Service::new(movie_db());
    service.install_profile(profile_for("ana", "comedy")).unwrap();
    let requests = vec![
        (UserId::from("ana"), Q.to_string()),
        (UserId::from("ana"), "select from where".to_string()),
        (UserId::from("ana"), Q.to_string()),
    ];
    let batch = service.query_batch(&requests, 2);
    assert!(batch[0].is_ok());
    assert!(matches!(batch[1], Err(pqp_service::Error::Parse(_))));
    assert!(batch[2].is_ok());
}
