//! Always-on production telemetry for the serving layer.
//!
//! Every query that crosses the [`Session::query`](crate::Session::query)
//! boundary leaves one [`QueryRecord`] behind: who ran what, how long each
//! pipeline phase took, how many rows moved, what the caches did, how far
//! the degradation ladder stepped, and how much of the governor budget was
//! consumed. Records land in a bounded in-memory ring (the **query log**),
//! slow outliers are force-retained in a second ring so a burst of fast
//! traffic cannot evict the one query worth investigating, and an optional
//! JSON-lines file sink streams every record to disk for offline analysis.
//!
//! On top of the log, [`Telemetry`] keeps O(1)-memory aggregates: a
//! [`WindowedHistogram`] of total latency (lifetime + last 60 s) and SLO
//! counters (errors, slow, degraded, over-deadline, budget-exceeded,
//! overloaded, panics caught). Both views are queryable in-band through
//! `SHOW METRICS` / `SHOW QUERIES [LIMIT n]` / `SHOW CACHES` — ordinary
//! statements returning ordinary result tables — and programmatically via
//! [`Service::telemetry`](crate::Service::telemetry).
//!
//! The whole module is built for the hot path: recording a query is one
//! mutex-guarded ring push plus a handful of relaxed atomic increments, and
//! the bench suite asserts the end-to-end overhead stays under 2% on the
//! governor micro-benchmark.

use pqp_engine::ResultSet;
use pqp_obs::{Json, WindowSnapshot, WindowedHistogram};
use pqp_storage::Value;
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of the telemetry subsystem. All knobs have environment
/// overrides so a deployed fleet can be tuned without code changes.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Entries retained in the recent-query ring.
    pub query_log_capacity: usize,
    /// Entries retained in the slow-query ring (outliers are kept here even
    /// after fast traffic has evicted them from the recent ring).
    pub slow_log_capacity: usize,
    /// Queries at or above this total latency are marked slow and
    /// force-retained (`0` disables slow tracking). Env: `PQP_SLOW_QUERY_MS`.
    pub slow_query_ms: u64,
    /// When set, every record is appended to this file as one JSON line.
    /// Env: `PQP_QUERY_LOG_FILE`.
    pub log_file: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        let slow_query_ms = std::env::var("PQP_SLOW_QUERY_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(250);
        let log_file = std::env::var("PQP_QUERY_LOG_FILE")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        TelemetryConfig { query_log_capacity: 512, slow_log_capacity: 128, slow_query_ms, log_file }
    }
}

/// Wall-clock time spent in each pipeline phase, in microseconds. Phases
/// that did not run (e.g. a plan-cache hit skips personalize and plan) stay
/// at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Parse + query-graph construction (zero on a prepared-cache hit).
    pub parse_us: u64,
    /// Preference selection and integration, summed across ladder retries.
    pub personalize_us: u64,
    /// Physical planning.
    pub plan_us: u64,
    /// Plan execution.
    pub execute_us: u64,
    /// End-to-end latency at the `Session::query` boundary (admission to
    /// answer), a superset of the phases above.
    pub total_us: u64,
}

/// One query's footprint in the log: the paper pipeline's phases plus the
/// serving-layer context around them.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Monotonic sequence number, assigned at record time (1-based).
    pub seq: u64,
    /// The user the session served.
    pub user: String,
    /// Canonical SQL when the query parsed, the raw text otherwise.
    pub sql: String,
    /// Whether the query returned rows (vs. a typed error).
    pub ok: bool,
    /// Stable kind label of the error ([`crate::Error::kind`]), if any.
    pub error_kind: Option<&'static str>,
    /// Rendered error message, if any.
    pub error: Option<String>,
    /// Per-phase latency breakdown.
    pub phases: PhaseBreakdown,
    /// Rows returned to the caller.
    pub rows_out: usize,
    /// Rows the executor scanned (governor progress counter).
    pub rows_scanned: u64,
    /// Peak tracked memory (governor progress counter).
    pub mem_bytes: u64,
    /// The planner's cardinality estimate for the executed plan, when one
    /// was produced (compare against `rows_out` for est-vs-actual).
    pub est_rows: Option<f64>,
    /// Prepared-query cache outcome: `"hit"`, `"miss"`, or `"-"` (not
    /// reached).
    pub prepared_cache: &'static str,
    /// Personalized-plan cache outcome: `"hit"`, `"stale"`, `"miss"`, or
    /// `"-"` (not reached).
    pub plan_cache: &'static str,
    /// Degradation level the answer ran at ([`crate::DegradeLevel::label`]).
    pub degrade: &'static str,
    /// Preferences selected (K) for this answer.
    pub k: usize,
    /// Mandatory preferences (M) for this answer.
    pub m: usize,
    /// Governor deadline limit in ms, when one was armed (consumption is
    /// `phases.total_us`).
    pub deadline_ms: Option<u64>,
    /// Governor rows-scanned limit, when armed (consumption is
    /// `rows_scanned`).
    pub rows_limit: Option<u64>,
    /// Governor memory limit in bytes, when armed (consumption is
    /// `mem_bytes`).
    pub mem_limit: Option<u64>,
    /// Whether total latency reached the slow-query threshold (assigned at
    /// record time).
    pub slow: bool,
}

impl QueryRecord {
    /// The record as a JSON object (the shape of one sink line).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("seq", self.seq)
            .set("user", self.user.as_str())
            .set("sql", self.sql.as_str())
            .set("ok", self.ok)
            .set("parse_us", self.phases.parse_us)
            .set("personalize_us", self.phases.personalize_us)
            .set("plan_us", self.phases.plan_us)
            .set("execute_us", self.phases.execute_us)
            .set("total_us", self.phases.total_us)
            .set("rows_out", self.rows_out)
            .set("rows_scanned", self.rows_scanned)
            .set("mem_bytes", self.mem_bytes)
            .set("prepared_cache", self.prepared_cache)
            .set("plan_cache", self.plan_cache)
            .set("degrade", self.degrade)
            .set("k", self.k)
            .set("m", self.m)
            .set("slow", self.slow);
        if let Some(est) = self.est_rows {
            j = j.set("est_rows", est);
        }
        if let Some(ms) = self.deadline_ms {
            j = j.set("deadline_ms", ms);
        }
        if let Some(rows) = self.rows_limit {
            j = j.set("rows_limit", rows);
        }
        if let Some(bytes) = self.mem_limit {
            j = j.set("mem_limit", bytes);
        }
        if let Some(kind) = self.error_kind {
            j = j.set("error_kind", kind);
        }
        if let Some(e) = &self.error {
            j = j.set("error", e.as_str());
        }
        j
    }
}

/// The bounded query log: a recent ring, a slow ring, and the optional
/// JSON-lines sink. Thread-safe; pushes from concurrent queries serialize
/// on one short mutex.
#[derive(Debug)]
pub struct QueryLog {
    capacity: usize,
    slow_capacity: usize,
    slow_threshold_us: u64,
    seq: AtomicU64,
    rings: Mutex<Rings>,
    sink: Option<Mutex<std::fs::File>>,
}

#[derive(Debug, Default)]
struct Rings {
    recent: VecDeque<Arc<QueryRecord>>,
    slow: VecDeque<Arc<QueryRecord>>,
}

impl QueryLog {
    fn new(config: &TelemetryConfig) -> QueryLog {
        // The sink is best-effort: an unopenable path disables it rather
        // than failing service construction.
        let sink = config.log_file.as_ref().and_then(|path| {
            OpenOptions::new().create(true).append(true).open(path).ok().map(Mutex::new)
        });
        QueryLog {
            capacity: config.query_log_capacity.max(1),
            slow_capacity: config.slow_log_capacity.max(1),
            slow_threshold_us: config.slow_query_ms.saturating_mul(1_000),
            seq: AtomicU64::new(0),
            rings: Mutex::new(Rings::default()),
            sink,
        }
    }

    /// Record one query: assign its sequence number, classify it slow or
    /// not, push it into the ring(s) and the sink. Returns the stored
    /// record.
    fn push(&self, mut record: QueryRecord) -> Arc<QueryRecord> {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        record.slow =
            self.slow_threshold_us > 0 && record.phases.total_us >= self.slow_threshold_us;
        let record = Arc::new(record);
        {
            let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
            rings.recent.push_back(Arc::clone(&record));
            while rings.recent.len() > self.capacity {
                rings.recent.pop_front();
            }
            if record.slow {
                rings.slow.push_back(Arc::clone(&record));
                while rings.slow.len() > self.slow_capacity {
                    rings.slow.pop_front();
                }
            }
        }
        if let Some(sink) = &self.sink {
            // Render outside no lock but write under one so concurrent
            // lines never interleave. Write failures are swallowed:
            // telemetry must never fail a query.
            let line = record.to_json().render();
            let mut f = sink.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(f, "{line}");
        }
        record
    }

    /// The most recent records, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Arc<QueryRecord>> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.recent.iter().rev().take(limit).cloned().collect()
    }

    /// The retained slow outliers, newest first, at most `limit`.
    pub fn slow(&self, limit: usize) -> Vec<Arc<QueryRecord>> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.slow.iter().rev().take(limit).cloned().collect()
    }

    /// Total records ever pushed (not just the retained window).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records currently retained in the recent ring.
    pub fn len(&self) -> usize {
        self.rings.lock().unwrap_or_else(|e| e.into_inner()).recent.len()
    }

    /// Whether the recent ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One follower's replication progress, as tracked by the leader.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowerLag {
    /// The follower's address (as configured on the leader).
    pub addr: String,
    /// Highest log sequence the follower has acknowledged.
    pub ack_seq: u64,
    /// Entries the follower is behind the leader's log tip.
    pub lag: u64,
}

/// Point-in-time replication state of this node, published by the
/// replication layer (absent on single-node deployments). Surfaces in
/// `SHOW METRICS` as `repl.*` rows and in [`TelemetrySnapshot::repl`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplStatus {
    /// This node's identifier (`PQP_NODE_ID`).
    pub node_id: String,
    /// `"leader"` or `"follower"`.
    pub role: String,
    /// The current replication term (fencing token).
    pub term: u64,
    /// Highest sequence appended to the local mutation log.
    pub last_seq: u64,
    /// Highest sequence known durable (fsynced) locally.
    pub durable_seq: u64,
    /// Followers (including the leader itself) whose acknowledgement a
    /// mutation needs before the client sees success.
    pub quorum: usize,
    /// Per-follower acknowledgement progress (leader only; empty on
    /// followers).
    pub followers: Vec<FollowerLag>,
    /// WAL fsync latency, milliseconds: last-minute p50.
    pub fsync_p50_ms: f64,
    /// WAL fsync latency, milliseconds: last-minute p99.
    pub fsync_p99_ms: f64,
    /// Log-ship round trip (send entries → follower ack), ms: p50.
    pub ship_p50_ms: f64,
    /// Log-ship round trip (send entries → follower ack), ms: p99.
    pub ship_p99_ms: f64,
}

/// Point-in-time copy of the aggregate counters and latency views.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Queries recorded (successes and errors).
    pub queries: u64,
    /// Queries that returned a typed error.
    pub errors: u64,
    /// Queries at or above the slow threshold.
    pub slow: u64,
    /// Answers produced below full personalization fidelity.
    pub degraded: u64,
    /// Queries whose total latency exceeded their armed deadline.
    pub over_deadline: u64,
    /// Queries refused by the governor ([`crate::Error::BudgetExceeded`]).
    pub budget_exceeded: u64,
    /// Queries refused by admission control.
    pub overloaded: u64,
    /// Panics caught and isolated by the service.
    pub panics_caught: u64,
    /// Answers executed through the SQ rewrite.
    pub strategy_sq: u64,
    /// Answers executed through the MQ rewrite.
    pub strategy_mq: u64,
    /// Answers executed through the native rank operator.
    pub strategy_native_rank: u64,
    /// Degraded answers per ladder rung, in ladder order below
    /// [`crate::DegradeLevel::None`]: reduced-k, native-reduced-k,
    /// mandatory-only, unpersonalized.
    pub degrade_rungs: [u64; 4],
    /// Total latency in milliseconds: lifetime + sliding last-minute view.
    pub latency_ms: WindowSnapshot,
    /// Replication state, when this service runs under a replicated
    /// mutation log (`None` on single-node deployments).
    pub repl: Option<ReplStatus>,
}

/// The service's always-on telemetry: the query log plus O(1) aggregates.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    log: QueryLog,
    latency_ms: WindowedHistogram,
    queries: AtomicU64,
    errors: AtomicU64,
    slow: AtomicU64,
    degraded: AtomicU64,
    over_deadline: AtomicU64,
    budget_exceeded: AtomicU64,
    overloaded: AtomicU64,
    panics_caught: AtomicU64,
    strategy_sq: AtomicU64,
    strategy_mq: AtomicU64,
    strategy_native_rank: AtomicU64,
    degrade_rungs: [AtomicU64; 4],
    repl: Mutex<Option<ReplStatus>>,
}

impl Telemetry {
    /// Build the subsystem from its configuration.
    pub(crate) fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            log: QueryLog::new(&config),
            config,
            latency_ms: WindowedHistogram::default(),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            over_deadline: AtomicU64::new(0),
            budget_exceeded: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            strategy_sq: AtomicU64::new(0),
            strategy_mq: AtomicU64::new(0),
            strategy_native_rank: AtomicU64::new(0),
            degrade_rungs: Default::default(),
            repl: Mutex::new(None),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The query log (recent ring, slow ring, sink).
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// Record one completed query and update every aggregate.
    pub(crate) fn record(&self, record: QueryRecord) -> Arc<QueryRecord> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.latency_ms.record(record.phases.total_us as f64 / 1_000.0);
        if !record.ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if record.degrade != "none" {
            self.degraded.fetch_add(1, Ordering::Relaxed);
            let rung = match record.degrade {
                "reduced-k" => Some(0),
                "native-reduced-k" => Some(1),
                "mandatory-only" => Some(2),
                "unpersonalized" => Some(3),
                _ => None,
            };
            if let Some(i) = rung {
                self.degrade_rungs[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(deadline_ms) = record.deadline_ms {
            if record.phases.total_us > deadline_ms.saturating_mul(1_000) {
                self.over_deadline.fetch_add(1, Ordering::Relaxed);
            }
        }
        match record.error_kind {
            Some("budget") => {
                self.budget_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Some("overloaded") => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let stored = self.log.push(record);
        if stored.slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        stored
    }

    /// Publish this node's replication state. Called by the replication
    /// layer after every role change and periodically during shipping, so
    /// `SHOW METRICS` reflects live progress.
    pub fn set_repl_status(&self, status: ReplStatus) {
        *self.repl.lock().unwrap_or_else(|e| e.into_inner()) = Some(status);
    }

    /// The last published replication state (`None` when this service is
    /// not replicated).
    pub fn repl_status(&self) -> Option<ReplStatus> {
        self.repl.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Count one caught panic (the query itself is also recorded, as an
    /// internal error).
    pub(crate) fn note_panic(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Count the execution strategy an answer ran through (resolved, never
    /// `Auto`). `Original` answers — unpersonalized sessions or the ladder
    /// floor — are not a planner strategy and are not counted.
    pub(crate) fn note_strategy(&self, rewrite: pqp_core::Rewrite) {
        use pqp_core::Rewrite;
        match rewrite {
            Rewrite::Sq => self.strategy_sq.fetch_add(1, Ordering::Relaxed),
            Rewrite::Mq => self.strategy_mq.fetch_add(1, Ordering::Relaxed),
            Rewrite::NativeRank => self.strategy_native_rank.fetch_add(1, Ordering::Relaxed),
            _ => return,
        };
    }

    /// Snapshot every aggregate.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            over_deadline: self.over_deadline.load(Ordering::Relaxed),
            budget_exceeded: self.budget_exceeded.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            strategy_sq: self.strategy_sq.load(Ordering::Relaxed),
            strategy_mq: self.strategy_mq.load(Ordering::Relaxed),
            strategy_native_rank: self.strategy_native_rank.load(Ordering::Relaxed),
            degrade_rungs: [
                self.degrade_rungs[0].load(Ordering::Relaxed),
                self.degrade_rungs[1].load(Ordering::Relaxed),
                self.degrade_rungs[2].load(Ordering::Relaxed),
                self.degrade_rungs[3].load(Ordering::Relaxed),
            ],
            latency_ms: self.latency_ms.snapshot(),
            repl: self.repl_status(),
        }
    }

    /// The `SHOW METRICS` result table: one `(metric, value)` row per
    /// counter and latency quantile, lifetime first, then the sliding
    /// last-minute window.
    pub fn metrics_table(&self) -> ResultSet {
        let snap = self.snapshot();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let int = |name: &str, v: u64, rows: &mut Vec<Vec<Value>>| {
            rows.push(vec![Value::Str(name.to_string()), Value::Int(v as i64)]);
        };
        int("queries_total", snap.queries, &mut rows);
        int("errors_total", snap.errors, &mut rows);
        int("slow_queries_total", snap.slow, &mut rows);
        int("degraded_total", snap.degraded, &mut rows);
        int("over_deadline_total", snap.over_deadline, &mut rows);
        int("budget_exceeded_total", snap.budget_exceeded, &mut rows);
        int("overloaded_total", snap.overloaded, &mut rows);
        int("panics_caught_total", snap.panics_caught, &mut rows);
        int("planner.strategy.sq", snap.strategy_sq, &mut rows);
        int("planner.strategy.mq", snap.strategy_mq, &mut rows);
        int("planner.strategy.native_rank", snap.strategy_native_rank, &mut rows);
        int("service.degrade.rung.reduced-k", snap.degrade_rungs[0], &mut rows);
        int("service.degrade.rung.native-reduced-k", snap.degrade_rungs[1], &mut rows);
        int("service.degrade.rung.mandatory-only", snap.degrade_rungs[2], &mut rows);
        int("service.degrade.rung.unpersonalized", snap.degrade_rungs[3], &mut rows);
        let float = |name: &str, v: f64, rows: &mut Vec<Vec<Value>>| {
            rows.push(vec![Value::Str(name.to_string()), Value::Float(v)]);
        };
        let life = &snap.latency_ms.lifetime;
        float("latency_mean_ms", life.mean(), &mut rows);
        float("latency_p50_ms", life.p50(), &mut rows);
        float("latency_p95_ms", life.p95(), &mut rows);
        float("latency_p99_ms", life.p99(), &mut rows);
        float("latency_max_ms", life.max(), &mut rows);
        let win = &snap.latency_ms.window;
        let win_secs = snap.latency_ms.window_dur.as_secs_f64();
        rows.push(vec![Value::Str("window_seconds".into()), Value::Int(win_secs as i64)]);
        rows.push(vec![Value::Str("window_queries".into()), Value::Int(win.count() as i64)]);
        float("window_qps", win.count() as f64 / win_secs.max(1.0), &mut rows);
        float("window_p50_ms", win.p50(), &mut rows);
        float("window_p95_ms", win.p95(), &mut rows);
        float("window_p99_ms", win.p99(), &mut rows);
        if let Some(repl) = &snap.repl {
            rows.push(vec![Value::Str("repl.node_id".into()), Value::Str(repl.node_id.clone())]);
            rows.push(vec![Value::Str("repl.role".into()), Value::Str(repl.role.clone())]);
            int("repl.term", repl.term, &mut rows);
            int("repl.last_seq", repl.last_seq, &mut rows);
            int("repl.durable_seq", repl.durable_seq, &mut rows);
            int("repl.quorum", repl.quorum as u64, &mut rows);
            for f in &repl.followers {
                int(&format!("repl.follower.{}.ack_seq", f.addr), f.ack_seq, &mut rows);
                int(&format!("repl.follower.{}.lag", f.addr), f.lag, &mut rows);
            }
            float("repl.fsync_p50_ms", repl.fsync_p50_ms, &mut rows);
            float("repl.fsync_p99_ms", repl.fsync_p99_ms, &mut rows);
            float("repl.ship_p50_ms", repl.ship_p50_ms, &mut rows);
            float("repl.ship_p99_ms", repl.ship_p99_ms, &mut rows);
        }
        ResultSet { columns: vec!["metric".to_string(), "value".to_string()], rows }
    }

    /// The `SHOW QUERIES [LIMIT n]` result table: the most recent records,
    /// newest first, with the full phase breakdown per row.
    pub fn queries_table(&self, limit: usize) -> ResultSet {
        let columns = [
            "seq",
            "user",
            "ok",
            "total_ms",
            "parse_us",
            "personalize_us",
            "plan_us",
            "execute_us",
            "rows_out",
            "rows_scanned",
            "est_rows",
            "prepared_cache",
            "plan_cache",
            "degrade",
            "slow",
            "error",
            "sql",
        ];
        let rows = self
            .log
            .recent(limit)
            .into_iter()
            .map(|r| {
                vec![
                    Value::Int(r.seq as i64),
                    Value::Str(r.user.clone()),
                    Value::Bool(r.ok),
                    Value::Float(r.phases.total_us as f64 / 1_000.0),
                    Value::Int(r.phases.parse_us as i64),
                    Value::Int(r.phases.personalize_us as i64),
                    Value::Int(r.phases.plan_us as i64),
                    Value::Int(r.phases.execute_us as i64),
                    Value::Int(r.rows_out as i64),
                    Value::Int(r.rows_scanned as i64),
                    r.est_rows.map_or(Value::Null, Value::Float),
                    Value::Str(r.prepared_cache.to_string()),
                    Value::Str(r.plan_cache.to_string()),
                    Value::Str(r.degrade.to_string()),
                    Value::Bool(r.slow),
                    r.error.clone().map_or(Value::Null, Value::Str),
                    Value::Str(r.sql.clone()),
                ]
            })
            .collect();
        ResultSet { columns: columns.iter().map(|c| c.to_string()).collect(), rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(user: &str, total_us: u64, ok: bool) -> QueryRecord {
        QueryRecord {
            seq: 0,
            user: user.to_string(),
            sql: "SELECT MV.title FROM MOVIE MV".to_string(),
            ok,
            error_kind: if ok { None } else { Some("engine") },
            error: if ok { None } else { Some("boom".to_string()) },
            phases: PhaseBreakdown { total_us, execute_us: total_us, ..Default::default() },
            rows_out: 3,
            rows_scanned: 10,
            mem_bytes: 640,
            est_rows: Some(3.4),
            prepared_cache: "miss",
            plan_cache: "miss",
            degrade: "none",
            k: 1,
            m: 0,
            deadline_ms: None,
            rows_limit: None,
            mem_limit: None,
            slow: false,
        }
    }

    fn config() -> TelemetryConfig {
        TelemetryConfig {
            query_log_capacity: 4,
            slow_log_capacity: 2,
            slow_query_ms: 100,
            log_file: None,
        }
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let t = Telemetry::new(config());
        for i in 0..10 {
            t.record(record_with(&format!("u{i}"), 1_000, true));
        }
        let recent = t.log().recent(100);
        assert_eq!(recent.len(), 4, "ring stays at capacity");
        assert_eq!(recent[0].user, "u9", "newest first");
        assert_eq!(recent[3].user, "u6");
        assert_eq!(t.log().total(), 10);
        assert_eq!(recent[0].seq, 10, "sequence numbers are monotonic");
    }

    #[test]
    fn slow_ring_retains_outliers_evicted_from_recent() {
        let t = Telemetry::new(config());
        t.record(record_with("tortoise", 150_000, true)); // 150 ms ≥ 100 ms
        for i in 0..8 {
            t.record(record_with(&format!("hare{i}"), 1_000, true));
        }
        assert!(
            t.log().recent(100).iter().all(|r| r.user != "tortoise"),
            "fast traffic evicted the outlier from the recent ring"
        );
        let slow = t.log().slow(100);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].user, "tortoise");
        assert!(slow[0].slow);
        assert_eq!(t.snapshot().slow, 1);
    }

    #[test]
    fn counters_classify_records() {
        let t = Telemetry::new(config());
        t.record(record_with("a", 1_000, true));
        t.record(record_with("b", 1_000, false));
        let mut degraded = record_with("c", 1_000, true);
        degraded.degrade = "reduced-k";
        t.record(degraded);
        let mut late = record_with("d", 9_000, true);
        late.deadline_ms = Some(5);
        t.record(late);
        let mut refused = record_with("e", 10, false);
        refused.error_kind = Some("budget");
        t.record(refused);
        t.note_panic();
        let mut native = record_with("f", 1_000, true);
        native.degrade = "native-reduced-k";
        t.record(native);
        let snap = t.snapshot();
        assert_eq!(snap.queries, 6);
        assert_eq!(snap.errors, 2);
        assert_eq!(snap.degraded, 2);
        assert_eq!(snap.degrade_rungs, [1, 1, 0, 0], "one reduced-k, one native-reduced-k");
        assert_eq!(snap.over_deadline, 1);
        assert_eq!(snap.budget_exceeded, 1);
        assert_eq!(snap.panics_caught, 1);
        assert_eq!(snap.latency_ms.lifetime.count(), 6);
        assert!(snap.latency_ms.window.count() >= 6, "fresh samples are inside the window");
    }

    #[test]
    fn record_json_has_the_sink_schema() {
        let t = Telemetry::new(config());
        let mut r = record_with("ana", 2_500, false);
        r.deadline_ms = Some(50);
        r.rows_limit = Some(1_000);
        let stored = t.record(r);
        let j = stored.to_json();
        assert_eq!(j.get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("user").unwrap().as_str(), Some("ana"));
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("total_us").unwrap().as_i64(), Some(2_500));
        assert_eq!(j.get("deadline_ms").unwrap().as_i64(), Some(50));
        assert_eq!(j.get("rows_limit").unwrap().as_i64(), Some(1_000));
        assert_eq!(j.get("error_kind").unwrap().as_str(), Some("engine"));
        // The line parses back (what a log consumer will do).
        let back = Json::parse(&j.render()).unwrap();
        assert_eq!(back.get("user").unwrap().as_str(), Some("ana"));
    }

    #[test]
    fn sink_appends_one_json_line_per_record() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pqp_query_log_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let t = Telemetry::new(TelemetryConfig { log_file: Some(path.clone()), ..config() });
        t.record(record_with("ana", 1_000, true));
        t.record(record_with("bob", 2_000, true));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("user").unwrap().as_str(), Some("ana"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn show_tables_render_counters_and_records() {
        let t = Telemetry::new(config());
        t.record(record_with("ana", 1_000, true));
        let metrics = t.metrics_table();
        assert_eq!(metrics.columns, vec!["metric", "value"]);
        let get = |name: &str| {
            metrics.rows.iter().find(|r| r[0] == Value::Str(name.to_string())).map(|r| r[1].clone())
        };
        assert_eq!(get("queries_total"), Some(Value::Int(1)));
        assert_eq!(get("errors_total"), Some(Value::Int(0)));
        t.note_strategy(pqp_core::Rewrite::NativeRank);
        let metrics = t.metrics_table();
        let get = |name: &str| {
            metrics.rows.iter().find(|r| r[0] == Value::Str(name.to_string())).map(|r| r[1].clone())
        };
        assert_eq!(get("planner.strategy.native_rank"), Some(Value::Int(1)));
        assert_eq!(get("planner.strategy.sq"), Some(Value::Int(0)));
        assert_eq!(get("planner.strategy.mq"), Some(Value::Int(0)));
        assert_eq!(get("service.degrade.rung.native-reduced-k"), Some(Value::Int(0)));
        assert!(matches!(get("latency_p95_ms"), Some(Value::Float(v)) if v > 0.0));
        assert!(matches!(get("window_qps"), Some(Value::Float(v)) if v > 0.0));

        assert!(
            !metrics.rows.iter().any(|r| matches!(&r[0], Value::Str(s) if s.starts_with("repl."))),
            "single-node telemetry has no repl rows"
        );

        let queries = t.queries_table(10);
        assert_eq!(queries.rows.len(), 1);
        let seq_col = queries.columns.iter().position(|c| c == "seq").unwrap();
        let user_col = queries.columns.iter().position(|c| c == "user").unwrap();
        assert_eq!(queries.rows[0][seq_col], Value::Int(1));
        assert_eq!(queries.rows[0][user_col], Value::Str("ana".to_string()));
    }

    #[test]
    fn repl_status_surfaces_in_snapshot_and_metrics() {
        let t = Telemetry::new(config());
        assert!(t.repl_status().is_none());
        t.set_repl_status(ReplStatus {
            node_id: "n1".into(),
            role: "leader".into(),
            term: 3,
            last_seq: 40,
            durable_seq: 40,
            quorum: 2,
            followers: vec![
                FollowerLag { addr: "127.0.0.1:7001".into(), ack_seq: 40, lag: 0 },
                FollowerLag { addr: "127.0.0.1:7002".into(), ack_seq: 37, lag: 3 },
            ],
            fsync_p50_ms: 0.4,
            fsync_p99_ms: 1.9,
            ship_p50_ms: 0.2,
            ship_p99_ms: 0.9,
        });
        let snap = t.snapshot();
        let repl = snap.repl.expect("repl state published");
        assert_eq!(repl.role, "leader");
        assert_eq!(repl.followers.len(), 2);

        let metrics = t.metrics_table();
        let get = |name: &str| {
            metrics.rows.iter().find(|r| r[0] == Value::Str(name.to_string())).map(|r| r[1].clone())
        };
        assert_eq!(get("repl.node_id"), Some(Value::Str("n1".into())));
        assert_eq!(get("repl.role"), Some(Value::Str("leader".into())));
        assert_eq!(get("repl.term"), Some(Value::Int(3)));
        assert_eq!(get("repl.last_seq"), Some(Value::Int(40)));
        assert_eq!(get("repl.durable_seq"), Some(Value::Int(40)));
        assert_eq!(get("repl.quorum"), Some(Value::Int(2)));
        assert_eq!(get("repl.follower.127.0.0.1:7002.lag"), Some(Value::Int(3)));
        assert_eq!(get("repl.follower.127.0.0.1:7001.ack_seq"), Some(Value::Int(40)));
        assert!(matches!(get("repl.fsync_p99_ms"), Some(Value::Float(v)) if v > 1.0));

        // Re-publishing replaces, never accumulates.
        let mut again = t.repl_status().expect("still set");
        again.role = "follower".into();
        again.followers.clear();
        t.set_repl_status(again);
        let metrics = t.metrics_table();
        let roles: Vec<&Vec<Value>> =
            metrics.rows.iter().filter(|r| r[0] == Value::Str("repl.role".to_string())).collect();
        assert_eq!(roles.len(), 1);
        assert_eq!(roles[0][1], Value::Str("follower".into()));
    }
}
