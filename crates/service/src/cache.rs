//! A small FIFO-evicting cache used by the service's prepared-query and
//! personalized-plan caches.
//!
//! FIFO (rather than LRU) keeps `get` a pure read — no per-lookup
//! bookkeeping write — which lets the caller serve hits under a shared read
//! lock. Eviction order only matters under capacity pressure, where both
//! caches tolerate recomputing a dropped entry.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded map evicting its oldest-inserted entry on overflow.
#[derive(Debug)]
pub struct FifoCache<K, V> {
    capacity: usize,
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Hash + Eq + Clone, V> FifoCache<K, V> {
    /// A cache holding at most `capacity` entries (clamped to at least 1).
    pub fn new(capacity: usize) -> FifoCache<K, V> {
        FifoCache { capacity: capacity.max(1), map: HashMap::new(), order: VecDeque::new() }
    }

    /// Look up a key. A pure read: no recency bookkeeping.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Insert (or replace) an entry. Returns `true` when an *older* entry
    /// was evicted to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.map.insert(key.clone(), value).is_some() {
            return false; // replaced in place; insertion order unchanged
        }
        self.order.push_back(key);
        if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
            return true;
        }
        false
    }

    /// Remove every entry failing the predicate, preserving the insertion
    /// order of the survivors. Returns how many entries were removed.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &V) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|k, v| f(k, &*v));
        if self.map.len() != before {
            self.order.retain(|k| self.map.contains_key(k));
        }
        before - self.map.len()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Maximum number of entries before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut c = FifoCache::new(2);
        assert!(!c.insert("a", 1));
        assert!(!c.insert("b", 2));
        assert!(c.insert("c", 3), "inserting past capacity evicts");
        assert_eq!(c.get(&"a"), None, "oldest went first");
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacement_keeps_insertion_order() {
        let mut c = FifoCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(!c.insert("a", 10), "replacement is not an eviction");
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), None, "a is still the oldest insertion");
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn retain_drops_matching_entries_and_keeps_order() {
        let mut c = FifoCache::new(3);
        c.insert("a1", 1);
        c.insert("b", 2);
        c.insert("a2", 3);
        assert_eq!(c.retain(|k, _| !k.starts_with('a')), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"b"), Some(&2));
        // Survivor keeps its (oldest) slot in the eviction order.
        c.insert("c", 4);
        c.insert("d", 5);
        c.insert("e", 6);
        assert_eq!(c.get(&"b"), None, "b evicted first after the sweep");
        assert_eq!(c.retain(|_, _| true), 0);
    }

    #[test]
    fn capacity_clamps_to_one_and_clear_resets() {
        let mut c = FifoCache::new(0);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1);
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&2), None);
    }
}
