//! # pqp-service — the concurrent multi-user serving layer
//!
//! The paper (§4, Fig. 2) frames query personalization as a layer sitting in
//! front of a live DBMS, serving many users' profiles concurrently. This
//! crate is that layer: a [`Service`] owns one shared [`Database`] plus a
//! **sharded profile store** (N shards, each behind an `RwLock`, keyed by
//! [`UserId`]), and exposes one front door — [`Session::query`] — that runs
//! parse → personalize → integrate → plan → execute end-to-end and returns
//! a single [`Result<Answer, Error>`](Error).
//!
//! Repeated traffic is fast because two caches sit on the hot path:
//!
//! - the **prepared-query cache** maps SQL text to its parsed SELECT and
//!   [`QueryGraph`] — both user-independent, so one entry serves every user;
//! - the **personalized-plan cache** maps `(user, canonical query, options,
//!   rewrite)` to a fully planned physical [`Plan`],
//!   invalidated per-user by an **epoch**: every profile mutation stamps the
//!   user with a fresh epoch, and cached plans carry the epoch they were
//!   built under, so a stale plan is never served (it is recomputed lazily
//!   on the next lookup).
//!
//! Both caches publish hit/miss/stale/eviction counters through
//! [`pqp_obs`] (`service.prepared_cache.*`, `service.plan_cache.*`) and
//! locally via [`Service::cache_stats`].
//!
//! ```
//! use pqp_core::{PersonalizeOptions, Profile};
//! # use pqp_engine::Database;
//! # use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};
//! # let mut catalog = Catalog::new();
//! # catalog.create_table(TableSchema::new("MOVIE", vec![
//! #     ColumnDef::new("mid", DataType::Int),
//! #     ColumnDef::new("title", DataType::Str),
//! # ]).with_primary_key(&["mid"])).unwrap();
//! # catalog.create_table(TableSchema::new("GENRE", vec![
//! #     ColumnDef::new("mid", DataType::Int),
//! #     ColumnDef::new("genre", DataType::Str),
//! # ])).unwrap();
//! let service = pqp_service::Service::new(Database::new(catalog));
//! let mut julie = Profile::new("julie");
//! julie.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
//! julie.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
//! service.install_profile(julie).unwrap();
//!
//! let session = service
//!     .session("julie")
//!     .with_options(PersonalizeOptions::builder().k(2).l(1).build());
//! let answer = session.query("select MV.title from MOVIE MV").unwrap();
//! assert_eq!(answer.meta.k, 1);
//! ```

mod cache;
mod error;
pub mod telemetry;

pub use error::{Error, ErrorCode, Result};
pub use telemetry::{
    FollowerLag, PhaseBreakdown, QueryLog, QueryRecord, ReplStatus, Telemetry, TelemetryConfig,
    TelemetrySnapshot,
};

use cache::FifoCache;
use pqp_core::graph::InMemoryGraph;
use pqp_core::query_graph::QueryGraph;
use pqp_core::{
    personalize_prepared_ctx, InterestCriterion, MandatorySpec, MatchSpec, PersonalizeOptions,
    PrefError, Profile, Rewrite,
};
use pqp_engine::plan::Plan;
use pqp_engine::{Database, Estimator, ExecOptions, ResultSet};
use pqp_obs::{Budget, CacheSnapshot, CacheStats, QueryCtx};
use pqp_sql::ast::{Query, Select};
use pqp_sql::{ShowStmt, Statement};
use pqp_storage::sync::RwLock;
use pqp_storage::{ShardedMap, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A user identifier: the key of the sharded profile store.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(String);

impl UserId {
    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for UserId {
    fn from(s: &str) -> UserId {
        UserId(s.to_string())
    }
}

impl From<String> for UserId {
    fn from(s: String) -> UserId {
        UserId(s)
    }
}

impl AsRef<str> for UserId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of profile-store shards.
    pub shards: usize,
    /// Capacity of the prepared-query cache (entries).
    pub prepared_capacity: usize,
    /// Capacity of the personalized-plan cache (entries).
    pub plan_capacity: usize,
    /// Personalization options used when a session does not override them
    /// (and by [`Service::query_batch`]).
    pub options: PersonalizeOptions,
    /// Rewrite executed when a session does not override it.
    pub rewrite: Rewrite,
    /// Intra-query execution budget: every query this service runs executes
    /// under this [`ExecOptions`] (partitioned parallel scans/joins when
    /// `threads > 1`, strictly serial by default). Parallel execution
    /// preserves the serial row order, so answers are identical either way;
    /// cached plans are execution-strategy-agnostic and need no
    /// invalidation when this changes.
    pub exec: ExecOptions,
    /// Default per-query governor budget (deadline / rows scanned / memory).
    /// Defaults to [`Budget::from_env`], so `PQP_DEADLINE_MS`,
    /// `PQP_MAX_ROWS_SCANNED` and `PQP_MAX_MEMORY_BYTES` configure a fleet
    /// without code changes; unlimited when the variables are unset.
    /// Sessions override it per query with [`Session::with_budget`].
    pub budget: Budget,
    /// Admission control: the maximum number of queries in flight before
    /// new ones are refused with [`Error::Overloaded`] (`0` = unlimited).
    /// Defaults to `PQP_MAX_IN_FLIGHT` (unlimited when unset).
    pub max_in_flight: usize,
    /// Degrade personalization gracefully when it blows its slice of the
    /// query budget: shrink K, then keep only mandatory preferences, then
    /// run the query unpersonalized (see [`DegradeLevel`]). When `false`, a
    /// personalization budget trip surfaces as
    /// [`Error::BudgetExceeded`] instead.
    pub degrade: bool,
    /// Always-on telemetry: query-log capacities, slow-query threshold
    /// (`PQP_SLOW_QUERY_MS`) and the optional JSON-lines sink
    /// (`PQP_QUERY_LOG_FILE`). See [`TelemetryConfig`].
    pub telemetry: TelemetryConfig,
}

fn max_in_flight_from_env() -> usize {
    std::env::var("PQP_MAX_IN_FLIGHT").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(0)
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 16,
            prepared_capacity: 512,
            plan_capacity: 4096,
            options: PersonalizeOptions::builder().k(3).l(1).build(),
            rewrite: Rewrite::Mq,
            exec: ExecOptions::default(),
            budget: Budget::from_env(),
            max_in_flight: max_in_flight_from_env(),
            degrade: true,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// How far personalization was stepped down to fit the query budget.
///
/// The ladder follows the paper's knobs: first shrink the number of
/// selected preferences K (§5), then shrink it further while forcing the
/// cheap native rank operator, then keep only the mandatory subset M
/// (§4), and finally fall back to the original, unpersonalized query —
/// the paper's own graceful floor ("users without preferences get the
/// query's plain semantics"). Each query reports the level it ran at in
/// [`AnswerMeta::degraded`] and in the `service.degrade.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeLevel {
    /// Full personalization, as requested.
    None,
    /// K halved (floor 1); non-top-K criteria step down to top-2.
    ReducedK,
    /// K quartered (floor 1) *and* the rewrite is forced through the
    /// native rank operator, whose early termination makes it the
    /// cheapest personalized execution — one rung above dropping the
    /// optional preferences entirely. Falls back to MQ automatically on
    /// shapes the operator does not support.
    NativeReducedK,
    /// Only the mandatory preferences M are kept; the at-least-L match
    /// requirement is dropped.
    MandatoryOnly,
    /// The original query ran with no personalization at all.
    Unpersonalized,
}

impl DegradeLevel {
    /// The ladder, mildest first.
    pub const LADDER: [DegradeLevel; 5] = [
        DegradeLevel::None,
        DegradeLevel::ReducedK,
        DegradeLevel::NativeReducedK,
        DegradeLevel::MandatoryOnly,
        DegradeLevel::Unpersonalized,
    ];

    /// Label used in traces and counters.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::None => "none",
            DegradeLevel::ReducedK => "reduced-k",
            DegradeLevel::NativeReducedK => "native-reduced-k",
            DegradeLevel::MandatoryOnly => "mandatory-only",
            DegradeLevel::Unpersonalized => "unpersonalized",
        }
    }

    /// Step the personalization options down to this level.
    fn apply(self, opts: PersonalizeOptions) -> PersonalizeOptions {
        let mut o = opts;
        match self {
            DegradeLevel::None | DegradeLevel::Unpersonalized => {}
            DegradeLevel::ReducedK => {
                o.criterion = match o.criterion {
                    InterestCriterion::TopK(k) => InterestCriterion::TopK((k / 2).max(1)),
                    _ => InterestCriterion::TopK(2),
                };
            }
            DegradeLevel::NativeReducedK => {
                o.criterion = match o.criterion {
                    InterestCriterion::TopK(k) => InterestCriterion::TopK((k / 4).max(1)),
                    _ => InterestCriterion::TopK(1),
                };
            }
            DegradeLevel::MandatoryOnly => {
                let m = match o.mandatory {
                    MandatorySpec::Count(m) => m,
                    _ => 0,
                };
                o.criterion = InterestCriterion::TopK(m);
                o.matching = MatchSpec::AtLeast(0);
            }
        }
        o
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one personalized query: the rows plus a stable,
/// wire-serializable metadata tail ([`AnswerMeta`]).
///
/// This is the client-facing answer shape of *both* backends — the
/// in-process [`Session`] and the TCP `pqp_wire::Client` return the same
/// struct — so its fields are a versioned public surface: additions go
/// through [`AnswerMeta`] and a protocol-version bump, never through
/// backend-specific side channels.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The rows the executed rewrite returned (column names + tuples).
    pub rows: ResultSet,
    /// How the answer was produced: rewrite, K/M, degradation, cache
    /// outcome and rows scanned.
    pub meta: AnswerMeta,
}

impl Answer {
    /// Assemble an answer (used by remote clients decoding result frames).
    pub fn new(rows: ResultSet, meta: AnswerMeta) -> Answer {
        Answer { rows, meta }
    }
}

/// The telemetry tail of an [`Answer`]: everything about *how* the answer
/// was produced, in a shape that serializes verbatim onto the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerMeta {
    /// The rewrite that ran.
    pub rewrite: Rewrite,
    /// K: number of preferences selected for this user/query pair.
    pub k: usize,
    /// M: how many of them were mandatory.
    pub m: usize,
    /// How far personalization was stepped down to fit the query budget
    /// ([`DegradeLevel::None`] when it ran as requested).
    pub degraded: DegradeLevel,
    /// How the personalized-plan cache treated this query.
    pub cache: CacheOutcome,
    /// Rows the executor scanned to produce the answer (the governor's
    /// progress counter at completion).
    pub rows_scanned: u64,
}

/// How the personalized-plan cache treated one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOutcome {
    /// A cached plan built under the user's current epoch was served.
    Hit,
    /// A cached plan existed but was built under a dead epoch; recomputed.
    Stale,
    /// No cached plan; computed and (at full fidelity) cached.
    Miss,
    /// The cache was not consulted (introspection, degraded answers).
    Bypass,
}

impl CacheOutcome {
    /// Whether the plan was served from the cache.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }

    /// Label used in traces, counters and the query log.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Stale => "stale",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The one client-facing query API, implemented by both backends: the
/// in-process [`Session`] and the TCP `pqp_wire::Client`. Examples, benches
/// and tests written against `&mut impl QueryApi` run unchanged over either.
///
/// Methods take `&mut self` for the lowest common denominator: a remote
/// client owns a socket. The in-process implementation is internally
/// synchronized and ignores the exclusivity.
pub trait QueryApi {
    /// The user this handle acts as.
    fn user_id(&self) -> &str;

    /// Run one personalized query end-to-end: parse → personalize →
    /// integrate → plan → execute, returning rows plus [`AnswerMeta`].
    fn query(&mut self, sql: &str) -> Result<Answer>;

    /// Parse + validate a query, warming the prepared cache; returns the
    /// canonical SQL text.
    fn prepare(&mut self, sql: &str) -> Result<String>;

    /// Add (or update) a selection preference for this user, bumping the
    /// user's invalidation epoch.
    fn add_selection(&mut self, table: &str, column: &str, value: Value, doi: f64) -> Result<()>;

    /// Add (or update) a directed join preference for this user, bumping
    /// the user's invalidation epoch.
    fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<()>;

    /// Remove this user's profile (subsequent queries run unpersonalized).
    /// Returns whether one was stored.
    fn remove_profile(&mut self) -> Result<bool>;
}

/// One user's stored state: the profile plus its invalidation epoch.
#[derive(Debug, Clone)]
struct ProfileEntry {
    profile: Profile,
    epoch: u64,
}

/// A parsed, graphed query — user-independent, shared across users.
#[derive(Debug)]
struct Prepared {
    select: Select,
    graph: QueryGraph,
    /// The canonical printed form, used as the plan-cache key component so
    /// textual variants of the same query share plan entries.
    canonical: String,
}

/// Personalized-plan cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    user: UserId,
    canonical: String,
    /// Canonical fingerprint of the [`PersonalizeOptions`] (K/M/L,
    /// criterion, rank).
    opts: OptionsKey,
    rewrite: Rewrite,
    /// The catalog's statistics epoch at plan time. `ANALYZE` bumps it, so
    /// plans chosen under old statistics miss and are re-planned.
    stats_epoch: u64,
}

/// A canonical, hashable image of [`PersonalizeOptions`], spelled out field
/// by field (`f64` thresholds keyed by [`f64::to_bits`]) so cache-key
/// injectivity is a compile-checked property of this mapping rather than an
/// implicit contract on `derive(Debug)` output staying unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OptionsKey {
    criterion: CriterionKey,
    mandatory: MandatoryKey,
    matching: MatchKey,
    rank: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CriterionKey {
    TopK(usize),
    MinDegree(u64),
    DisjunctionAbove(u64),
    ConjunctionAbove(u64),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MandatoryKey {
    None,
    Count(usize),
    DegreeAtLeast(u64),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MatchKey {
    AtLeast(usize),
    MinDegree(u64),
}

impl From<&PersonalizeOptions> for OptionsKey {
    fn from(o: &PersonalizeOptions) -> OptionsKey {
        OptionsKey {
            criterion: match o.criterion {
                InterestCriterion::TopK(r) => CriterionKey::TopK(r),
                InterestCriterion::MinDegree(d) => CriterionKey::MinDegree(d.to_bits()),
                InterestCriterion::DisjunctionAbove(d) => {
                    CriterionKey::DisjunctionAbove(d.to_bits())
                }
                InterestCriterion::ConjunctionAbove(d) => {
                    CriterionKey::ConjunctionAbove(d.to_bits())
                }
            },
            mandatory: match o.mandatory {
                MandatorySpec::None => MandatoryKey::None,
                MandatorySpec::Count(m) => MandatoryKey::Count(m),
                MandatorySpec::DegreeAtLeast(d) => MandatoryKey::DegreeAtLeast(d.to_bits()),
            },
            matching: match o.matching {
                MatchSpec::AtLeast(l) => MatchKey::AtLeast(l),
                MatchSpec::MinDegree(d) => MatchKey::MinDegree(d.to_bits()),
            },
            rank: o.rank,
        }
    }
}

/// A cached personalized plan, valid while the user's epoch matches.
#[derive(Debug)]
struct CachedPlan {
    epoch: u64,
    plan: Plan,
    /// The rewrite the strategy layer resolved to (never `Auto`): a hit
    /// must report the same [`AnswerMeta::rewrite`] the miss did.
    rewrite: Rewrite,
    k: usize,
    m: usize,
}

/// The serving layer: one database, many users, one front door.
///
/// `Service` is `Sync`: queries, profile mutations and batch execution may
/// run from any number of threads. See the crate docs for the cache and
/// invalidation design, and `tests/concurrency.rs` for the guarantees under
/// contention.
pub struct Service {
    db: Database,
    config: ServiceConfig,
    /// Queries currently inside [`Service::query`]; admission control
    /// compares it against `config.max_in_flight`.
    in_flight: AtomicUsize,
    profiles: ShardedMap<UserId, ProfileEntry>,
    /// Source of profile epochs: globally monotonic per service, so a
    /// removed-and-reinstalled user can never collide with plans cached
    /// under an earlier epoch (no ABA).
    epoch_source: AtomicU64,
    prepared: RwLock<FifoCache<String, Arc<Prepared>>>,
    plans: RwLock<FifoCache<PlanKey, Arc<CachedPlan>>>,
    prepared_stats: CacheStats,
    plan_stats: CacheStats,
    telemetry: Telemetry,
}

/// Cache counters of a service, one snapshot per cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCacheStats {
    /// Prepared-query cache (SQL text → AST + query graph).
    pub prepared: CacheSnapshot,
    /// Personalized-plan cache.
    pub plans: CacheSnapshot,
}

impl Service {
    /// Wrap a database with the default [`ServiceConfig`].
    pub fn new(db: Database) -> Service {
        Service::with_config(db, ServiceConfig::default())
    }

    /// Wrap a database with an explicit configuration.
    pub fn with_config(db: Database, config: ServiceConfig) -> Service {
        // First service in the process arms any failpoints configured via
        // `PQP_FAILPOINTS` / `PQP_FAILPOINT_SEED` (no-op otherwise).
        pqp_obs::failpoint::init_from_env();
        Service {
            db,
            in_flight: AtomicUsize::new(0),
            profiles: ShardedMap::new(config.shards),
            epoch_source: AtomicU64::new(0),
            prepared: RwLock::new(FifoCache::new(config.prepared_capacity)),
            plans: RwLock::new(FifoCache::new(config.plan_capacity)),
            prepared_stats: CacheStats::new("service.prepared_cache"),
            plan_stats: CacheStats::new("service.plan_cache"),
            telemetry: Telemetry::new(config.telemetry.clone()),
            config,
        }
    }

    /// The always-on telemetry: query log, windowed latency, SLO counters.
    /// The same data is reachable in-band through `SHOW METRICS`,
    /// `SHOW QUERIES [LIMIT n]` and `SHOW CACHES`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    // ---- profile store ----------------------------------------------------

    fn next_epoch(&self) -> u64 {
        self.epoch_source.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Install (or replace) a user's profile. The profile is validated
    /// against the database schema first; installing always advances the
    /// user's epoch, invalidating any cached plans.
    pub fn install_profile(&self, profile: Profile) -> Result<()> {
        profile.validate(self.db.catalog())?;
        let user = UserId::from(profile.user.clone());
        // Draw the epoch under the shard write lock so epochs stored for
        // one user are strictly increasing even across racing installs.
        self.profiles.write(&user, |shard| {
            let epoch = self.next_epoch();
            shard.insert(user.clone(), ProfileEntry { profile, epoch });
        });
        Ok(())
    }

    /// Remove a user's profile. Returns whether one was stored. Subsequent
    /// queries for the user run unpersonalized.
    ///
    /// The user's cached plans could never be served again anyway (their
    /// epochs are dead), so they are swept from the plan cache eagerly —
    /// under user churn they would otherwise occupy `plan_capacity` until
    /// FIFO eviction got around to them. Swept entries count as evictions
    /// in [`Service::cache_stats`].
    pub fn remove_profile(&self, user: impl Into<UserId>) -> bool {
        let user = user.into();
        let removed = self.profiles.remove(&user).is_some();
        if removed {
            let swept = self.plans.write().retain(|k, _| k.user != user);
            for _ in 0..swept {
                self.plan_stats.eviction();
            }
        }
        removed
    }

    /// Mutate a user's profile in place (creating an empty one if absent —
    /// upsert semantics), bumping the user's epoch iff the closure actually
    /// mutated it. The mutated profile is re-validated against the schema;
    /// on validation failure the store is left unchanged.
    ///
    /// The closure runs on a clone outside any lock (it is caller code and
    /// must not block the shard), and the result is committed under the
    /// shard write lock only if no other mutation landed in between — the
    /// stored epoch is the version token, and epochs are never reused. On
    /// conflict the closure is re-run against the then-current profile
    /// (optimistic concurrency), so concurrent mutations to one user are
    /// never silently lost; that is why `f` is `FnMut`, and why it should
    /// not have side effects beyond the profile it is handed.
    pub fn update_profile<R>(
        &self,
        user: impl Into<UserId>,
        mut f: impl FnMut(&mut Profile) -> R,
    ) -> Result<R> {
        let user = user.into();
        loop {
            // Snapshot the profile and its epoch atomically (one shard
            // read); the epoch doubles as the optimistic version token.
            let (mut profile, seen_epoch) = self.profiles.read(&user, |e| match e {
                Some(e) => (e.profile.clone(), Some(e.epoch)),
                None => (Profile::new(user.as_str()), None),
            });
            let before = profile.revision();
            let out = f(&mut profile);
            if profile.revision() == before {
                return Ok(out); // no mutation: no commit, no epoch bump
            }
            profile.validate(self.db.catalog())?;
            // Commit iff the stored entry is unchanged since the snapshot.
            // The new epoch is drawn inside the same critical section, so
            // epochs stored for one user are strictly increasing.
            let committed = self.profiles.write(&user, |shard| {
                if shard.get(&user).map(|e| e.epoch) != seen_epoch {
                    return false;
                }
                let epoch = self.next_epoch();
                shard.insert(user.clone(), ProfileEntry { profile, epoch });
                true
            });
            if committed {
                return Ok(out);
            }
            // Lost the race — retry against the fresh state.
        }
    }

    /// Add (or update) a selection preference for a user (upserting an empty
    /// profile), bumping the user's epoch.
    pub fn add_selection(
        &self,
        user: impl Into<UserId>,
        table: &str,
        column: &str,
        value: impl Into<pqp_storage::Value>,
        doi: f64,
    ) -> Result<()> {
        let value = value.into();
        self.update_profile(user, |p| {
            p.add_selection(table, column, value.clone(), doi).map(|_| ())
        })?
        .map_err(Error::from)
    }

    /// Add (or update) a directed join preference for a user (upserting an
    /// empty profile), bumping the user's epoch.
    pub fn add_join(
        &self,
        user: impl Into<UserId>,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<()> {
        self.update_profile(user, |p| {
            p.add_join(from_table, from_column, to_table, to_column, doi).map(|_| ())
        })?
        .map_err(Error::from)
    }

    /// A snapshot of a user's profile (`None` when nothing is stored).
    pub fn profile(&self, user: impl Into<UserId>) -> Option<Profile> {
        self.profiles.get_cloned(&user.into()).map(|e| e.profile)
    }

    /// The user's current invalidation epoch (0 when no profile is stored).
    pub fn epoch(&self, user: impl Into<UserId>) -> u64 {
        self.profiles.read(&user.into(), |e| e.map_or(0, |e| e.epoch))
    }

    /// All users with a stored profile.
    pub fn users(&self) -> Vec<UserId> {
        let mut users = self.profiles.keys();
        users.sort();
        users
    }

    // ---- caches -----------------------------------------------------------

    /// Parse + query-graph a SQL text, through the shared prepared cache.
    /// The flag reports whether the cache served it (for the query log).
    fn prepare(&self, sql: &str) -> Result<(Arc<Prepared>, bool)> {
        let key = sql.trim();
        if let Some(p) = self.prepared.read().get(&key.to_string()) {
            self.prepared_stats.hit();
            return Ok((Arc::clone(p), true));
        }
        self.prepared_stats.miss();
        let query = pqp_sql::parse_query(sql)?;
        let select = query
            .as_select()
            .ok_or_else(|| PrefError::UnsupportedQuery("only plain SELECT blocks".into()))?
            .clone();
        let graph = QueryGraph::from_select(&select, self.db.catalog())?;
        let prepared = Arc::new(Prepared { select, graph, canonical: query.to_string() });
        if self.prepared.write().insert(key.to_string(), Arc::clone(&prepared)) {
            self.prepared_stats.eviction();
        }
        Ok((prepared, false))
    }

    /// Parse + validate a query and warm the shared prepared cache,
    /// returning the canonical SQL text (the plan-cache key component).
    /// This is the in-process face of the wire protocol's `Prepare`
    /// message: cheap to call, user-independent, no execution.
    pub fn prepare_sql(&self, sql: &str) -> Result<String> {
        let (prepared, _cached) = self.prepare(sql)?;
        Ok(prepared.canonical.clone())
    }

    /// Snapshot counters of both caches.
    pub fn cache_stats(&self) -> ServiceCacheStats {
        ServiceCacheStats {
            prepared: self.prepared_stats.snapshot(),
            plans: self.plan_stats.snapshot(),
        }
    }

    /// Drop both caches (profiles and their epochs are untouched).
    pub fn clear_caches(&self) {
        self.prepared.write().clear();
        self.plans.write().clear();
    }

    // ---- the front door ---------------------------------------------------

    /// Open a session for a user, with the service's default options and
    /// rewrite (override per session with [`Session::with_options`] /
    /// [`Session::with_rewrite`]).
    pub fn session(&self, user: impl Into<UserId>) -> Session<'_> {
        Session {
            service: self,
            user: user.into(),
            options: self.config.options,
            rewrite: self.config.rewrite,
            budget: self.config.budget,
        }
    }

    /// Run one personalized query for `user`. Users without a stored
    /// profile get the query's original semantics (zero preferences select,
    /// matching the paper: personalization degrades gracefully to the plain
    /// query).
    ///
    /// The query runs under the service's default governor budget
    /// ([`ServiceConfig::budget`]); see [`Service::query_ctx`] for an
    /// explicit per-query context.
    pub fn query(
        &self,
        user: &UserId,
        sql: &str,
        options: PersonalizeOptions,
        rewrite: Rewrite,
    ) -> Result<Answer> {
        self.query_ctx(user, sql, options, rewrite, &QueryCtx::new(self.config.budget))
    }

    /// [`Service::query`] under an explicit query-governor context: the
    /// caller owns the [`QueryCtx`], so it can cancel the query from
    /// another thread ([`QueryCtx::cancel`]) or inspect partial progress.
    ///
    /// This is also the robustness boundary of the service: admission
    /// control runs first (rejecting with [`Error::Overloaded`] when
    /// [`ServiceConfig::max_in_flight`] queries are already inside), and the
    /// whole pipeline runs under `catch_unwind`, so a panicking worker —
    /// real bug or injected failpoint — fails only this query with
    /// [`Error::Internal`] instead of taking the process down. All locks a
    /// panic can leave behind are poison-recovering.
    pub fn query_ctx(
        &self,
        user: &UserId,
        sql: &str,
        options: PersonalizeOptions,
        rewrite: Rewrite,
        ctx: &QueryCtx,
    ) -> Result<Answer> {
        // In-band introspection is answered before admission control — an
        // operator's `SHOW METRICS` must work precisely when the service is
        // overloaded — and stays out of the query log (no self-noise).
        if is_show(sql) {
            return self.run_show(sql);
        }
        let started = Instant::now();
        let mut obs = Observed::default();
        let mut result = match self.admit() {
            Ok(_admitted) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.query_governed(user, sql, options, rewrite, ctx, &mut obs)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        pqp_obs::counter_add("service.panics_caught", 1);
                        self.telemetry.note_panic();
                        Err(Error::Internal(format!(
                            "query pipeline panicked: {}",
                            panic_message(&payload)
                        )))
                    }
                }
            }
            Err(refused) => Err(refused),
        };
        if let Ok(answer) = &mut result {
            answer.meta.rows_scanned = ctx.progress().rows_scanned;
        }
        self.record_query(user, sql, ctx, started, &obs, &result);
        result
    }

    /// Build and log the [`QueryRecord`] for one finished query (success,
    /// error, refusal or caught panic alike).
    fn record_query(
        &self,
        user: &UserId,
        sql: &str,
        ctx: &QueryCtx,
        started: Instant,
        obs: &Observed,
        result: &Result<Answer>,
    ) {
        let progress = ctx.progress();
        let mut phases = obs.phases;
        phases.total_us = started.elapsed().as_micros() as u64;
        let (ok, rows_out, k, m, degrade, error_kind, error) = match result {
            Ok(a) => (true, a.rows.len(), a.meta.k, a.meta.m, a.meta.degraded.label(), None, None),
            Err(e) => {
                (false, 0, 0, 0, DegradeLevel::None.label(), Some(e.kind()), Some(e.to_string()))
            }
        };
        self.telemetry.record(QueryRecord {
            seq: 0, // assigned by the log
            user: user.as_str().to_string(),
            sql: obs.canonical.clone().unwrap_or_else(|| sql.trim().to_string()),
            ok,
            error_kind,
            error,
            phases,
            rows_out,
            rows_scanned: progress.rows_scanned,
            mem_bytes: progress.mem_bytes,
            est_rows: obs.est_rows,
            prepared_cache: obs.prepared_cache,
            plan_cache: obs.plan_cache,
            degrade,
            k,
            m,
            deadline_ms: ctx.deadline_budget().map(|d| d.as_millis() as u64),
            rows_limit: ctx.max_rows_limit(),
            mem_limit: ctx.max_mem_limit(),
            slow: false, // classified by the log
        });
    }

    /// Answer a `SHOW` statement from live telemetry, as an ordinary result
    /// table through the normal [`Answer`] envelope.
    fn run_show(&self, sql: &str) -> Result<Answer> {
        let stmt = pqp_sql::parse_statement(sql)?;
        let Statement::Show(show) = stmt else {
            // `is_show` only matches a leading SHOW word, and the statement
            // grammar has no other production starting with it.
            return Err(Error::Internal("SHOW prefix parsed to a non-SHOW statement".into()));
        };
        let rows = match show {
            ShowStmt::Metrics => {
                let mut table = self.telemetry.metrics_table();
                table.rows.push(vec![
                    Value::Str("in_flight".into()),
                    Value::Int(self.in_flight() as i64),
                ]);
                table
            }
            ShowStmt::Queries { limit } => self.telemetry.queries_table(limit.unwrap_or(20)),
            ShowStmt::Caches => self.caches_table(),
        };
        Ok(Answer {
            rows,
            meta: AnswerMeta {
                rewrite: Rewrite::Original,
                k: 0,
                m: 0,
                degraded: DegradeLevel::None,
                cache: CacheOutcome::Bypass,
                rows_scanned: 0,
            },
        })
    }

    /// The `SHOW CACHES` result table: occupancy and counters per cache.
    fn caches_table(&self) -> ResultSet {
        let stats = self.cache_stats();
        let (prepared_len, prepared_cap) = {
            let c = self.prepared.read();
            (c.len(), c.capacity())
        };
        let (plan_len, plan_cap) = {
            let c = self.plans.read();
            (c.len(), c.capacity())
        };
        let row = |name: &str, len: usize, cap: usize, s: CacheSnapshot| {
            vec![
                Value::Str(name.to_string()),
                Value::Int(len as i64),
                Value::Int(cap as i64),
                Value::Int(s.hits as i64),
                Value::Int(s.misses as i64),
                Value::Int(s.stale as i64),
                Value::Int(s.evictions as i64),
                Value::Float(s.hit_rate()),
            ]
        };
        ResultSet {
            columns: [
                "cache",
                "entries",
                "capacity",
                "hits",
                "misses",
                "stale",
                "evictions",
                "hit_rate",
            ]
            .iter()
            .map(|c| c.to_string())
            .collect(),
            rows: vec![
                row("prepared", prepared_len, prepared_cap, stats.prepared),
                row("plans", plan_len, plan_cap, stats.plans),
            ],
        }
    }

    /// Admission control: reserve an in-flight slot or refuse.
    fn admit(&self) -> Result<InFlightGuard<'_>> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let max = self.config.max_in_flight;
        if max != 0 && prev >= max {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            pqp_obs::counter_add("service.admission.rejected", 1);
            return Err(Error::Overloaded { in_flight: prev, max });
        }
        Ok(InFlightGuard(&self.in_flight))
    }

    /// Queries currently executing (admission-control gauge).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The governed pipeline: plan-cache fast path, then the degradation
    /// ladder around personalization, then plan + execute under `ctx`.
    fn query_governed(
        &self,
        user: &UserId,
        sql: &str,
        options: PersonalizeOptions,
        rewrite: Rewrite,
        ctx: &QueryCtx,
        obs: &mut Observed,
    ) -> Result<Answer> {
        if let Some(msg) = pqp_obs::failpoint::fire("service.query") {
            return Err(Error::Internal(format!("failpoint service.query: {msg}")));
        }
        let t_parse = Instant::now();
        let (prepared, prepared_hit) = self.prepare(sql)?;
        obs.phases.parse_us = t_parse.elapsed().as_micros() as u64;
        obs.prepared_cache = if prepared_hit { "hit" } else { "miss" };
        obs.canonical = Some(prepared.canonical.clone());
        let key = PlanKey {
            user: user.clone(),
            canonical: prepared.canonical.clone(),
            opts: OptionsKey::from(&options),
            rewrite,
            stats_epoch: self.db.catalog().stats_epoch(),
        };

        // Fast path: a cached plan built under the user's current epoch. An
        // injected `plan.cache` fault degrades to a recompute (a cache must
        // never be load-bearing for correctness), so it counts as a miss.
        let epoch_now = self.epoch(user.clone());
        enum Lookup {
            Hit(Arc<CachedPlan>),
            Stale,
            Miss,
        }
        let lookup = if pqp_obs::failpoint::fire("plan.cache").is_some() {
            Lookup::Miss
        } else {
            match self.plans.read().get(&key) {
                Some(c) if c.epoch == epoch_now => Lookup::Hit(Arc::clone(c)),
                Some(_) => Lookup::Stale,
                None => Lookup::Miss,
            }
        };
        let cache_outcome = match lookup {
            Lookup::Hit(cached) => {
                self.plan_stats.hit();
                obs.plan_cache = "hit";
                obs.est_rows = Some(Estimator::new(self.db.catalog()).rows(&cached.plan));
                let t_exec = Instant::now();
                let rows = self.db.run_plan_ctx(&cached.plan, &self.config.exec, ctx);
                obs.phases.execute_us += t_exec.elapsed().as_micros() as u64;
                self.telemetry.note_strategy(cached.rewrite);
                return Ok(Answer {
                    rows: rows?,
                    meta: AnswerMeta {
                        rewrite: cached.rewrite,
                        k: cached.k,
                        m: cached.m,
                        degraded: DegradeLevel::None,
                        cache: CacheOutcome::Hit,
                        rows_scanned: 0,
                    },
                });
            }
            Lookup::Stale => {
                self.plan_stats.stale();
                obs.plan_cache = "stale";
                CacheOutcome::Stale
            }
            Lookup::Miss => {
                self.plan_stats.miss();
                obs.plan_cache = "miss";
                CacheOutcome::Miss
            }
        };

        // Slow path: snapshot the profile and its epoch atomically (one
        // shard read), personalize, plan, execute, then publish the plan
        // under the snapshot epoch. A concurrent mutation between snapshot
        // and publish simply leaves a stale entry that the next lookup
        // recomputes — never a wrong answer.
        let (profile, epoch) = self.profiles.read(user, |e| match e {
            Some(e) => (e.profile.clone(), e.epoch),
            None => (Profile::new(user.as_str()), 0),
        });
        let graph = InMemoryGraph::build(&profile, self.db.catalog())?;

        // The degradation ladder. Personalization runs under a *slice* of
        // the remaining budget (a quarter — execution is the expensive
        // phase), and every time it blows the slice the options step down a
        // level: shrink K, keep only mandatory preferences, finally run the
        // original query. Disabled ladders surface the trip directly.
        let ladder: &[DegradeLevel] =
            if self.config.degrade { &DegradeLevel::LADDER } else { &DegradeLevel::LADDER[..1] };
        for (i, &level) in ladder.iter().enumerate() {
            let is_last = i + 1 == ladder.len();
            let (plan, ran, k, m) = if level == DegradeLevel::Unpersonalized {
                // The unpersonalized floor runs the plain query.
                let q = Query::from_select(prepared.select.clone());
                let t_plan = Instant::now();
                let plan = self.db.plan(&q);
                obs.phases.plan_us += t_plan.elapsed().as_micros() as u64;
                (plan?, Rewrite::Original, 0, 0)
            } else {
                let slice = ctx.slice(1, 4);
                let t_pers = Instant::now();
                let personalized = personalize_prepared_ctx(
                    &prepared.select,
                    &prepared.graph,
                    &graph,
                    level.apply(options),
                    &slice,
                );
                // Accumulates across ladder retries: the log reports the
                // total personalization cost, including abandoned levels.
                obs.phases.personalize_us += t_pers.elapsed().as_micros() as u64;
                match personalized {
                    Ok(p) => {
                        // The native rung forces the rank operator — that is
                        // what makes it cheaper than the rung above it; the
                        // strategy layer falls back to MQ on unsupported
                        // shapes and resolves `Auto` by estimated cost.
                        let rung_rewrite = if level == DegradeLevel::NativeReducedK
                            && rewrite != Rewrite::Original
                        {
                            Rewrite::NativeRank
                        } else {
                            rewrite
                        };
                        let t_plan = Instant::now();
                        let choice =
                            pqp_core::strategy::build_execution(&self.db, &p, rung_rewrite, None);
                        obs.phases.plan_us += t_plan.elapsed().as_micros() as u64;
                        let choice = choice?;
                        (choice.plan, choice.rewrite, p.k(), p.m)
                    }
                    Err(PrefError::Budget(_)) if !is_last => {
                        pqp_obs::counter_add("service.degrade.steps", 1);
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            obs.est_rows = Some(Estimator::new(self.db.catalog()).rows(&plan));
            let t_exec = Instant::now();
            let rows = self.db.run_plan_ctx(&plan, &self.config.exec, ctx);
            obs.phases.execute_us += t_exec.elapsed().as_micros() as u64;
            let rows = rows?;
            self.telemetry.note_strategy(ran);
            if level == DegradeLevel::None {
                // Only full-fidelity plans are cached: a degraded plan is an
                // artifact of one query's budget, not of the user's profile.
                let cached = CachedPlan { epoch, plan, rewrite: ran, k, m };
                if self.plans.write().insert(key, Arc::new(cached)) {
                    self.plan_stats.eviction();
                }
            } else {
                pqp_obs::counter_add("service.degrade.answers", 1);
                pqp_obs::counter_add(&format!("service.degrade.rung.{}", level.label()), 1);
                pqp_obs::record("degrade_level", level.label());
            }
            return Ok(Answer {
                rows,
                meta: AnswerMeta {
                    rewrite: ran,
                    k,
                    m,
                    degraded: level,
                    cache: cache_outcome,
                    rows_scanned: 0,
                },
            });
        }
        unreachable!("the degradation ladder always returns or errors")
    }

    /// Run a batch of `(user, sql)` requests, fanned across `workers`
    /// scoped threads, with the service's default options and rewrite.
    /// Results come back in request order, each the same as a sequential
    /// [`Service::query`] call would produce.
    ///
    /// Identical in-flight requests (same user and SQL text) are
    /// **collapsed**: one execution serves all duplicates. Combined with
    /// the plan cache this is what makes batch serving beat a sequential
    /// request loop even on a single core; on multi-core hosts the worker
    /// threads add real parallelism on top.
    pub fn query_batch(
        &self,
        requests: &[(UserId, String)],
        workers: usize,
    ) -> Vec<Result<Answer>> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Collapse duplicates: `slots[i]` is the distinct-request slot that
        // request i's answer comes from.
        let mut slot_of_key: std::collections::HashMap<(&UserId, &str), usize> =
            std::collections::HashMap::new();
        let mut distinct: Vec<usize> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(requests.len());
        for (i, (user, sql)) in requests.iter().enumerate() {
            let slot = *slot_of_key.entry((user, sql.trim())).or_insert_with(|| {
                distinct.push(i);
                distinct.len() - 1
            });
            slots.push(slot);
        }
        pqp_obs::counter_add("service.batch.requests", requests.len() as i64);
        pqp_obs::counter_add("service.batch.collapsed", (requests.len() - distinct.len()) as i64);

        let workers = workers.clamp(1, distinct.len());
        let chunk = distinct.len().div_ceil(workers);
        let mut slot_results: Vec<Option<Result<Answer>>> = Vec::new();
        slot_results.resize_with(distinct.len(), || None);
        std::thread::scope(|scope| {
            for (req_indices, out) in distinct.chunks(chunk).zip(slot_results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (&i, out) in req_indices.iter().zip(out.iter_mut()) {
                        let (user, sql) = &requests[i];
                        *out =
                            Some(self.query(user, sql, self.config.options, self.config.rewrite));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                // Every slot is filled by construction (chunks cover the
                // distinct set exactly, and `query` catches worker panics).
                // If one ever is not, fail that request — not the process.
                slot_results[slot].clone().unwrap_or_else(|| {
                    Err(Error::Internal("batch worker did not fill its result slot".into()))
                })
            })
            .collect()
    }
}

/// Per-query facts gathered along the pipeline for the query log: phase
/// timings, cache outcomes, the canonical SQL and the plan's row estimate.
/// Filled as far as the query got; errors leave the rest at its defaults.
#[derive(Debug)]
struct Observed {
    phases: PhaseBreakdown,
    canonical: Option<String>,
    est_rows: Option<f64>,
    prepared_cache: &'static str,
    plan_cache: &'static str,
}

impl Default for Observed {
    fn default() -> Observed {
        Observed {
            phases: PhaseBreakdown::default(),
            canonical: None,
            est_rows: None,
            prepared_cache: "-",
            plan_cache: "-",
        }
    }
}

/// Cheap hot-path test for a leading `SHOW` word (the only statements the
/// service answers without touching the engine). Word-boundary-checked so
/// an identifier like `showings` never trips it.
fn is_show(sql: &str) -> bool {
    let head = sql.trim_start();
    let Some(word) = head.get(..4) else { return false };
    word.eq_ignore_ascii_case("show")
        && !head[4..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// RAII in-flight slot: decrements the gauge on drop, so early returns,
/// `?` and caught panics all release admission.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("users", &self.profiles.len())
            .field("shards", &self.profiles.shard_count())
            .field("prepared", &self.prepared.read().len())
            .field("plans", &self.plans.read().len())
            .finish()
    }
}

/// A per-user handle onto a [`Service`]: the redesigned public entry point.
///
/// Sessions are cheap (a user id plus option values) and borrow the
/// service, so a caller can hold many at once — one per connected user.
#[derive(Debug, Clone)]
pub struct Session<'s> {
    service: &'s Service,
    user: UserId,
    options: PersonalizeOptions,
    rewrite: Rewrite,
    budget: Budget,
}

impl<'s> Session<'s> {
    /// The user this session serves.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// Override the personalization options for this session.
    pub fn with_options(mut self, options: PersonalizeOptions) -> Session<'s> {
        self.options = options;
        self
    }

    /// Override the executed rewrite for this session.
    pub fn with_rewrite(mut self, rewrite: Rewrite) -> Session<'s> {
        self.rewrite = rewrite;
        self
    }

    /// Override the per-query governor budget for this session (deadline /
    /// rows scanned / memory — see [`Budget`]).
    pub fn with_budget(mut self, budget: Budget) -> Session<'s> {
        self.budget = budget;
        self
    }

    /// Run a personalized query end-to-end: parse → personalize →
    /// integrate → plan → execute, through both caches, under this
    /// session's governor budget.
    pub fn query(&self, sql: &str) -> Result<Answer> {
        self.query_ctx(sql, &QueryCtx::new(self.budget))
    }

    /// [`Session::query`] under a caller-owned [`QueryCtx`]: share the
    /// context with another thread to cancel the query mid-flight, or read
    /// partial-progress counters while it runs.
    pub fn query_ctx(&self, sql: &str, ctx: &QueryCtx) -> Result<Answer> {
        self.service.query_ctx(&self.user, sql, self.options, self.rewrite, ctx)
    }
}

/// The in-process backend of the unified client API. The `&mut self`
/// receivers exist for parity with socket-owning remote clients; a session
/// is internally synchronized and never needs the exclusivity.
impl QueryApi for Session<'_> {
    fn user_id(&self) -> &str {
        self.user.as_str()
    }

    fn query(&mut self, sql: &str) -> Result<Answer> {
        Session::query(self, sql)
    }

    fn prepare(&mut self, sql: &str) -> Result<String> {
        self.service.prepare_sql(sql)
    }

    fn add_selection(&mut self, table: &str, column: &str, value: Value, doi: f64) -> Result<()> {
        self.service.add_selection(self.user.clone(), table, column, value, doi)
    }

    fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<()> {
        self.service.add_join(self.user.clone(), from_table, from_column, to_table, to_column, doi)
    }

    fn remove_profile(&mut self) -> Result<bool> {
        Ok(self.service.remove_profile(self.user.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

    fn movie_db() -> Database {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        for (mid, title) in [(1, "Alpha"), (2, "Beta"), (3, "Gamma")] {
            c.table("MOVIE").unwrap().write().insert(vec![mid.into(), title.into()]).unwrap();
        }
        for (mid, genre) in [(1, "comedy"), (2, "comedy"), (3, "drama")] {
            c.table("GENRE").unwrap().write().insert(vec![mid.into(), genre.into()]).unwrap();
        }
        Database::new(c)
    }

    fn service_with_ana() -> Service {
        let service = Service::new(movie_db());
        let mut ana = Profile::new("ana");
        ana.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        ana.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
        service.install_profile(ana).unwrap();
        service
    }

    const Q: &str = "select MV.title from MOVIE MV";

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Service>();
        assert_send_sync::<Answer>();
        assert_send_sync::<Error>();
    }

    #[test]
    fn session_query_end_to_end() {
        let service = service_with_ana();
        let answer = service.session("ana").query(Q).unwrap();
        assert_eq!(answer.meta.k, 1, "comedy preference reached through the join");
        assert_eq!(answer.meta.rewrite, Rewrite::Mq);
        assert!(!answer.meta.cache.is_hit());
        let titles: Vec<String> = answer.rows.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(titles.contains(&"'Alpha'".to_string()) || titles.contains(&"Alpha".to_string()));
    }

    #[test]
    fn native_rewrite_answers_match_mq_and_count_in_metrics() {
        let service = service_with_ana();
        let mq = service.session("ana").query(Q).unwrap();
        assert_eq!(mq.meta.rewrite, Rewrite::Mq);
        let session = service.session("ana").with_rewrite(Rewrite::NativeRank);
        let native = session.query(Q).unwrap();
        assert_eq!(native.meta.rewrite, Rewrite::NativeRank);
        let sort = |mut rows: Vec<Vec<pqp_storage::Value>>| {
            rows.sort();
            rows
        };
        assert_eq!(sort(native.rows.rows.clone()), sort(mq.rows.rows.clone()));
        // A plan-cache hit reports the rewrite the plan was built with, not
        // the session's requested one.
        let hit = session.query(Q).unwrap();
        assert!(hit.meta.cache.is_hit());
        assert_eq!(hit.meta.rewrite, Rewrite::NativeRank);
        // An Auto session resolves to a concrete strategy.
        let auto = service.session("ana").with_rewrite(Rewrite::Auto).query(Q).unwrap();
        assert_ne!(auto.meta.rewrite, Rewrite::Auto);
        let snap = service.telemetry().snapshot();
        assert!(snap.strategy_mq >= 1, "{snap:?}");
        assert!(snap.strategy_native_rank >= 2, "{snap:?}");
        assert_eq!(
            snap.strategy_sq + snap.strategy_mq + snap.strategy_native_rank,
            4,
            "every personalized answer lands in exactly one strategy counter: {snap:?}"
        );
    }

    #[test]
    fn unknown_user_runs_unpersonalized() {
        let service = service_with_ana();
        let answer = service.session("nobody").query(Q).unwrap();
        assert_eq!(answer.meta.k, 0);
        assert_eq!(answer.rows.len(), 3, "all movies, no preference filter");
    }

    #[test]
    fn repeated_query_hits_both_caches() {
        let service = service_with_ana();
        let session = service.session("ana");
        let first = session.query(Q).unwrap();
        let second = session.query(Q).unwrap();
        assert!(!first.meta.cache.is_hit());
        assert!(second.meta.cache.is_hit());
        assert_eq!(first.rows, second.rows);
        assert_eq!(second.meta.k, first.meta.k, "cached answers keep selection metadata");
        let stats = service.cache_stats();
        assert_eq!(stats.prepared.hits, 1);
        assert_eq!(stats.prepared.misses, 1);
        assert_eq!(stats.plans.hits, 1);
        assert_eq!(stats.plans.misses, 1);
    }

    #[test]
    fn textual_variants_share_one_plan_entry() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        // Different whitespace, same canonical query.
        let variant = service.session("ana").query("select  MV.title  from  MOVIE  MV").unwrap();
        assert!(variant.meta.cache.is_hit(), "canonicalized key shares the plan");
    }

    #[test]
    fn profile_mutation_invalidates_cached_plans() {
        let service = service_with_ana();
        let session = service.session("ana");
        let before = session.query(Q).unwrap();
        assert!(session.query(Q).unwrap().meta.cache.is_hit());

        let e0 = service.epoch("ana");
        service.add_selection("ana", "GENRE", "genre", "drama", 0.9).unwrap();
        assert!(service.epoch("ana") > e0, "mutation bumps the epoch");

        let after = session.query(Q).unwrap();
        assert!(!after.meta.cache.is_hit(), "stale plan recomputed");
        assert_eq!(after.meta.k, 2, "the new preference is in effect");
        assert!(after.rows.len() > before.rows.len());
        assert_eq!(service.cache_stats().plans.stale, 1);
        // And the refreshed entry serves hits again.
        assert!(session.query(Q).unwrap().meta.cache.is_hit());
    }

    #[test]
    fn analyze_invalidates_cached_plans() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        assert!(session.query(Q).unwrap().meta.cache.is_hit());

        // ANALYZE bumps the catalog's stats epoch: cached plans chosen under
        // the old statistics must not be served again.
        service.database().catalog().analyze_all().unwrap();
        let after = session.query(Q).unwrap();
        assert!(!after.meta.cache.is_hit(), "plan re-chosen under fresh statistics");
        assert!(session.query(Q).unwrap().meta.cache.is_hit(), "and re-cached");
    }

    #[test]
    fn noop_update_keeps_epoch_and_cache() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        let e0 = service.epoch("ana");
        service.update_profile("ana", |_p| ()).unwrap();
        assert_eq!(service.epoch("ana"), e0, "no mutation, no epoch bump");
        assert!(session.query(Q).unwrap().meta.cache.is_hit());
    }

    #[test]
    fn update_validation_failure_rolls_back() {
        let service = service_with_ana();
        let err = service.update_profile("ana", |p| {
            p.add_selection("NOPE", "x", "v", 0.5).unwrap();
        });
        assert!(err.is_err());
        let ana = service.profile("ana").unwrap();
        assert!(
            ana.preferences().iter().all(|p| !format!("{p}").contains("NOPE")),
            "invalid mutation was not committed"
        );
    }

    #[test]
    fn reinstall_after_remove_cannot_revive_stale_plans() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        let profile = service.profile("ana").unwrap();
        assert!(service.remove_profile("ana"));
        assert_eq!(service.epoch("ana"), 0);
        // Removal sweeps the user's now-dead plan entries (counted as
        // evictions) instead of letting them squat in the cache.
        assert_eq!(service.cache_stats().plans.evictions, 1);
        // Reinstalling the same profile gets a *fresh* epoch, so even a
        // surviving plan from the old epoch could never be served.
        service.install_profile(profile).unwrap();
        let answer = session.query(Q).unwrap();
        assert!(!answer.meta.cache.is_hit(), "no ABA on remove + reinstall");
        assert_eq!(service.cache_stats().plans.stale, 0, "swept, so a miss rather than stale");
    }

    #[test]
    fn remove_profile_sweeps_only_that_users_plans() {
        let service = service_with_ana();
        service.add_selection("bob", "GENRE", "genre", "drama", 0.9).unwrap();
        service.session("ana").query(Q).unwrap();
        let bob = service.session("bob");
        bob.query(Q).unwrap();
        assert!(service.remove_profile("ana"));
        assert!(!service.remove_profile("ana"), "second removal is a no-op");
        assert!(bob.query(Q).unwrap().meta.cache.is_hit(), "bob's entry survives ana's removal");
        assert_eq!(service.cache_stats().plans.evictions, 1);
    }

    #[test]
    fn options_fingerprint_distinguishes_float_thresholds() {
        // Regression for the Debug-format fingerprint: nearby (but
        // distinct) f64 thresholds must map to distinct cache keys, and
        // equal options must share one.
        let low =
            PersonalizeOptions::builder().criterion(InterestCriterion::MinDegree(0.25)).build();
        let high =
            PersonalizeOptions::builder().criterion(InterestCriterion::MinDegree(0.75)).build();
        assert_ne!(OptionsKey::from(&low), OptionsKey::from(&high));
        assert_eq!(OptionsKey::from(&low), OptionsKey::from(&low.clone()));

        let service = service_with_ana();
        let first = service.session("ana").with_options(low).query(Q).unwrap();
        let second = service.session("ana").with_options(high).query(Q).unwrap();
        assert!(!first.meta.cache.is_hit());
        assert!(!second.meta.cache.is_hit(), "distinct thresholds get distinct plan entries");
        assert!(service.session("ana").with_options(low).query(Q).unwrap().meta.cache.is_hit());
    }

    #[test]
    fn per_user_isolation_in_plan_cache() {
        let service = service_with_ana();
        let mut bob = Profile::new("bob");
        bob.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        bob.add_selection("GENRE", "genre", "drama", 0.9).unwrap();
        service.install_profile(bob).unwrap();

        let ana = service.session("ana").query(Q).unwrap();
        let bob = service.session("bob").query(Q).unwrap();
        assert!(!bob.meta.cache.is_hit(), "bob's first query is not served ana's plan");
        assert_ne!(ana.rows, bob.rows, "different preferences, different rows");
    }

    #[test]
    fn sessions_can_override_options_and_rewrite() {
        let service = service_with_ana();
        let original = service.session("ana").with_rewrite(Rewrite::Original).query(Q).unwrap();
        assert_eq!(original.rows.len(), 3);
        let sq = service
            .session("ana")
            .with_options(PersonalizeOptions::builder().k(1).l(1).build())
            .with_rewrite(Rewrite::Sq)
            .query(Q)
            .unwrap();
        assert_eq!(sq.meta.rewrite, Rewrite::Sq);
        // Distinct options/rewrites get distinct cache entries.
        assert!(!sq.meta.cache.is_hit());
    }

    #[test]
    fn parse_errors_surface_through_unified_error() {
        let service = service_with_ana();
        let err = service.session("ana").query("select from nowhere").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = service
            .session("ana")
            .query("(select MV.title from MOVIE MV) union (select MV.title from MOVIE MV)");
        assert!(matches!(err, Err(Error::Personalize(PrefError::UnsupportedQuery(_)))));
    }

    #[test]
    fn batch_collapses_duplicates_and_preserves_order() {
        let service = service_with_ana();
        let requests: Vec<(UserId, String)> = vec![
            (UserId::from("ana"), Q.to_string()),
            (UserId::from("nobody"), Q.to_string()),
            (UserId::from("ana"), Q.to_string()),
            (UserId::from("ana"), format!("{Q} where MV.mid = 1")),
        ];
        let batch = service.query_batch(&requests, 3);
        assert_eq!(batch.len(), 4);
        let answers: Vec<&Answer> = batch.iter().map(|r| r.as_ref().unwrap()).collect();
        assert_eq!(answers[0].rows, answers[2].rows, "duplicates share one answer");
        assert_eq!(answers[1].meta.k, 0);
        assert_eq!(answers[3].rows.len(), 1);
        assert!(service.query_batch(&[], 4).is_empty());
    }

    #[test]
    fn plan_cache_eviction_under_capacity_pressure() {
        let service = Service::with_config(
            movie_db(),
            ServiceConfig { plan_capacity: 2, ..ServiceConfig::default() },
        );
        let session = service.session("u");
        for sql in
            [Q, "select MV.mid from MOVIE MV", "select MV.title from MOVIE MV where MV.mid = 2"]
        {
            session.query(sql).unwrap();
        }
        assert_eq!(service.cache_stats().plans.evictions, 1);
    }

    #[test]
    fn answers_report_no_degradation_under_unlimited_budget() {
        let service = service_with_ana();
        let answer = service.session("ana").query(Q).unwrap();
        assert_eq!(answer.meta.degraded, DegradeLevel::None);
    }

    #[test]
    fn zero_deadline_returns_budget_exceeded_never_hangs() {
        let service = service_with_ana();
        let session = service.session("ana").with_budget(Budget::unlimited().deadline_ms(0));
        // The ladder steps all the way down, but execution itself is over
        // budget too: the query must come back as a typed error, not hang.
        match session.query(Q) {
            Err(Error::BudgetExceeded(b)) => {
                assert_eq!(b.reason, pqp_obs::BudgetReason::Deadline)
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(service.in_flight(), 0, "admission slot released on error");
    }

    #[test]
    fn cancellation_surfaces_as_budget_exceeded() {
        let service = service_with_ana();
        let ctx = QueryCtx::unlimited();
        ctx.cancel();
        match service.session("ana").query_ctx(Q, &ctx) {
            Err(Error::BudgetExceeded(b)) => {
                assert_eq!(b.reason, pqp_obs::BudgetReason::Cancelled)
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn admission_control_rejects_at_capacity_and_recovers() {
        let service = Service::with_config(
            movie_db(),
            ServiceConfig { max_in_flight: 1, ..ServiceConfig::default() },
        );
        let guard = service.admit().unwrap();
        match service.session("u").query(Q) {
            Err(Error::Overloaded { in_flight, max }) => {
                assert_eq!((in_flight, max), (1, 1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(guard);
        assert!(service.session("u").query(Q).is_ok(), "capacity freed on guard drop");
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    fn every_query_leaves_a_record_with_phases_and_est_rows() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        session.query(Q).unwrap(); // plan-cache hit
        assert!(session.query("select nope from").is_err());

        let log = service.telemetry().log();
        assert_eq!(log.total(), 3);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);

        let bad = &recent[0]; // newest first: the parse error
        assert!(!bad.ok);
        assert_eq!(bad.error_kind, Some("parse"));
        assert_eq!(bad.sql, "select nope from", "unparsed text is kept raw");

        let hit = &recent[1];
        assert!(hit.ok);
        assert_eq!(hit.plan_cache, "hit");
        assert_eq!(hit.prepared_cache, "hit");
        assert_eq!(hit.rows_out, 2, "both comedies");
        assert!(hit.est_rows.is_some(), "cached plans still report an estimate");
        assert!(hit.phases.total_us >= hit.phases.execute_us);
        assert_eq!(hit.phases.personalize_us, 0, "cache hit skips personalization");

        let miss = &recent[2];
        assert_eq!(miss.plan_cache, "miss");
        assert_eq!(miss.prepared_cache, "miss");
        assert!(miss.sql.to_uppercase().contains("SELECT"), "canonical SQL is logged");
        assert!(miss.phases.personalize_us > 0 || miss.phases.plan_us > 0);

        let snap = service.telemetry().snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.latency_ms.lifetime.count(), 3);
    }

    #[test]
    fn show_statements_answer_from_live_telemetry() {
        let service = service_with_ana();
        let session = service.session("ana");
        session.query(Q).unwrap();
        session.query(Q).unwrap();

        let metrics = session.query("SHOW METRICS").unwrap();
        assert_eq!(metrics.rows.columns, vec!["metric", "value"]);
        let value = |name: &str| {
            metrics
                .rows
                .rows
                .iter()
                .find(|r| r[0] == pqp_storage::Value::Str(name.to_string()))
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(value("queries_total"), pqp_storage::Value::Int(2));
        assert_eq!(value("errors_total"), pqp_storage::Value::Int(0));
        assert_eq!(value("in_flight"), pqp_storage::Value::Int(0));

        let queries = session.query("show queries limit 1").unwrap();
        assert_eq!(queries.rows.rows.len(), 1, "LIMIT bounds the listing");
        let user_col = queries.rows.columns.iter().position(|c| c == "user").unwrap();
        assert_eq!(queries.rows.rows[0][user_col], pqp_storage::Value::Str("ana".into()));

        let caches = session.query("show caches").unwrap();
        assert_eq!(caches.rows.rows.len(), 2);
        let hits_col = caches.rows.columns.iter().position(|c| c == "hits").unwrap();
        assert_eq!(caches.rows.rows[1][hits_col], pqp_storage::Value::Int(1), "one plan hit");

        // SHOW itself is not logged: still only the two real queries.
        assert_eq!(service.telemetry().log().total(), 2);
        // And it works while the service is saturated.
        let service = Service::with_config(
            movie_db(),
            ServiceConfig { max_in_flight: 1, ..ServiceConfig::default() },
        );
        let _guard = service.admit().unwrap();
        assert!(service.session("u").query("SHOW METRICS").is_ok());
        assert!(matches!(service.session("u").query(Q), Err(Error::Overloaded { .. })));
    }

    #[test]
    fn refusals_and_budget_trips_hit_the_slo_counters() {
        let service = Service::with_config(
            movie_db(),
            ServiceConfig { max_in_flight: 1, ..ServiceConfig::default() },
        );
        let guard = service.admit().unwrap();
        assert!(service.session("u").query(Q).is_err());
        drop(guard);
        let session = service.session("u").with_budget(Budget::unlimited().deadline_ms(0));
        assert!(matches!(session.query(Q), Err(Error::BudgetExceeded(_))));
        let snap = service.telemetry().snapshot();
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.budget_exceeded, 1);
        assert_eq!(snap.over_deadline, 1, "a 0 ms deadline is always overshot");
        assert_eq!(snap.errors, 2);
        let recent = service.telemetry().log().recent(10);
        assert_eq!(recent[0].error_kind, Some("budget"));
        assert_eq!(recent[0].deadline_ms, Some(0), "armed limit is recorded");
        assert_eq!(recent[1].error_kind, Some("overloaded"));
    }

    #[test]
    fn show_prefix_detection_has_word_boundaries() {
        assert!(is_show("show metrics"));
        assert!(is_show("  SHOW QUERIES LIMIT 5"));
        assert!(is_show("Show caches;"));
        assert!(is_show("show"));
        assert!(!is_show("showings"));
        assert!(!is_show("select s.x from SHOWTIMES s"));
        assert!(!is_show("sho"));
    }

    #[test]
    fn degrade_ladder_steps_down_the_paper_knobs() {
        let opts = PersonalizeOptions::builder().k(8).m(2).l(3).build();
        let reduced = DegradeLevel::ReducedK.apply(opts);
        assert_eq!(reduced.criterion, InterestCriterion::TopK(4));
        let native = DegradeLevel::NativeReducedK.apply(opts);
        assert_eq!(native.criterion, InterestCriterion::TopK(2));
        assert_eq!(native.matching, opts.matching, "the native rung keeps matching semantics");
        let mandatory = DegradeLevel::MandatoryOnly.apply(opts);
        assert_eq!(mandatory.criterion, InterestCriterion::TopK(2));
        assert_eq!(mandatory.matching, MatchSpec::AtLeast(0));
        // Non-top-K criteria step down to top-2; K never reaches 0 via
        // halving.
        let min =
            PersonalizeOptions::builder().criterion(InterestCriterion::MinDegree(0.1)).build();
        assert_eq!(DegradeLevel::ReducedK.apply(min).criterion, InterestCriterion::TopK(2));
        let one = PersonalizeOptions::builder().k(1).build();
        assert_eq!(DegradeLevel::ReducedK.apply(one).criterion, InterestCriterion::TopK(1));
        assert_eq!(DegradeLevel::NativeReducedK.apply(one).criterion, InterestCriterion::TopK(1));
        assert_eq!(DegradeLevel::NativeReducedK.apply(min).criterion, InterestCriterion::TopK(1));
        assert_eq!(DegradeLevel::None.apply(opts), opts);
        assert_eq!(DegradeLevel::Unpersonalized.apply(opts), opts);
    }
}
