//! The unified error type of the serving layer — one `Result<_, Error>` for
//! the whole parse → personalize → integrate → plan → execute pipeline.

use pqp_core::PrefError;
use pqp_engine::EngineError;
use pqp_obs::BudgetExceeded;
use pqp_sql::ParseError;
use pqp_storage::StorageError;
use std::fmt;

/// Any failure of the personalization pipeline, wrapping the per-crate
/// errors with [`From`] impls so `?` composes across layers.
///
/// The wrapped error is reachable through
/// [`source`](std::error::Error::source), so callers can walk the chain or
/// match on the layer that failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// Preference selection or integration failed.
    Personalize(PrefError),
    /// Planning or execution failed.
    Engine(EngineError),
    /// The storage layer failed.
    Storage(StorageError),
    /// The query governor's budget (deadline, rows scanned, memory) tripped
    /// and degradation could not bring the query under it. Carries the
    /// partial-progress counters at the moment of the trip.
    BudgetExceeded(BudgetExceeded),
    /// The service refused admission: too many queries already in flight.
    /// Retry later; nothing was executed.
    Overloaded {
        /// Queries in flight when admission was refused.
        in_flight: usize,
        /// The configured admission limit.
        max: usize,
    },
    /// An invariant was violated — a worker panicked, a failpoint fired, or
    /// an internal bug surfaced. The failure is isolated to this query; the
    /// service keeps serving.
    Internal(String),
}

impl Error {
    /// A stable, lowercase label of the failing layer, used by the query
    /// log and its JSON sink (`error_kind`). Messages change; kinds do not.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Personalize(_) => "personalize",
            Error::Engine(_) => "engine",
            Error::Storage(_) => "storage",
            Error::BudgetExceeded(_) => "budget",
            Error::Overloaded { .. } => "overloaded",
            Error::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse failed: {e}"),
            Error::Personalize(e) => write!(f, "personalization failed: {e}"),
            Error::Engine(e) => write!(f, "query engine failed: {e}"),
            Error::Storage(e) => write!(f, "storage failed: {e}"),
            Error::BudgetExceeded(b) => write!(f, "{b}"),
            Error::Overloaded { in_flight, max } => {
                write!(f, "service overloaded: {in_flight} queries in flight (limit {max})")
            }
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Personalize(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::BudgetExceeded(b) => Some(b),
            Error::Overloaded { .. } | Error::Internal(_) => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<PrefError> for Error {
    fn from(e: PrefError) -> Error {
        match e {
            PrefError::Budget(b) => Error::BudgetExceeded(b),
            PrefError::Internal(m) => Error::Internal(m),
            other => Error::Personalize(other),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Error {
        match e {
            EngineError::Budget(b) => Error::BudgetExceeded(b),
            EngineError::Internal(m) => Error::Internal(m),
            other => Error::Engine(other),
        }
    }
}

impl From<BudgetExceeded> for Error {
    fn from(b: BudgetExceeded) -> Error {
        Error::BudgetExceeded(b)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Error {
        Error::Storage(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_every_layer_with_source_chains() {
        let parse = pqp_sql::parse_query("select from").unwrap_err();
        let e = Error::from(parse.clone());
        assert!(matches!(e, Error::Parse(_)));
        assert_eq!(e.source().unwrap().to_string(), parse.to_string());

        let pref = PrefError::InvalidDegree(2.0);
        let e = Error::from(pref.clone());
        assert!(e.to_string().contains("personalization failed"));
        assert_eq!(e.source().unwrap().to_string(), pref.to_string());

        let eng = EngineError::Exec("boom".into());
        assert!(matches!(Error::from(eng), Error::Engine(_)));

        let sto = StorageError::UnknownTable("T".into());
        let e = Error::from(sto);
        assert!(e.source().is_some());
    }

    #[test]
    fn budget_and_internal_variants_remap_across_layers() {
        let b = pqp_obs::QueryCtx::unlimited().exceeded(pqp_obs::BudgetReason::Deadline);
        assert!(matches!(Error::from(EngineError::Budget(b)), Error::BudgetExceeded(_)));
        assert!(matches!(Error::from(PrefError::Budget(b)), Error::BudgetExceeded(_)));
        assert!(matches!(Error::from(EngineError::Internal("x".into())), Error::Internal(_)));
        assert!(matches!(Error::from(PrefError::Internal("x".into())), Error::Internal(_)));
        let e = Error::from(b);
        assert!(e.source().is_some(), "budget errors keep their source chain");
        let overloaded = Error::Overloaded { in_flight: 8, max: 8 };
        assert!(overloaded.to_string().contains("overloaded"));
        assert!(overloaded.source().is_none());
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn run() -> Result<()> {
            let _q = pqp_sql::parse_query("select MV.title from")?;
            Ok(())
        }
        assert!(matches!(run(), Err(Error::Parse(_))));
    }
}
