//! The unified error type of the serving layer — one `Result<_, Error>` for
//! the whole parse → personalize → integrate → plan → execute pipeline.

use pqp_core::PrefError;
use pqp_engine::EngineError;
use pqp_sql::ParseError;
use pqp_storage::StorageError;
use std::fmt;

/// Any failure of the personalization pipeline, wrapping the per-crate
/// errors with [`From`] impls so `?` composes across layers.
///
/// The wrapped error is reachable through
/// [`source`](std::error::Error::source), so callers can walk the chain or
/// match on the layer that failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// Preference selection or integration failed.
    Personalize(PrefError),
    /// Planning or execution failed.
    Engine(EngineError),
    /// The storage layer failed.
    Storage(StorageError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse failed: {e}"),
            Error::Personalize(e) => write!(f, "personalization failed: {e}"),
            Error::Engine(e) => write!(f, "query engine failed: {e}"),
            Error::Storage(e) => write!(f, "storage failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Personalize(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Storage(e) => Some(e),
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<PrefError> for Error {
    fn from(e: PrefError) -> Error {
        Error::Personalize(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Error {
        Error::Engine(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Error {
        Error::Storage(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_every_layer_with_source_chains() {
        let parse = pqp_sql::parse_query("select from").unwrap_err();
        let e = Error::from(parse.clone());
        assert!(matches!(e, Error::Parse(_)));
        assert_eq!(e.source().unwrap().to_string(), parse.to_string());

        let pref = PrefError::InvalidDegree(2.0);
        let e = Error::from(pref.clone());
        assert!(e.to_string().contains("personalization failed"));
        assert_eq!(e.source().unwrap().to_string(), pref.to_string());

        let eng = EngineError::Exec("boom".into());
        assert!(matches!(Error::from(eng), Error::Engine(_)));

        let sto = StorageError::UnknownTable("T".into());
        let e = Error::from(sto);
        assert!(e.source().is_some());
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn run() -> Result<()> {
            let _q = pqp_sql::parse_query("select MV.title from")?;
            Ok(())
        }
        assert!(matches!(run(), Err(Error::Parse(_))));
    }
}
