//! The unified error type of the serving layer — one `Result<_, Error>` for
//! the whole parse → personalize → integrate → plan → execute pipeline —
//! plus its stable wire representation ([`ErrorCode`]).

use pqp_core::PrefError;
use pqp_engine::EngineError;
use pqp_obs::BudgetExceeded;
use pqp_sql::ParseError;
use pqp_storage::StorageError;
use std::fmt;

/// Any failure of the personalization pipeline, wrapping the per-crate
/// errors with [`From`] impls so `?` composes across layers.
///
/// The wrapped error is reachable through
/// [`source`](std::error::Error::source), so callers can walk the chain or
/// match on the layer that failed.
///
/// Every variant maps to a stable, numeric [`ErrorCode`] ([`Error::code`])
/// carried verbatim through the wire protocol; [`Error::kind`] is the
/// code's lowercase label. Errors received over the wire decode as
/// [`Error::Remote`] (or the real variant where the code carries enough
/// structure, e.g. [`Error::Overloaded`]), preserving the code — and thus
/// the `kind()` — exactly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// Preference selection or integration failed.
    Personalize(PrefError),
    /// Planning or execution failed.
    Engine(EngineError),
    /// The storage layer failed.
    Storage(StorageError),
    /// The query governor's budget (deadline, rows scanned, memory) tripped
    /// and degradation could not bring the query under it. Carries the
    /// partial-progress counters at the moment of the trip.
    BudgetExceeded(BudgetExceeded),
    /// The service refused admission: too many queries already in flight.
    /// Retry later; nothing was executed.
    Overloaded {
        /// Queries in flight when admission was refused.
        in_flight: usize,
        /// The configured admission limit.
        max: usize,
    },
    /// An invariant was violated — a worker panicked, a failpoint fired, or
    /// an internal bug surfaced. The failure is isolated to this query; the
    /// service keeps serving.
    Internal(String),
    /// A transport failure: the connection to (or from) a remote peer broke
    /// mid-exchange. Whether the in-flight request took effect is unknown.
    Io(String),
    /// The peer violated the wire protocol: malformed or oversized frame,
    /// unsupported protocol version, or a message out of sequence.
    Protocol(String),
    /// The node cannot serve the request right now for replication
    /// reasons: it is not the leader, it has been fenced by a higher
    /// term, or a mutation could not reach the configured ack quorum.
    /// The message names the reason; retry against the current leader.
    Unavailable(String),
    /// An error reported by a remote server, reconstructed from its wire
    /// code and message. `kind()` matches what the server would have
    /// reported locally; the structured payload is not preserved.
    Remote {
        /// The wire code the server sent.
        code: ErrorCode,
        /// The server's rendered error message.
        message: String,
    },
}

/// The stable, numeric wire code of an [`Error`] — the unit of error
/// compatibility across protocol versions.
///
/// Codes are append-only: a code, once assigned, never changes meaning and
/// is never reused. Messages change freely; codes and labels do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u16)]
pub enum ErrorCode {
    /// The SQL text did not parse.
    Parse = 1,
    /// Preference selection or integration failed.
    Personalize = 2,
    /// Planning or execution failed.
    Engine = 3,
    /// The storage layer failed.
    Storage = 4,
    /// A query-governor budget tripped.
    Budget = 5,
    /// Admission refused: too many queries in flight.
    Overloaded = 6,
    /// An isolated internal failure (panic, failpoint, bug).
    Internal = 7,
    /// A transport (connection) failure.
    Io = 8,
    /// A wire-protocol violation.
    Protocol = 9,
    /// The node cannot serve this request: not the leader, fenced by a
    /// higher term, or replication quorum not reached.
    Unavailable = 10,
}

impl ErrorCode {
    /// Every assigned code, in numeric order.
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::Parse,
        ErrorCode::Personalize,
        ErrorCode::Engine,
        ErrorCode::Storage,
        ErrorCode::Budget,
        ErrorCode::Overloaded,
        ErrorCode::Internal,
        ErrorCode::Io,
        ErrorCode::Protocol,
        ErrorCode::Unavailable,
    ];

    /// The numeric code carried on the wire.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decode a wire code (`None` for codes this build does not know —
    /// a newer peer; callers should degrade to [`ErrorCode::Internal`]).
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_u16() == code)
    }

    /// The stable, lowercase label — what [`Error::kind`] reports and what
    /// the query log's `error_kind` column records.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Personalize => "personalize",
            ErrorCode::Engine => "engine",
            ErrorCode::Storage => "storage",
            ErrorCode::Budget => "budget",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
            ErrorCode::Io => "io",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.label(), self.as_u16())
    }
}

impl Error {
    /// The stable wire code of this error (see [`ErrorCode`]).
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Parse(_) => ErrorCode::Parse,
            Error::Personalize(_) => ErrorCode::Personalize,
            Error::Engine(_) => ErrorCode::Engine,
            Error::Storage(_) => ErrorCode::Storage,
            Error::BudgetExceeded(_) => ErrorCode::Budget,
            Error::Overloaded { .. } => ErrorCode::Overloaded,
            Error::Internal(_) => ErrorCode::Internal,
            Error::Io(_) => ErrorCode::Io,
            Error::Protocol(_) => ErrorCode::Protocol,
            Error::Unavailable(_) => ErrorCode::Unavailable,
            Error::Remote { code, .. } => *code,
        }
    }

    /// A stable, lowercase label of the failing layer, used by the query
    /// log and its JSON sink (`error_kind`). Messages change; kinds do not.
    /// Always equal to `self.code().label()`.
    pub fn kind(&self) -> &'static str {
        self.code().label()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse failed: {e}"),
            Error::Personalize(e) => write!(f, "personalization failed: {e}"),
            Error::Engine(e) => write!(f, "query engine failed: {e}"),
            Error::Storage(e) => write!(f, "storage failed: {e}"),
            Error::BudgetExceeded(b) => write!(f, "{b}"),
            Error::Overloaded { in_flight, max } => {
                write!(f, "service overloaded: {in_flight} queries in flight (limit {max})")
            }
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Io(m) => write!(f, "i/o failed: {m}"),
            Error::Protocol(m) => write!(f, "protocol violation: {m}"),
            Error::Unavailable(m) => write!(f, "service unavailable: {m}"),
            Error::Remote { code, message } => {
                write!(f, "remote error [{}]: {message}", code.label())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Personalize(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::BudgetExceeded(b) => Some(b),
            Error::Overloaded { .. }
            | Error::Internal(_)
            | Error::Io(_)
            | Error::Protocol(_)
            | Error::Unavailable(_)
            | Error::Remote { .. } => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<PrefError> for Error {
    fn from(e: PrefError) -> Error {
        match e {
            PrefError::Budget(b) => Error::BudgetExceeded(b),
            PrefError::Internal(m) => Error::Internal(m),
            other => Error::Personalize(other),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Error {
        match e {
            EngineError::Budget(b) => Error::BudgetExceeded(b),
            EngineError::Internal(m) => Error::Internal(m),
            other => Error::Engine(other),
        }
    }
}

impl From<BudgetExceeded> for Error {
    fn from(b: BudgetExceeded) -> Error {
        Error::BudgetExceeded(b)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Error {
        Error::Storage(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e.to_string())
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// One representative error per variant this build knows about.
    fn representatives() -> Vec<Error> {
        vec![
            Error::from(pqp_sql::parse_query("select from").unwrap_err()),
            Error::Personalize(PrefError::InvalidDegree(2.0)),
            Error::Engine(EngineError::Exec("boom".into())),
            Error::Storage(StorageError::UnknownTable("T".into())),
            Error::BudgetExceeded(
                pqp_obs::QueryCtx::unlimited().exceeded(pqp_obs::BudgetReason::Deadline),
            ),
            Error::Overloaded { in_flight: 8, max: 8 },
            Error::Internal("invariant".into()),
            Error::Io("connection reset".into()),
            Error::Protocol("frame too short".into()),
            Error::Unavailable("not the leader (term 3)".into()),
        ]
    }

    #[test]
    fn wraps_every_layer_with_source_chains() {
        let parse = pqp_sql::parse_query("select from").unwrap_err();
        let e = Error::from(parse.clone());
        assert!(matches!(e, Error::Parse(_)));
        assert_eq!(e.source().unwrap().to_string(), parse.to_string());

        let pref = PrefError::InvalidDegree(2.0);
        let e = Error::from(pref.clone());
        assert!(e.to_string().contains("personalization failed"));
        assert_eq!(e.source().unwrap().to_string(), pref.to_string());

        let eng = EngineError::Exec("boom".into());
        assert!(matches!(Error::from(eng), Error::Engine(_)));

        let sto = StorageError::UnknownTable("T".into());
        let e = Error::from(sto);
        assert!(e.source().is_some());
    }

    #[test]
    fn budget_and_internal_variants_remap_across_layers() {
        let b = pqp_obs::QueryCtx::unlimited().exceeded(pqp_obs::BudgetReason::Deadline);
        assert!(matches!(Error::from(EngineError::Budget(b)), Error::BudgetExceeded(_)));
        assert!(matches!(Error::from(PrefError::Budget(b)), Error::BudgetExceeded(_)));
        assert!(matches!(Error::from(EngineError::Internal("x".into())), Error::Internal(_)));
        assert!(matches!(Error::from(PrefError::Internal("x".into())), Error::Internal(_)));
        let e = Error::from(b);
        assert!(e.source().is_some(), "budget errors keep their source chain");
        let overloaded = Error::Overloaded { in_flight: 8, max: 8 };
        assert!(overloaded.to_string().contains("overloaded"));
        assert!(overloaded.source().is_none());
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn run() -> Result<()> {
            let _q = pqp_sql::parse_query("select MV.title from")?;
            Ok(())
        }
        assert!(matches!(run(), Err(Error::Parse(_))));
    }

    #[test]
    fn every_code_round_trips_through_u16() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(u16::MAX), None, "unassigned codes stay unknown");
        // Codes are unique (append-only space, no reuse).
        let mut seen: Vec<u16> = ErrorCode::ALL.iter().map(|c| c.as_u16()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ErrorCode::ALL.len());
    }

    #[test]
    fn every_variant_maps_and_decodes_to_the_same_kind() {
        // The wire contract: encoding an error as (code, message) and
        // decoding it back as `Error::Remote` preserves `kind()` exactly.
        for original in representatives() {
            let code = original.code();
            assert_eq!(original.kind(), code.label(), "kind is derived from the code");
            let decoded = Error::Remote { code, message: original.to_string() };
            assert_eq!(decoded.kind(), original.kind(), "round-trip keeps the kind");
            assert_eq!(decoded.code(), code, "round-trip keeps the code");
        }
        // Every assigned code is reachable from some local variant above,
        // so the representative set and the code space stay in sync.
        let covered: std::collections::HashSet<u16> =
            representatives().iter().map(|e| e.code().as_u16()).collect();
        for code in ErrorCode::ALL {
            assert!(
                covered.contains(&code.as_u16()),
                "code {code} has no local representative in this test"
            );
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        // Renaming a label is a wire-compatibility break: the query log's
        // `error_kind` column and remote decoders both key on it.
        let labels: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "parse",
                "personalize",
                "engine",
                "storage",
                "budget",
                "overloaded",
                "internal",
                "io",
                "protocol",
                "unavailable"
            ]
        );
    }
}
